"""Command-line entry: ``python -m tools.lint [paths...]``."""

from __future__ import annotations

import sys

from tools.lint import ALL_LINTERS, run_linters


def main(argv: list) -> int:
    roots = argv or ["src"]
    findings = run_linters(roots, ALL_LINTERS)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
