"""OBS001 — metric and span names must come from the registered table.

Every metric and span name used anywhere in the engine is declared once
in :mod:`repro.obs.names`.  That registry is what makes the
observability surface *stable*: dashboards, the Prometheus exposition,
and the trace-shape tests all key on those strings, so a call site
inventing a name inline (``counter("query_total")`` — note the typo)
compiles fine, silently creates a parallel series, and breaks every
consumer keyed on the registered spelling.  This lint rejects bare
string literals at instrumentation call sites; the fix is to add (or
reuse) a constant in ``repro/obs/names.py`` and pass it by name.

Flagged:

- attribute calls ``.counter(...)``, ``.gauge(...)``, ``.histogram(...)``,
  ``.span(...)``, ``.event(...)`` whose name argument is a string
  literal — these are the `MetricsRegistry` and `Tracer` recording
  methods;
- calls to the `repro.obs` free functions ``counter``/``gauge``/
  ``histogram``/``trace_span`` (tracked through import aliases) whose
  name argument is a string literal.

``repro/obs/names.py`` itself is exempt (it *is* the registry).  A
deliberate literal — e.g. a unit test probing the registry with a
throwaway series — is waived with an ``# obs-name-ok: <reason>``
comment on the line.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.lint.common import Finding, Source

#: Recording methods on MetricsRegistry / Tracer whose first argument is
#: a metric or span name.
OBS_METHODS = frozenset({"counter", "gauge", "histogram", "span", "event"})

#: Module-level instrumentation entry points in ``repro.obs``.
OBS_FUNCTIONS = frozenset({"counter", "gauge", "histogram", "trace_span"})

#: The registry module itself — the one place literals belong.
_EXEMPT_FRAGMENTS = ("repro/obs/names",)


def _is_exempt(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _EXEMPT_FRAGMENTS)


def _literal_name(call: ast.Call) -> Optional[str]:
    """The name argument when it is a bare string literal, else None."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None
    for keyword in call.keywords:
        if keyword.arg == "name":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return value.value
            return None
    return None


def lint_obs_names(source: Source) -> List[Finding]:
    if _is_exempt(source.path):
        return []

    function_aliases: Set[str] = set()
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.module
            and node.module.startswith("repro.obs")
        ):
            for alias in node.names:
                if alias.name in OBS_FUNCTIONS:
                    function_aliases.add(alias.asname or alias.name)

    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in OBS_METHODS:
            label = f".{func.attr}(...)"
        elif isinstance(func, ast.Name) and func.id in function_aliases:
            label = f"{func.id}(...)"
        else:
            continue
        name = _literal_name(node)
        if name is None:
            continue
        if source.comment_on(node.lineno).startswith("obs-name-ok"):
            continue
        findings.append(
            Finding(
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                code="OBS001",
                message=(
                    f"{label} records under the inline literal {name!r}; "
                    f"metric and span names must be constants from "
                    f"repro/obs/names.py so the exported series and trace "
                    f"shapes stay stable, or waive with "
                    f"'# obs-name-ok: <reason>'"
                ),
            )
        )
    return findings
