"""LCK001/LCK002 — lock discipline driven by ``# guarded-by:`` comments.

Shared mutable state in this codebase is annotated at its definition::

    self._entries = OrderedDict()      # guarded-by: _lock
    _POOLS: Dict[int, Executor] = {}   # guarded-by: _POOLS_LOCK [writes]

- ``guarded-by: <lock>`` — every read and write of the attribute (or
  module-level variable) outside ``with <lock>:`` is flagged;
- ``guarded-by: <lock> [writes]`` — only writes and mutator-method calls
  need the lock (double-checked/read-mostly patterns: lock-free reads
  are part of the design);
- ``# requires-lock: <lock>`` on a ``def`` documents that callers hold
  the lock; the body is checked with the lock assumed held, and calls
  to such a method *without* the lock are flagged (LCK002);
- ``# unguarded-ok: <reason>`` on the access line (or in the comment
  block immediately above it) waives one access.

Instance attributes may be freely initialized inside ``__init__`` (the
object is not yet shared); module-level code runs once at import, so
only accesses inside functions are checked for module-level variables.

The lint is annotation-driven: attributes without a ``guarded-by``
comment are not checked, so it imposes no policy on code that has no
concurrency contract to state.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from tools.lint.common import Finding, Source

#: Method names that mutate their receiver in place.
MUTATORS = frozenset(
    {
        "append",
        "add",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "update",
        "extend",
        "discard",
        "remove",
        "insert",
        "move_to_end",
    }
)

_GUARDED_BY = re.compile(
    r"guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*(?P<writes>\[writes\])?"
)
_REQUIRES_LOCK = re.compile(
    r"requires-lock:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Guard:
    """The concurrency contract of one annotated variable."""

    lock: str
    writes_only: bool


def _span_comment_match(
    source: Source, node: ast.stmt, pattern: "re.Pattern[str]"
) -> Optional["re.Match[str]"]:
    """Match *pattern* against any comment on the lines *node* spans."""
    for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
        comment = source.comment_on(line)
        if comment:
            match = pattern.search(comment)
            if match:
                return match
    return None


def _signature_comment_match(
    source: Source, node: _FunctionNode, pattern: "re.Pattern[str]"
) -> Optional["re.Match[str]"]:
    """Match *pattern* in the comments of a ``def``'s signature lines."""
    for line in range(node.lineno, node.body[0].lineno):
        comment = source.comment_on(line)
        if comment:
            match = pattern.search(comment)
            if match:
                return match
    return None


def _waived(source: Source, line: int) -> bool:
    """True when the access is excused by an ``unguarded-ok`` comment.

    The comment may sit on the access line itself or anywhere in the
    contiguous comment block immediately above it.
    """
    if source.comment_on(line).startswith("unguarded-ok"):
        return True
    above = line - 1
    while above > 0 and above in source.comments:
        if source.comments[above].startswith("unguarded-ok"):
            return True
        above -= 1
    return False


def _assign_target_names(node: ast.stmt) -> List[Tuple[str, bool]]:
    """(name, is_self_attribute) for each simple assignment target."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    names: List[Tuple[str, bool]] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append((target.id, False))
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            names.append((target.attr, True))
    return names


def _lock_name(expr: ast.expr) -> Optional[str]:
    """The lock a ``with`` item acquires, as annotated: bare or self-qualified."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


class _Access:
    """One use of a guarded variable: where, and whether it writes."""

    __slots__ = ("name", "line", "col", "write", "held")

    def __init__(
        self, name: str, line: int, col: int, write: bool, held: Set[str]
    ) -> None:
        self.name = name
        self.line = line
        self.col = col
        self.write = write
        self.held = held


def _collect_accesses(
    func: _FunctionNode,
    names: Set[str],
    attr_mode: bool,
    base_held: Set[str],
) -> Tuple[List[_Access], List[Tuple[str, int, int, Set[str]]]]:
    """Walk *func* tracking ``with`` blocks; report uses of *names*.

    *attr_mode* selects whether *names* are ``self.<name>`` attributes or
    bare module-level variables.  Also returns every ``self.<m>()`` call
    with the lock set held at the call site, for LCK002.
    """
    accesses: List[_Access] = []
    calls: List[Tuple[str, int, int, Set[str]]] = []
    seen: Set[Tuple[int, int]] = set()

    def matches(expr: ast.expr) -> Optional[str]:
        if attr_mode:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in names
            ):
                return expr.attr
        elif isinstance(expr, ast.Name) and expr.id in names:
            return expr.id
        return None

    def record(expr: ast.expr, write: bool, held: Set[str]) -> None:
        name = matches(expr)
        if name is None:
            return
        key = (expr.lineno, expr.col_offset)
        if key in seen and not write:
            return
        seen.add(key)
        accesses.append(
            _Access(name, expr.lineno, expr.col_offset, write, set(held))
        )

    def visit(node: ast.AST, held: Set[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                lock = _lock_name(item.context_expr)
                if lock is not None:
                    inner.add(lock)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, under whatever locks *its* caller
            # holds — not the locks held at definition time.
            for stmt in node.body:
                visit(stmt, set())
            return
        if isinstance(node, ast.Call):
            func_expr = node.func
            # Mutator call on the guarded object: d.setdefault(...), l.append(...)
            if isinstance(func_expr, ast.Attribute):
                if func_expr.attr in MUTATORS:
                    record(func_expr.value, True, held)
                # self.method(...) — collected for requires-lock checking.
                if (
                    isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id == "self"
                ):
                    calls.append(
                        (
                            func_expr.attr,
                            node.lineno,
                            node.col_offset,
                            set(held),
                        )
                    )
        if isinstance(node, (ast.Subscript, ast.Attribute, ast.Name)):
            context = getattr(node, "ctx", None)
            if isinstance(context, (ast.Store, ast.Del)):
                # d[k] = v / del d[k] / x = v — the written base object.
                base = node.value if isinstance(node, ast.Subscript) else node
                record(base, True, held)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                record(node, False, held)
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    held = set(base_held)
    for stmt in func.body:
        visit(stmt, held)
    return accesses, calls


def lint_locks(source: Source) -> List[Finding]:
    findings: List[Finding] = []

    # Module-level guarded variables.
    module_guards: Dict[str, Guard] = {}
    for stmt in source.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            match = _span_comment_match(source, stmt, _GUARDED_BY)
            if match is None:
                continue
            guard = Guard(
                lock=match.group("lock"),
                writes_only=match.group("writes") is not None,
            )
            for name, is_attr in _assign_target_names(stmt):
                if not is_attr:
                    module_guards[name] = guard

    # All functions anywhere in the module (methods included) — except
    # defs nested inside another def: the enclosing function's traversal
    # already visits them (with the held-lock set reset), so checking
    # them again would double-report every access.
    nested: Set[ast.AST] = set()
    for outer in ast.walk(source.tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner)
    functions: List[_FunctionNode] = [
        node
        for node in ast.walk(source.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node not in nested
    ]

    def required_lock(func: _FunctionNode) -> Optional[str]:
        match = _signature_comment_match(source, func, _REQUIRES_LOCK)
        return None if match is None else match.group("lock")

    def check(
        func: _FunctionNode,
        guards: Dict[str, Guard],
        attr_mode: bool,
        requires: Dict[str, str],
    ) -> None:
        assumed = set()
        held_lock = required_lock(func)
        if held_lock is not None:
            assumed.add(held_lock)
        accesses, calls = _collect_accesses(
            func, set(guards), attr_mode, assumed
        )
        for access in accesses:
            guard = guards[access.name]
            if guard.writes_only and not access.write:
                continue
            if guard.lock in access.held:
                continue
            if _waived(source, access.line):
                continue
            kind = "write to" if access.write else "read of"
            findings.append(
                Finding(
                    path=source.path,
                    line=access.line,
                    col=access.col,
                    code="LCK001",
                    message=(
                        f"{kind} {access.name!r} outside 'with "
                        f"{guard.lock}' (declared guarded-by: {guard.lock})"
                    ),
                )
            )
        if attr_mode:
            for method, line, col, held in calls:
                needed = requires.get(method)
                if needed is None or needed in held:
                    continue
                if _waived(source, line):
                    continue
                findings.append(
                    Finding(
                        path=source.path,
                        line=line,
                        col=col,
                        code="LCK002",
                        message=(
                            f"call to {method}() requires {needed!r} "
                            f"(declared requires-lock: {needed}) but the "
                            f"lock is not held here"
                        ),
                    )
                )

    # Module-variable discipline: every function in the file.
    if module_guards:
        for func in functions:
            check(func, module_guards, attr_mode=False, requires={})

    # Instance-attribute discipline: per class, annotations read from
    # __init__ assignments; __init__ itself is exempt (construction is
    # single-threaded), every other method is checked.
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods: List[_FunctionNode] = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        init = next((m for m in methods if m.name == "__init__"), None)
        if init is None:
            continue
        attr_guards: Dict[str, Guard] = {}
        for stmt in ast.walk(init):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                match = _span_comment_match(source, stmt, _GUARDED_BY)
                if match is None:
                    continue
                guard = Guard(
                    lock=match.group("lock"),
                    writes_only=match.group("writes") is not None,
                )
                for name, is_attr in _assign_target_names(stmt):
                    if is_attr:
                        attr_guards[name] = guard
        if not attr_guards:
            continue
        requires = {
            method.name: lock
            for method in methods
            if (lock := required_lock(method)) is not None
        }
        for method in methods:
            if method.name == "__init__":
                continue
            check(method, attr_guards, attr_mode=True, requires=requires)
    return findings
