"""TYP001 — fully annotated defs in the typed core packages.

The typed core — :mod:`repro.logic`, :mod:`repro.ctalgebra`,
:mod:`repro.engine`, :mod:`repro.physical` — carries complete signature
annotations so CI's mypy run has real signatures to check against (and
so the next reader does not have to reverse-engineer parameter types).
This lint enforces the *presence* of annotations locally, without
needing mypy installed: every parameter except ``self``/``cls`` must be
annotated and every def must declare a return type.

Nested functions (closures) are exempt — their types are local
inference territory — as are lambdas.  A deliberate exception can be
waived with ``# untyped-ok: <reason>`` on the ``def`` line.
"""

from __future__ import annotations

import ast
from typing import List, Set, Union

from tools.lint.common import Finding, Source

#: Path fragments selecting the typed-core packages.
CORE_PACKAGES = (
    "repro/logic/",
    "repro/ctalgebra/",
    "repro/engine/",
    "repro/physical/",
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _core_file(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in CORE_PACKAGES)


def _missing_annotations(node: _FunctionNode) -> List[str]:
    missing: List[str] = []
    arguments = node.args
    positional = arguments.posonlyargs + arguments.args
    for index, argument in enumerate(positional):
        if index == 0 and argument.arg in ("self", "cls"):
            continue
        if argument.annotation is None:
            missing.append(argument.arg)
    for argument in arguments.kwonlyargs:
        if argument.annotation is None:
            missing.append(argument.arg)
    if arguments.vararg is not None and arguments.vararg.annotation is None:
        missing.append("*" + arguments.vararg.arg)
    if arguments.kwarg is not None and arguments.kwarg.annotation is None:
        missing.append("**" + arguments.kwarg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


def lint_typed_core(source: Source) -> List[Finding]:
    if not _core_file(source.path):
        return []

    # Top-level functions and class methods only: nested defs are local.
    nested: Set[_FunctionNode] = set()
    for outer in ast.walk(source.tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner)

    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node in nested:
            continue
        if source.comment_on(node.lineno).startswith("untyped-ok"):
            continue
        missing = _missing_annotations(node)
        if missing:
            findings.append(
                Finding(
                    path=source.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="TYP001",
                    message=(
                        f"{node.name}() is missing annotations for "
                        f"{', '.join(missing)} (typed-core package)"
                    ),
                )
            )
    return findings
