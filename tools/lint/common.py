"""Shared machinery for the repository's custom source lints.

Every lint in :mod:`tools.lint` is a pure function from a parsed module
to a list of :class:`Finding` values — stdlib :mod:`ast` only, no
third-party dependencies, so the lints run in any environment that can
run the code they check (ruff/mypy complement them in CI but are not
required locally).
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Sequence


@dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Source:
    """A parsed module plus the per-line comment index the lints share."""

    path: str
    text: str
    tree: ast.Module
    comments: Dict[int, str]  # line number -> comment text (sans '#')

    @classmethod
    def parse(cls, path: str, text: str) -> "Source":
        tree = ast.parse(text, filename=path)
        comments: Dict[int, str] = {}
        reader = io.StringIO(text).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string.lstrip("#").strip()
        except tokenize.TokenError:  # pragma: no cover - parse succeeded
            pass
        return cls(path=path, text=text, tree=tree, comments=comments)

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")


#: A lint: Source in, findings out.
Linter = Callable[[Source], List[Finding]]


def iter_python_files(roots: Sequence[str]) -> Iterator[Path]:
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def run_linters(
    roots: Sequence[str], linters: Iterable[Linter]
) -> List[Finding]:
    """Run every lint over every ``.py`` file under *roots*."""
    linters = list(linters)
    findings: List[Finding] = []
    for path in iter_python_files(roots):
        source = Source.parse(str(path), path.read_text())
        for lint in linters:
            findings.extend(lint(source))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
