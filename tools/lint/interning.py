"""INT001 — interning discipline for condition formulas.

The engine's identity invariant ("structurally equal formulas are the
same object") holds only for formulas built through the smart
constructors (``conj``/``disj``/``neg``/``eq``/``ne``/``boolvar``), which
route through the hash-consing table under its lock.  Calling the raw
dataclass constructors — ``BoolVar(...)``, ``Not(...)``, ``And(...)``,
``Or(...)``, ``Eq(...)`` — from concurrent threads can mint duplicate
nodes that break ``is``-keyed memos and the plan verifier's canonicity
check.

This lint flags every *call* to one of the raw constructor names that
was imported from :mod:`repro.logic.syntax`/:mod:`repro.logic.atoms`
(or reached through an imported module alias), outside the two defining
modules themselves.  A deliberate raw construction can be waived with a
``# interned-ok: <reason>`` comment on the offending line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from tools.lint.common import Finding, Source

#: Raw constructors whose direct use breaks the canonicity invariant.
RAW_CONSTRUCTORS = frozenset({"BoolVar", "Not", "And", "Or", "Eq"})

#: Modules whose names the constructors live in.
_DEFINING_MODULES = ("repro.logic.syntax", "repro.logic.atoms", "repro.logic")

#: The defining modules themselves may (must) touch the raw constructors.
_EXEMPT_SUFFIXES = ("logic/syntax.py", "logic/atoms.py")


def _is_defining_module(module: str) -> bool:
    return any(
        module == defining or module.startswith(defining + ".")
        for defining in _DEFINING_MODULES
    )


def lint_interning(source: Source) -> List[Finding]:
    if source.path.replace("\\", "/").endswith(_EXEMPT_SUFFIXES):
        return []

    # Local names bound to raw constructors, and local names bound to
    # the defining modules (for attribute-style calls).
    constructor_aliases: Dict[str, str] = {}
    module_aliases: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if _is_defining_module(node.module):
                for alias in node.names:
                    if alias.name in RAW_CONSTRUCTORS:
                        constructor_aliases[
                            alias.asname or alias.name
                        ] = alias.name
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if _is_defining_module(alias.name):
                    module_aliases.add(
                        alias.asname or alias.name.split(".")[0]
                    )

    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in constructor_aliases:
            name = constructor_aliases[func.id]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in RAW_CONSTRUCTORS
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
        ):
            name = func.attr
        if name is None:
            continue
        if source.comment_on(node.lineno).startswith("interned-ok"):
            continue
        findings.append(
            Finding(
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                code="INT001",
                message=(
                    f"raw constructor {name}(...) bypasses the interning "
                    f"table; use the smart constructor "
                    f"({name.lower() if name == 'BoolVar' else 'conj/disj/neg/eq'}) "
                    f"or waive with '# interned-ok: <reason>'"
                ),
            )
        )
    return findings
