"""EXP001 — world enumeration outside the oracle modules.

The paper's point — and the repository's performance contract since the
symbolic equivalence engine landed — is that no production path needs to
materialize ``Mod(T)``: certain/possible answers, probabilities,
lineage, plan verification, and table equivalence are all decided
symbolically, with cost bounded by condition size rather than
``|domain|^variables``.  World enumeration is still the *oracle* the
symbolic engines are validated against, so it stays available — but a
new call site silently reintroducing exponential enumeration into an
engine path is a regression this lint makes loud.

Flagged, outside the whitelisted oracle packages:

- calls to the enumeration methods ``.possible_worlds(...)``,
  ``.mod(...)``, ``.mod_over(...)``, ``.valuations(...)``;
- calls to :func:`repro.logic.models.enumerate_valuations`;
- ``ctables_equivalent(..., enumerate=True)`` — forcing the enumeration
  engine past the symbolic dispatcher.

A deliberate enumeration (e.g. a semantics-defining construction) is
waived with an ``# enumeration-ok: <reason>`` comment on the line.
"""

from __future__ import annotations

import ast
from typing import List, Set

from tools.lint.common import Finding, Source

#: Attribute calls that materialize worlds or valuations.
ENUMERATION_METHODS = frozenset(
    {"possible_worlds", "mod", "mod_over", "valuations"}
)

#: Module-level enumeration entry points (flagged by imported name).
ENUMERATION_FUNCTIONS = frozenset({"enumerate_valuations"})

#: Packages that define or validate the world semantics: the tables'
#: own ``mod`` implementations, the worlds/comparison oracles, the
#: completion and probabilistic modules whose *outputs* are world sets,
#: and the logic substrate.
_EXEMPT_FRAGMENTS = (
    "repro/tables/",
    "repro/worlds/",
    "repro/completion/",
    "repro/prob/",
    "repro/logic/",
)


def _is_exempt(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _EXEMPT_FRAGMENTS)


def _forces_enumeration(call: ast.Call) -> bool:
    """True for ``ctables_equivalent(..., enumerate=True)``."""
    for keyword in call.keywords:
        if keyword.arg == "enumerate":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def lint_enumeration(source: Source) -> List[Finding]:
    if _is_exempt(source.path):
        return []

    function_aliases: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("repro"):
                for alias in node.names:
                    if alias.name in ENUMERATION_FUNCTIONS:
                        function_aliases.add(alias.asname or alias.name)

    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        label = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ENUMERATION_METHODS
        ):
            label = f".{func.attr}(...)"
        elif isinstance(func, ast.Name) and func.id in function_aliases:
            label = f"{func.id}(...)"
        elif (
            isinstance(func, ast.Name)
            and func.id == "ctables_equivalent"
            and _forces_enumeration(node)
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "ctables_equivalent"
            and _forces_enumeration(node)
        ):
            label = "ctables_equivalent(..., enumerate=True)"
        if label is None:
            continue
        if source.comment_on(node.lineno).startswith("enumeration-ok"):
            continue
        findings.append(
            Finding(
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                code="EXP001",
                message=(
                    f"{label} enumerates possible worlds "
                    f"(exponential in variables) outside the oracle "
                    f"modules; decide symbolically "
                    f"(ctables_equivalent / repro.logic.equivalence) or "
                    f"waive with '# enumeration-ok: <reason>'"
                ),
            )
        )
    return findings
