"""EXP001 — world enumeration outside the oracle modules.

The paper's point — and the repository's performance contract since the
symbolic equivalence engine landed — is that no production path needs to
materialize ``Mod(T)``: certain/possible answers, probabilities,
lineage, plan verification, and table equivalence are all decided
symbolically, with cost bounded by condition size rather than
``|domain|^variables``.  World enumeration is still the *oracle* the
symbolic engines are validated against, so it stays available — but a
new call site silently reintroducing exponential enumeration into an
engine path is a regression this lint makes loud.

Flagged, outside the whitelisted oracle packages:

- calls to the enumeration methods ``.possible_worlds(...)``,
  ``.mod(...)``, ``.mod_over(...)``, ``.valuations(...)``,
  ``.valuation_space(...)``;
- calls to :func:`repro.logic.models.enumerate_valuations`,
  :func:`repro.logic.counting.probability_enumerate` and
  :func:`repro.prob.tuple_prob.tuple_probability_naive` — the
  exponential probability baselines, kept as oracles only (production
  paths go through ``probability(...)``'s strategy dispatch and the
  compiled d-DNNF route);
- ``ctables_equivalent(..., enumerate=True)`` — forcing the enumeration
  engine past the symbolic dispatcher;
- inside ``repro/prob/``: raw product-space iteration via
  ``itertools.product(...)`` — the shape every ``2^variables`` blowup
  in the probability stack takes.

``repro.prob`` is deliberately *not* blanket-exempt: only the modules
whose outputs are world sets by definition (:mod:`repro.prob.space`,
:mod:`repro.prob.pdatabase`) are, and every deliberate enumeration in
the rest of the probability stack carries a waiver.

A deliberate enumeration (e.g. a semantics-defining construction) is
waived with an ``# enumeration-ok: <reason>`` comment on the line.
"""

from __future__ import annotations

import ast
from typing import List, Set

from tools.lint.common import Finding, Source

#: Attribute calls that materialize worlds or valuations.
ENUMERATION_METHODS = frozenset(
    {"possible_worlds", "mod", "mod_over", "valuations", "valuation_space"}
)

#: Module-level enumeration entry points (flagged by imported name or as
#: attribute calls): valuation enumeration plus the exponential
#: probability baselines kept only as differential oracles.
ENUMERATION_FUNCTIONS = frozenset(
    {"enumerate_valuations", "probability_enumerate", "tuple_probability_naive"}
)

#: Packages that define or validate the world semantics: the tables'
#: own ``mod`` implementations, the worlds/comparison oracles, the
#: completion modules whose *outputs* are world sets, the logic
#: substrate, and the two probability modules that *are* the enumerated
#: semantic objects.  The rest of ``repro/prob/`` is fenced: its
#: deliberate enumerations carry per-line waivers.
_EXEMPT_FRAGMENTS = (
    "repro/tables/",
    "repro/worlds/",
    "repro/completion/",
    "repro/prob/space",
    "repro/prob/pdatabase",
    "repro/logic/",
)

#: Paths on which raw ``itertools.product`` iteration is flagged — in
#: the probability stack a product call is a product *space*.
_PRODUCT_FENCED_FRAGMENTS = ("repro/prob/",)


def _is_exempt(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _EXEMPT_FRAGMENTS)


def _is_product_fenced(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(
        fragment in normalized for fragment in _PRODUCT_FENCED_FRAGMENTS
    )


def _is_itertools_product(call: ast.Call, product_aliases: Set[str]) -> bool:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "product"
        and isinstance(func.value, ast.Name)
        and func.value.id == "itertools"
    ):
        return True
    return isinstance(func, ast.Name) and func.id in product_aliases


def _forces_enumeration(call: ast.Call) -> bool:
    """True for ``ctables_equivalent(..., enumerate=True)``."""
    for keyword in call.keywords:
        if keyword.arg == "enumerate":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def lint_enumeration(source: Source) -> List[Finding]:
    if _is_exempt(source.path):
        return []

    function_aliases: Set[str] = set()
    product_aliases: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("repro"):
                for alias in node.names:
                    if alias.name in ENUMERATION_FUNCTIONS:
                        function_aliases.add(alias.asname or alias.name)
            if node.module == "itertools":
                for alias in node.names:
                    if alias.name == "product":
                        product_aliases.add(alias.asname or alias.name)

    product_fenced = _is_product_fenced(source.path)
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        label = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ENUMERATION_METHODS
        ):
            label = f".{func.attr}(...)"
        elif isinstance(func, ast.Name) and func.id in function_aliases:
            label = f"{func.id}(...)"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in ENUMERATION_FUNCTIONS
        ):
            label = f".{func.attr}(...)"
        elif product_fenced and _is_itertools_product(node, product_aliases):
            label = "itertools.product(...)"
        elif (
            isinstance(func, ast.Name)
            and func.id == "ctables_equivalent"
            and _forces_enumeration(node)
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "ctables_equivalent"
            and _forces_enumeration(node)
        ):
            label = "ctables_equivalent(..., enumerate=True)"
        if label is None:
            continue
        if source.comment_on(node.lineno).startswith("enumeration-ok"):
            continue
        findings.append(
            Finding(
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
                code="EXP001",
                message=(
                    f"{label} enumerates possible worlds "
                    f"(exponential in variables) outside the oracle "
                    f"modules; decide symbolically "
                    f"(ctables_equivalent / repro.logic.equivalence) or "
                    f"waive with '# enumeration-ok: <reason>'"
                ),
            )
        )
    return findings
