"""MUT001 — mutable default argument values.

A ``def f(x, acc=[])`` default is evaluated once at definition time and
shared across every call; mutating it leaks state between calls.  The
lint flags list/dict/set displays and ``list()``/``dict()``/``set()``
calls used as parameter defaults.  Deliberate sentinels can be waived
with ``# mutable-default-ok: <reason>`` on the ``def`` line.
"""

from __future__ import annotations

import ast
from typing import List, Union

from tools.lint.common import Finding, Source

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_mutable(default: ast.expr) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                            ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in _MUTABLE_CALLS
        and not default.args
        and not default.keywords
    )


def lint_mutable_defaults(source: Source) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if source.comment_on(node.lineno).startswith("mutable-default-ok"):
            continue
        arguments = node.args
        defaults = list(arguments.defaults) + [
            d for d in arguments.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable(default):
                findings.append(
                    Finding(
                        path=source.path,
                        line=default.lineno,
                        col=default.col_offset,
                        code="MUT001",
                        message=(
                            f"mutable default argument in {node.name}(); "
                            "defaults are shared across calls — use None "
                            "and construct inside the body"
                        ),
                    )
                )
    return findings
