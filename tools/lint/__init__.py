"""Custom stdlib-ast source lints for the repository.

Run locally (or in CI) with::

    python -m tools.lint [paths...]

Defaults to linting ``src/``.  Exit status 1 when any finding is
reported.  See the individual modules for the lint rules:

- :mod:`tools.lint.interning` — INT001, raw condition constructors;
- :mod:`tools.lint.locks` — LCK001/LCK002, ``guarded-by`` discipline;
- :mod:`tools.lint.defaults` — MUT001, mutable default arguments;
- :mod:`tools.lint.typed` — TYP001, typed-core signature coverage;
- :mod:`tools.lint.enumeration` — EXP001, world enumeration outside
  the oracle modules;
- :mod:`tools.lint.obs_names` — OBS001, metric/span names outside the
  registered constant table.
"""

from tools.lint.common import Finding, Source, iter_python_files, run_linters
from tools.lint.defaults import lint_mutable_defaults
from tools.lint.enumeration import lint_enumeration
from tools.lint.interning import lint_interning
from tools.lint.locks import lint_locks
from tools.lint.obs_names import lint_obs_names
from tools.lint.typed import lint_typed_core

ALL_LINTERS = (
    lint_enumeration,
    lint_interning,
    lint_locks,
    lint_mutable_defaults,
    lint_obs_names,
    lint_typed_core,
)

__all__ = [
    "ALL_LINTERS",
    "Finding",
    "Source",
    "iter_python_files",
    "lint_enumeration",
    "lint_interning",
    "lint_locks",
    "lint_mutable_defaults",
    "lint_obs_names",
    "lint_typed_core",
    "run_linters",
]
