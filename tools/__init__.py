"""Developer tooling that is not part of the installable package."""
