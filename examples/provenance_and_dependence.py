"""§9 extensions in action: provenance, dependent variables, possibility.

The paper's final section sketches three directions; all are implemented
here and this example exercises each on a movie-recommendations dataset:

1. **why-provenance = c-table lineage** — the condition q̄ attaches to
   an answer tuple is exactly its why-provenance (for positive queries),
2. **conditional variable dependence** — a Bayesian-network-style joint
   distribution over pc-table variables,
3. **possibilistic c-tables** — the (max, min) counterpart of pc-tables.

Queries are written with the text parser for readability.

Run with ``python examples/provenance_and_dependence.py``.
"""

from fractions import Fraction

from repro import (
    CRow,
    Const,
    TOP,
    Var,
    apply_query,
    ctable_lineage,
    ctable_lineage_matches_provenance,
    parse_query,
    relation,
    why_provenance,
)
from repro.prob.bayes import DependentPCTable, VariableNetwork
from repro.prob.possibilistic import (
    PossibilisticCTable,
    verify_possibilistic_closure,
)


def provenance_section() -> None:
    print("=" * 70)
    print("1. Why-provenance = the c-table algebra's conditions (§9)")
    print("=" * 70)
    watched = relation(
        ("ann", "heat"), ("bob", "heat"), ("bob", "ronin")
    )
    # Who watched a movie someone else also watched?
    query = parse_query(
        "pi[1](sigma[2=4 & 1!=3](W x W))", {"W": 2}
    )
    print(f"data: {watched!r}")
    print(f"q   : {query!r}\n")
    for row in apply_query(query, watched):
        witnesses = why_provenance(query, watched, row)
        print(f"  {row}: witnesses = "
              + " | ".join(str(sorted(w)) for w in sorted(witnesses,
                                                          key=repr)))
        matches = ctable_lineage_matches_provenance(query, watched, row)
        print(f"        condition in q̄ ≡ provenance formula: {matches}")
    lineage = ctable_lineage(query, watched, ("ann",))
    print(f"\n  lineage of ('ann',) read off q̄: {lineage!r}\n")


def dependence_section() -> None:
    print("=" * 70)
    print("2. Dependent pc-table variables (conditional distributions)")
    print("=" * 70)
    # Whether Bob likes a sequel depends on whether he liked the original.
    liked = Var("liked_original")
    sequel = Var("likes_sequel")
    network = (
        VariableNetwork()
        .add_independent(
            "liked_original", {True: Fraction(3, 4), False: Fraction(1, 4)}
        )
        .add(
            "likes_sequel",
            ("liked_original",),
            {
                (True,): {True: Fraction(4, 5), False: Fraction(1, 5)},
                (False,): {True: Fraction(1, 10), False: Fraction(9, 10)},
            },
        )
    )
    from repro.logic.atoms import eq

    table = DependentPCTable(
        [
            CRow((Const("bob"), Const("heat")), eq(liked, True)),
            CRow((Const("bob"), Const("heat 2")), eq(sequel, True)),
        ],
        network,
        arity=2,
    )
    print("P[bob recommends 'heat']   =",
          table.tuple_probability(("bob", "heat")))
    print("P[bob recommends 'heat 2'] =",
          table.tuple_probability(("bob", "heat 2")))
    joint = table.mod().event_probability(
        lambda instance: ("bob", "heat") in instance
        and ("bob", "heat 2") in instance
    )
    print(f"P[both] = {joint}  (product of marginals would be "
          f"{table.tuple_probability(('bob', 'heat'))* table.tuple_probability(('bob', 'heat 2'))} — the variables are dependent)\n")


def possibilistic_section() -> None:
    print("=" * 70)
    print("3. Possibilistic c-tables: the (max, min) parallel")
    print("=" * 70)
    genre = Var("g")
    table = PossibilisticCTable(
        [CRow((Const("ronin"), genre), TOP)],
        {
            "g": {
                "thriller": Fraction(1),       # fully possible
                "action": Fraction(1, 2),      # somewhat possible
                "comedy": Fraction(1, 10),     # barely possible
            }
        },
    )
    pdb = table.mod()
    print("possibility distribution over worlds:")
    for instance, degree in pdb.items():
        print(f"  Π = {degree}: {sorted(instance.rows)}")
    print("Π[ronin is a thriller] =",
          pdb.tuple_possibility(("ronin", "thriller")))
    print("N[ronin is a thriller] =",
          pdb.tuple_necessity(("ronin", "thriller")))
    query = parse_query("sigma[2='thriller'](V)", {"V": 2})
    print("closed under queries (possibilistic Theorem 9):",
          verify_possibilistic_closure(query, table))


def main() -> None:
    provenance_section()
    dependence_section()
    possibilistic_section()


if __name__ == "__main__":
    main()
