"""Peer-to-peer data exchange with incomplete updates (Orchestra-style).

The paper was motivated by the Orchestra project, where incompleteness
arises "in the process of update propagation between sites".  This
example builds that scenario from the library's pieces:

- a *source* peer publishes gene annotations, but two updates arrive
  with unknown values (labeled nulls),
- the *mapping* to the target peer is a relational-algebra view,
- by closure (Theorem 4) the target's state is again a c-table, so the
  target can keep propagating without losing information,
- certain answers tell the target what is safe to show users, possible
  answers what to mark as tentative.

Run with ``python examples/orchestra_exchange.py``.
"""

from repro import (
    CTable,
    normalize,
    Var,
    apply_query_to_ctable,
    certain_answer_table,
    col_eq,
    col_eq_const,
    eq,
    ne,
    possible_answer_table,
    proj,
    prod,
    rel,
    sel,
    union,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Source peer: annotations(gene, function, organism).
    #
    # Update 1 arrived with the function unresolved (variable f): the
    # curator knows gene g1's function equals gene g2's (same variable!).
    # Update 2 has an unknown organism, but it is known not to be yeast.
    # ------------------------------------------------------------------
    f, o = Var("f"), Var("o")
    annotations = CTable(
        [
            ("g1", f, "human"),
            ("g2", f, "mouse"),
            (("g3", "kinase", o), ne(o, "yeast")),
            ("g4", "ligase", "yeast"),
        ]
    )
    print("Source peer's annotation c-table (labeled nulls shared!):")
    print(annotations.to_text())
    print()

    # ------------------------------------------------------------------
    # Exchange mapping: the target peer stores pairs of genes that have
    # the same function in different organisms — a self-join view.
    # ------------------------------------------------------------------
    V = rel("A", 3)
    # Same function, different gene (a disequality drops reflexive pairs).
    from repro import col_ne

    mapping = proj(
        sel(prod(V, V), col_eq(1, 4) & col_ne(0, 3)),
        [0, 3, 1],
    )
    print(f"Exchange mapping (self-join view): {mapping!r}")
    target = normalize(apply_query_to_ctable(mapping, annotations))
    print("\nTarget peer's state — again a c-table (closure, Theorem 4):")
    print(target.to_text())
    print()

    # ------------------------------------------------------------------
    # The target answers user queries under certain/possible semantics.
    # ------------------------------------------------------------------
    witness = annotations.witness_domain()
    certain = certain_answer_table(mapping, annotations, witness)
    possible = possible_answer_table(mapping, annotations, witness)
    print("Certain pairs (safe to display):")
    for row in certain:
        print("  ", row)
    print("Possible-but-uncertain pairs (display as tentative):")
    for row in sorted(set(possible.rows) - set(certain.rows), key=repr):
        print("  ", row)
    print()

    # ------------------------------------------------------------------
    # Update propagation composes: a second hop filters to kinases.
    # Still a c-table — incompleteness never forces materializing worlds.
    # ------------------------------------------------------------------
    second_hop = sel(rel("B", 3), col_eq_const(2, "kinase"))
    downstream = normalize(apply_query_to_ctable(second_hop, target))
    print("After a second exchange hop (kinase pairs only):")
    print(downstream.to_text() or "  (no rows can survive)")


if __name__ == "__main__":
    main()
