"""Probabilistic schema matching for bio-data sharing (SHARQ-style).

The paper's second motivating project, SHARQ, uses probabilistic models
for "approximate mappings between schemas used by groups of
researchers", with uncertainty from error-prone experiments and
tentative scientific hypotheses.  This example reproduces that setting:

- two labs publish protein measurements under different column
  conventions; which source column matches the target attribute is
  *uncertain*, with probabilities elicited from a matcher,
- each lab's measurements themselves carry per-tuple confidences,
- the integrated view is a probabilistic c-table; queries over it give
  exact answer distributions and per-tuple confidences (Theorems 8-9 at
  work on real-shaped data).

Run with ``python examples/sharq_probabilistic.py``.
"""

from fractions import Fraction

from repro import (
    BoolVar,
    CRow,
    Const,
    PCTable,
    Var,
    answer_pctable,
    col_eq_const,
    conj,
    eq,
    proj,
    rel,
    sel,
    tuple_probability_lineage,
    union,
)
from repro.logic.syntax import TOP


def main() -> None:
    # ------------------------------------------------------------------
    # The uncertain mapping.  Lab A reports (protein, level) where
    # "level" is the target's "expression" with probability 0.8, or its
    # "abundance" with probability 0.2.  We model the choice as a
    # variable m with a distribution — one correlated choice for the
    # whole source, exactly what pc-tables add over independent tuples.
    # ------------------------------------------------------------------
    m = Var("m")  # which target attribute lab A's "level" maps to
    # Per-tuple confidences from lab A's error-prone pipeline.
    a1, a2 = BoolVar("a1"), BoolVar("a2")
    # Lab B publishes (protein, abundance) directly, with confidences.
    b1 = BoolVar("b1")

    integrated = PCTable(
        [
            # target schema: (protein, attribute, value)
            CRow((Const("p53"), m, Const("high")), a1),
            CRow((Const("mdm2"), m, Const("low")), a2),
            CRow(
                (Const("p53"), Const("abundance"), Const("low")), b1
            ),
        ],
        {
            "m": {
                "expression": Fraction(8, 10),
                "abundance": Fraction(2, 10),
            },
            "a1": {True: Fraction(9, 10), False: Fraction(1, 10)},
            "a2": {True: Fraction(6, 10), False: Fraction(4, 10)},
            "b1": {True: Fraction(7, 10), False: Fraction(3, 10)},
        },
    )
    print("Integrated probabilistic c-table:")
    print(integrated.table.to_text())
    print()

    # ------------------------------------------------------------------
    # Query 1: what do we believe about p53's abundance?
    # ------------------------------------------------------------------
    V = rel("V", 3)
    p53_abundance = proj(
        sel(V, conj(col_eq_const(0, "p53"), col_eq_const(1, "abundance"))),
        [2],
    )
    answer = answer_pctable(p53_abundance, integrated)
    print("P[p53 abundance readings]:")
    for instance, weight in answer.mod().items():
        print(f"  {weight}: {sorted(instance.rows)}")
    print()

    # Conflicting evidence: 'high' only if lab A's column maps to
    # abundance AND its tuple is trusted.
    print(
        "P['high' is reported] =",
        tuple_probability_lineage(p53_abundance, integrated, ("high",)),
    )
    print(
        "P['low' is reported]  =",
        tuple_probability_lineage(p53_abundance, integrated, ("low",)),
    )
    print()

    # ------------------------------------------------------------------
    # Query 2: which proteins have any expression record?  Note how the
    # answer's probability is correlated across tuples through m.
    # ------------------------------------------------------------------
    expressed = proj(
        sel(V, col_eq_const(1, "expression")),
        [0],
    )
    answer2 = answer_pctable(expressed, integrated)
    print("Proteins with expression records (answer distribution):")
    for instance, weight in answer2.mod().items():
        print(f"  {weight}: {sorted(instance.rows)}")
    both = tuple_probability_lineage(expressed, integrated, ("p53",))
    print(f"\nP[p53 in answer] = {both}")
    print(
        "Correlation check: P[p53 AND mdm2 both in answer] =",
        answer2.mod().event_probability(
            lambda instance: ("p53",) in instance and ("mdm2",) in instance
        ),
        "(≠ product of marginals — the mapping choice m is shared)",
    )


if __name__ == "__main__":
    main()
