"""Safe plans vs lineage: when do answers stay independent-tuple?

Section 8 of the paper points at Dalvi–Suciu's result: a conjunctive
query over a p-?-table admits extensional (operator-local) probability
computation exactly when it is *hierarchical*; otherwise the answer
carries genuinely correlated lineage and only the intensional route
(c-table conditions → weighted model counting) is exact.

This example shows both sides on a small social-network dataset.

Run with ``python examples/safe_vs_unsafe.py``.
"""

from fractions import Fraction

from repro.prob.extensional import (
    ProbRelation,
    atom,
    cq,
    cq_lineage,
    is_hierarchical,
    lineage_probability_cq,
    safe_plan_probability,
)


def main() -> None:
    half = Fraction(1, 2)
    # Person(x): probabilistic entity resolution output.
    person = ProbRelation(
        "Person", {("ann",): Fraction(9, 10), ("bob",): Fraction(6, 10)}
    )
    # Follows(x, y): observed interactions with confidences.
    follows = ProbRelation(
        "Follows",
        {
            ("ann", "bob"): half,
            ("ann", "cat"): Fraction(3, 4),
            ("bob", "cat"): Fraction(1, 4),
        },
    )
    # Verified(y): account verification flags from a noisy crawl.
    verified = ProbRelation(
        "Verified", {("bob",): Fraction(4, 5), ("cat",): Fraction(2, 5)}
    )
    relations = {"Person": person, "Follows": follows, "Verified": verified}

    # ------------------------------------------------------------------
    # A safe (hierarchical) query: does any resolved person follow
    # someone?  at(x) ⊇ at(y) — nested, so a safe plan exists.
    # ------------------------------------------------------------------
    safe_query = cq(atom("Person", "x"), atom("Follows", "x", "y"))
    print(f"q_safe = {safe_query!r}")
    print("hierarchical:", is_hierarchical(safe_query))
    extensional = safe_plan_probability(safe_query, relations)
    exact = lineage_probability_cq(safe_query, relations)
    print(f"safe-plan probability : {extensional}")
    print(f"exact lineage answer  : {exact}")
    assert extensional == exact
    print("agreement: the extensional plan is exact here\n")

    # ------------------------------------------------------------------
    # The classic unsafe query: R(x), S(x,y), T(y) — someone resolved
    # follows someone verified.  at(x) and at(y) overlap on Follows but
    # neither contains the other: no safe plan exists.
    # ------------------------------------------------------------------
    unsafe_query = cq(
        atom("Person", "x"), atom("Follows", "x", "y"), atom("Verified", "y")
    )
    print(f"q_unsafe = {unsafe_query!r}")
    print("hierarchical:", is_hierarchical(unsafe_query))
    try:
        safe_plan_probability(unsafe_query, relations)
    except Exception as error:
        print(f"safe-plan evaluation refuses: {error}")
    exact = lineage_probability_cq(unsafe_query, relations)
    print(f"exact lineage answer  : {exact}")
    lineage = cq_lineage(unsafe_query, relations)
    print(f"lineage formula size  : {len(lineage.atoms())} tuple events")
    print(
        "\nThe lineage shares Verified(y) events across different x — the"
        "\ncorrelation no operator-local rule can track.  pc-tables carry"
        "\nexactly this lineage in their conditions, which is why the"
        "\npaper's probabilistic c-tables are closed where p-?-tables"
        "\nare not."
    )


if __name__ == "__main__":
    main()
