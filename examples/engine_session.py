"""The Engine/Session facade: prepared queries on a serving hot loop.

The paper's Theorems 4 and 8–9 say one representation answers every
downstream question; the session layer makes that an API.  This example

1. registers tables of *different* representation systems in one
   :class:`~repro.engine.Session` (a c-table and a pc-table),
2. runs a **100-iteration repeated-query loop** twice — through the flat
   per-call API (re-translate + re-plan every call, the pre-engine
   behavior) and through a prepared session query (planned once, plan
   cached in the engine's LRU) — and checks the answers are
   ``Mod``-equivalent,
3. reads certain answers, possible answers, lineage, and a tuple
   probability off the *same* lazy :class:`~repro.engine.Dataset`, i.e.
   off one evaluation of ``q̄(T)``.

Run with ``PYTHONPATH=src python examples/engine_session.py``.
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro import (
    CTable,
    Engine,
    PCTable,
    Var,
    apply_query_to_ctable,
    col_eq,
    col_eq_const,
    conj,
    ctables_equivalent,
    eq,
    ne,
    proj,
    prod,
    rel,
    sel,
)

ITERATIONS = 100


def serving_table(rows: int = 96) -> CTable:
    x, y = Var("x"), Var("y")
    entries = [((i % 13, i % 7), ne(x, i % 3)) for i in range(rows)]
    entries.append(((x, 1), eq(x, 2)))
    entries.append(((y, 3), ne(y, 1)))
    return CTable(entries, arity=2)


def main() -> None:
    table = serving_table()
    pctable = PCTable(
        [((1, Var("u")), eq(Var("u"), 10)), ((2, 20), ne(Var("u"), 10))],
        {"u": {10: Fraction(2, 5), 11: Fraction(3, 5)}},
        arity=2,
    )

    engine = Engine()  # optimizer on, plans cached
    session = engine.session(V=table, P=pctable)

    # A self-join the flat API re-plans on every call.
    query = proj(
        sel(
            prod(rel("V", 2), rel("V", 2)),
            conj(col_eq(1, 2), col_eq_const(0, 3)),
        ),
        [0, 3],
    )

    # -- the hot loop: flat per-call API vs one prepared query ---------
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        flat_answer = apply_query_to_ctable(query, table)
    flat_seconds = time.perf_counter() - start

    prepared = session.prepare(query)
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        session_answer = prepared.execute()
    session_seconds = time.perf_counter() - start

    assert ctables_equivalent(flat_answer, session_answer)
    print(f"{ITERATIONS}-iteration hot loop over {len(table)} c-table rows")
    print(f"  flat per-call API : {flat_seconds * 1000:8.1f} ms")
    print(f"  prepared session  : {session_seconds * 1000:8.1f} ms")
    print(f"  speedup           : {flat_seconds / session_seconds:8.1f}x")
    print(f"  plan cache        : {engine.plan_cache_stats()}")

    # -- one Dataset, every reading ------------------------------------
    answers = session.query(query)  # lazy; nothing evaluated yet
    print("\nplan actually served (cached):")
    print(answers.explain())
    print("\ncertain answers :", sorted(answers.certain().rows))
    print("possible answers:", sorted(answers.possible().rows))

    readings = session.query("pi[1](P)")  # strings parse against the registry
    print("\npc-table readings off one evaluation of q̄(T):")
    print("  certain   :", sorted(readings.certain().rows))
    print("  P[1 ∈ q]  :", readings.probability((1,)))
    print("  lineage(1):", readings.lineage((1,)))

    # Re-registering V evicts only plans that read V, then re-plans.
    session.register("V", serving_table(rows=16))
    smaller = session.query(query).collect()
    assert ctables_equivalent(
        smaller, apply_query_to_ctable(query, serving_table(rows=16))
    )
    print("\nafter re-register(V):", engine.plan_cache_stats())


if __name__ == "__main__":
    main()
