"""Observability: EXPLAIN ANALYZE, per-query traces, engine metrics.

Run with ``PYTHONPATH=src python examples/explain_analyze.py``.

Theorem 4 promises lifted evaluation in polynomial time; ``repro.obs``
is how the engine *shows its work* per operator.  ``explain
(analyze=True)`` executes the prepared query under tracing and renders
the physical tree with estimated-vs-actual cardinalities, per-operator
wall time, and cache-hit provenance; a drift column flags operators
whose estimate missed by ≥4×.  ``Engine.metrics_snapshot()`` exposes
unified hit/miss/eviction stats for all four caches plus optimizer
rule-fire and solver-call counters, renderable as Prometheus text, and
``trace=True`` (or ``REPRO_TRACE=1``) stores a JSON-able span tree per
execution.
"""

from repro import CTable, Engine, col_eq, col_eq_const, proj, prod, rel, sel
from repro.logic.syntax import TOP


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A skewed table the planner will mis-estimate.
    # ------------------------------------------------------------------
    # 90 of 100 rows share the value 7 in column 1; the uniform-
    # selectivity estimate for the filter is ~10x too low, so the
    # analyzer's drift column lights up.
    rows = [((index, 7), TOP) for index in range(90)]
    rows += [((90 + offset, 1000 + offset), TOP) for offset in range(10)]
    orders = CTable(rows, arity=2)
    lookup = CTable([((7, key), TOP) for key in range(5)], arity=2)

    engine = Engine()
    session = engine.session(Orders=orders, Lookup=lookup)

    print("EXPLAIN ANALYZE on a skewed filter (note the drift flag):")
    skewed = session.prepare(sel(rel("Orders", 2), col_eq_const(1, 7)))
    print(skewed.explain(analyze=True))
    print()

    # ------------------------------------------------------------------
    # 2. The same, on a join — per-operator actuals and provenance.
    # ------------------------------------------------------------------
    join = proj(
        sel(prod(rel("Orders", 2), rel("Lookup", 2)), col_eq(1, 2)), [0, 3]
    )
    prepared = session.prepare(join)
    print("EXPLAIN ANALYZE on a join (est vs act rows, per-op time):")
    print(prepared.explain(analyze=True))
    print()

    answer = prepared.execute()  # populate the result cache ...
    prepared.execute()  # ... and hit it
    print("after an execute, provenance shows the result-cache hit:")
    print(prepared.explain(analyze=True).splitlines()[2])
    print()

    # ------------------------------------------------------------------
    # 3. Morsel-parallel execution traced: workers and morsel counts.
    # ------------------------------------------------------------------
    parallel = session.prepare(
        join, executor="parallel", num_workers=2, trace=True
    )
    parallel.execute()
    trace = engine.last_trace()
    print("span tree of the traced parallel execution:")
    for span in trace["children"]:
        print(f"  {span['name']}: {sorted(span['attrs'])}")
    print()
    print("EXPLAIN ANALYZE under the parallel executor:")
    print(parallel.explain(analyze=True))
    print()

    # ------------------------------------------------------------------
    # 4. Engine-wide metrics: four caches, one snapshot.
    # ------------------------------------------------------------------
    snapshot = engine.metrics_snapshot()
    for name, stats in sorted(snapshot["caches"].items()):
        print(f"{name} cache: {stats}")
    print()
    print("Prometheus exposition (first lines):")
    for line in engine.metrics_prometheus().splitlines()[:8]:
        print(f"  {line}")

    assert len(answer) > 0
    assert "[drift" in skewed.explain(analyze=True)


if __name__ == "__main__":
    main()
