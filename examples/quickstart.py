"""Quickstart: incomplete data, queries, and probabilities in ten minutes.

Run with ``python examples/quickstart.py``.

The scenario: a course-enrollment table where some facts are unknown.
We model it as a c-table, query it with the relational algebra (closed:
the answer is again a c-table), then attach probabilities and compute
answer-tuple confidences — the full arc of Green & Tannen's paper.
"""

from fractions import Fraction

from repro import (
    CTable,
    PCTable,
    Var,
    answer_pctable,
    apply_query_to_ctable,
    certain_answer_table,
    col_eq_const,
    conj,
    disj,
    eq,
    ne,
    possible_answer_table,
    proj,
    rel,
    sel,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. An incomplete database as a c-table.
    #
    # We know Ann is enrolled in some course x; Bob is in the same
    # course as Ann, but only if that course is db or ai; Carol takes
    # logic unless Ann does too.
    # ------------------------------------------------------------------
    x = Var("x")
    enrollment = CTable(
        [
            ("Ann", x),
            (("Bob", x), disj(eq(x, "db"), eq(x, "ai"))),
            (("Carol", "logic"), ne(x, "logic")),
        ]
    )
    print("The c-table:")
    print(enrollment.to_text())
    print()

    # Possible worlds over a slice of the (infinite) course domain.
    domain = ["db", "ai", "logic"]
    print(f"Possible worlds over {domain}:")
    for world in sorted(map(repr, enrollment.mod_over(domain))):
        print(" ", world)
    print()

    # ------------------------------------------------------------------
    # 2. Query it: who is enrolled in db?  (Theorem 4: the c-table
    #    algebra gives the answer as another c-table.)
    # ------------------------------------------------------------------
    V = rel("V", 2)
    who_takes_db = proj(sel(V, col_eq_const(1, "db")), [0])
    answer = apply_query_to_ctable(who_takes_db, enrollment)
    print(f"q = {who_takes_db!r}")
    print("Answer c-table (conditions are lineage!):")
    print(answer.to_text())
    print()

    # Certain vs possible answers.
    witness = enrollment.witness_domain()
    print("certain:", certain_answer_table(who_takes_db, enrollment, witness))
    print("possible:", possible_answer_table(who_takes_db, enrollment,
                                             witness))
    print()

    # ------------------------------------------------------------------
    # 3. Attach probabilities: a probabilistic c-table (Definition 13).
    # ------------------------------------------------------------------
    probabilistic = PCTable(
        enrollment.rows,
        {
            "x": {
                "db": Fraction(1, 2),
                "ai": Fraction(1, 4),
                "logic": Fraction(1, 4),
            }
        },
    )
    print("P[Ann takes db]  =", probabilistic.tuple_probability(("Ann", "db")))
    print("P[Bob enrolled in db] =",
          probabilistic.tuple_probability(("Bob", "db")))
    print("P[Carol takes logic]  =",
          probabilistic.tuple_probability(("Carol", "logic")))
    print()

    # ------------------------------------------------------------------
    # 4. Probabilistic query answering (Theorem 9): the answer to the
    #    query is again a pc-table, with exact world probabilities.
    # ------------------------------------------------------------------
    answer_table = answer_pctable(who_takes_db, probabilistic)
    print("Answer distribution for q:")
    for instance, weight in answer_table.mod().items():
        print(f"  {weight}: {instance!r}")


if __name__ == "__main__":
    main()
