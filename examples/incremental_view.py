"""Incremental view maintenance: signed deltas through the lifted algebra.

A standing prepared query is a *materialized view* once the engine runs
with ``maintenance="incremental"``: the mutation API
(:meth:`Session.insert` / :meth:`~Session.delete` /
:meth:`~Session.update`) turns every data change into a signed delta
batch, and ``PreparedQuery.refresh()`` folds those deltas through the
view's per-operator state instead of re-executing the plan.  Lemma 1 is
what licenses this — each lifted operator composes conditions locally,
so a delta's conditions compose exactly as a full rerun would — and the
engine's contract is correspondingly strict: the maintained answer is
**structurally identical** (same rows, same interned condition objects,
same order) to a cold re-execution.

This example

1. registers two relations and prepares a standing join over them,
2. runs a mutate→refresh serving loop twice — incrementally maintained
   and fully re-executed — timing both and asserting the answers are
   identical after every cycle,
3. shows insert-then-delete cancellation restoring the previous answer
   byte-identically, and
4. reads the ``ivm_*`` counters off ``Engine.metrics_snapshot()``.

Run with ``PYTHONPATH=src python examples/incremental_view.py``.
"""

from __future__ import annotations

import time

from repro import CTable, Engine, Var, col_eq, eq, proj, prod, rel, sel
from repro.logic.syntax import TOP

ROWS = 1200
CYCLES = 8
CHANGED = ROWS // 100  # 1% churn per cycle


def serving_tables(rows: int = ROWS):
    """Join inputs with a symbolic stripe (every fourth left row)."""
    keys = max(1, rows // 8)
    left = CTable(
        [
            (
                (index, index % keys),
                eq(Var(f"c{index % 12}"), 1) if index % 4 == 0 else TOP,
            )
            for index in range(rows)
        ],
        arity=2,
    )
    right = CTable(
        [((index % keys, index), TOP) for index in range(rows)], arity=2
    )
    return left, right


def fresh_batch(cycle: int):
    keys = max(1, ROWS // 8)
    return [
        ((ROWS * 10 + cycle * CHANGED + offset, (cycle * CHANGED + offset) % keys), TOP)
        for offset in range(CHANGED)
    ]


def identical(left: CTable, right: CTable) -> bool:
    return left.rows == right.rows and all(
        mine.condition is theirs.condition
        for mine, theirs in zip(left.rows, right.rows)
    )


def main() -> None:
    query = proj(sel(prod(rel("L", 2), rel("R", 2)), col_eq(1, 2)), (0, 3))

    # -- two engines, one mutation script ------------------------------
    incremental = Engine(maintenance="incremental")
    rerun = Engine()  # maintenance="rerun" is the default

    views = {}
    for label, engine in (("incremental", incremental), ("rerun", rerun)):
        left, right = serving_tables()
        session = engine.session(L=left, R=right)
        views[label] = (session, session.prepare(query))
        views[label][1].refresh()  # build the view / warm the caches

    seconds = {"incremental": 0.0, "rerun": 0.0}
    for cycle in range(CYCLES):
        answers = {}
        for label, (session, prepared) in views.items():
            session.delete("L", list(session.table("L").rows[:CHANGED]))
            session.insert("L", fresh_batch(cycle))
            start = time.perf_counter()
            answers[label] = prepared.refresh()
            seconds[label] += time.perf_counter() - start
        assert identical(answers["incremental"], answers["rerun"])

    print(
        f"{CYCLES} cycles of {CHANGED}-row churn over {ROWS} rows/side "
        f"({len(answers['incremental'])} answer rows, identical each cycle)"
    )
    print(f"  full re-execution : {seconds['rerun'] * 1000:8.1f} ms")
    print(f"  delta refresh     : {seconds['incremental'] * 1000:8.1f} ms")
    print(f"  speedup           : {seconds['rerun'] / seconds['incremental']:8.1f}x")

    # -- cancellation: inserts annihilated by deletes ------------------
    session, prepared = views["incremental"]
    before = prepared.refresh()
    doomed = [((ROWS * 100 + offset, 0), TOP) for offset in range(5)]
    session.insert("L", doomed)
    session.delete("L", doomed)
    after = prepared.refresh()
    assert identical(before, after)
    print("\ninsert-then-delete of 5 rows: answer byte-identical", )

    # -- the ivm_* series off one snapshot -----------------------------
    counters = incremental.metrics_snapshot()["engine"]["counters"]
    print("\nivm counters:")
    for name in ("ivm_mutations_total", "ivm_delta_rows_total", "ivm_refresh_total"):
        for labels, value in counters.get(name, {}).items():
            print(f"  {name}{{{labels}}} = {value:.0f}")


if __name__ == "__main__":
    main()
