"""Query plans: inspecting and optimizing the lifted algebra.

Run with ``PYTHONPATH=src python examples/plan_explain.py``.

Theorem 4 says *any* relational-algebra formulation of a query yields a
``Mod``-equal answer c-table — which frees the engine to pick a better
formulation than the one the query was written in.  This example writes
a deliberately bad plan (selection far above a product, projection
applied last), renders the plan the engine would run verbatim and the
plan the rule-based optimizer picks instead (``explain()``), and checks
that both routes produce semantically identical answers.
"""

import time

from repro import CTable, Var, col_eq, col_eq_const, conj, ne, proj, prod, rel, sel
from repro.ctalgebra import collect_stats, explain, plan_for_query
from repro.ctalgebra.translate import translate_query
from repro.worlds import ctables_equivalent


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Two mid-sized c-tables and a badly written query.
    #
    # The query says: take the full cross product of suppliers and
    # shipments, then keep pairs that agree on the part column, with
    # the supplier in region 3 — and only then project the two columns
    # we wanted.  Verbatim evaluation pays for every pair.
    # ------------------------------------------------------------------
    x = Var("x")
    suppliers = CTable(
        [((i % 13, i % 7), ne(x, i % 3)) for i in range(120)], arity=2
    )
    shipments = CTable([(i % 7, i % 11) for i in range(120)], arity=2)
    tables = {"Sup": suppliers, "Ship": shipments}

    query = proj(
        sel(
            prod(rel("Sup", 2), rel("Ship", 2)),
            conj(col_eq(1, 2), col_eq_const(0, 3)),
        ),
        [0, 3],
    )
    print("The query as written:")
    print(f"  {query!r}")
    print()

    # ------------------------------------------------------------------
    # 2. The two plans, with the optimizer's cardinality estimates.
    # ------------------------------------------------------------------
    stats = collect_stats(tables)
    verbatim_plan = plan_for_query(query, tables)
    optimized_plan = plan_for_query(query, tables, optimize=True)
    print("Verbatim plan (selection fused into a join, nothing moved):")
    print(explain(verbatim_plan, stats))
    print()
    print("Optimized plan (constant selection pushed below the join):")
    print(explain(optimized_plan, stats))
    print()

    # ------------------------------------------------------------------
    # 3. Same Mod, different speed.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    verbatim_answer = translate_query(query, tables)
    verbatim_seconds = time.perf_counter() - start
    start = time.perf_counter()
    optimized_answer = translate_query(query, tables, optimize=True)
    optimized_seconds = time.perf_counter() - start
    assert ctables_equivalent(verbatim_answer, optimized_answer)
    print(
        f"verbatim:  {verbatim_seconds * 1000:7.1f}ms, "
        f"{len(verbatim_answer)} answer rows"
    )
    print(
        f"optimized: {optimized_seconds * 1000:7.1f}ms, "
        f"{len(optimized_answer)} answer rows"
    )
    print("ctables_equivalent: True — Theorem 4 at work.")


if __name__ == "__main__":
    main()
