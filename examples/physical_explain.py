"""The physical executor: lowered plans, vectorized batches, result cache.

Run with ``PYTHONPATH=src python examples/physical_explain.py``.

Theorem 4 fixes *what* a query on a c-table must produce; the engine is
free to choose *how*.  Below the logical plan (PR 2) and the prepared
query (PR 3) now sits a physical runtime: ``lower()`` turns the
optimized plan into a tree of vectorized batch operators — hash joins
with a statistics-chosen build side, filters that instantiate their
predicate once per distinct constant signature — and the engine's result
cache serves repeated identical reads without executing anything at all.
The interpreted lifted operators remain available as the oracle; the two
executors produce *structurally identical* answer tables.
"""

import time

from repro import CTable, Engine, Var, col_eq, col_eq_const, conj, eq, ne
from repro.algebra import proj, prod, rel, sel


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A session over two mid-sized c-tables and a join query.
    # ------------------------------------------------------------------
    x, y = Var("x"), Var("y")
    suppliers = CTable(
        [((i % 13, i % 7), ne(x, i % 3)) for i in range(400)]
        + [((x, 2), eq(x, 1))],
        arity=2,
    )
    shipments = CTable(
        [((i % 7, i % 11), eq(y, i % 4)) for i in range(80)], arity=2
    )
    query = proj(
        sel(
            prod(rel("Sup", 2), rel("Ship", 2)),
            conj(col_eq(1, 2), col_eq_const(0, 3)),
        ),
        [0, 3],
    )

    engine = Engine()  # executor="vectorized", result cache on
    session = engine.session(Sup=suppliers, Ship=shipments)
    dataset = session.query(query)

    # ------------------------------------------------------------------
    # 2. The logical plan — and the physical tree lowered from it.
    # ------------------------------------------------------------------
    print("Logical plan (rule-optimized, with estimates):")
    print(dataset.explain())
    print()
    print("Physical plan (explain(physical=True)):")
    print(dataset.explain(physical=True))
    print()

    # ------------------------------------------------------------------
    # 3. Interpreted oracle vs vectorized runtime: identical answers.
    # ------------------------------------------------------------------
    interpreted = Engine(executor="interpreted", result_cache_size=0)
    prepared_interp = interpreted.session(
        Sup=suppliers, Ship=shipments
    ).prepare(query)
    vectorized = Engine(executor="vectorized", result_cache_size=0)
    prepared_vect = vectorized.session(
        Sup=suppliers, Ship=shipments
    ).prepare(query)

    start = time.perf_counter()
    for _ in range(20):
        answer_interp = prepared_interp.execute()
    interp_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(20):
        answer_vect = prepared_vect.execute()
    vect_seconds = time.perf_counter() - start
    assert answer_vect == answer_interp  # same rows, same conditions
    print(
        f"interpreted: {interp_seconds * 1000:7.1f}ms for 20 runs, "
        f"{len(answer_interp)} answer rows"
    )
    print(
        f"vectorized:  {vect_seconds * 1000:7.1f}ms for 20 runs  "
        f"({interp_seconds / vect_seconds:.1f}x) — structurally identical"
    )
    print()

    # ------------------------------------------------------------------
    # 4. The result cache: a repeated identical read never executes.
    # ------------------------------------------------------------------
    first = session.query(query).collect()
    again = session.query(query).collect()  # a fresh Dataset, same read
    print(
        f"repeated read served from the result cache: {again is first} "
        f"({engine.result_cache_stats()})"
    )
    session.register("Ship", shipments)  # re-register → scoped eviction
    fresh = session.query(query).collect()
    print(f"after re-register the read re-executes: {fresh is not first}")


if __name__ == "__main__":
    main()
