"""A guided tour of every worked example in the paper.

Run with ``python examples/paper_tour.py``.  Each section prints the
paper's object, our reproduction of it, and a mechanical check of the
claim the paper makes about it.
"""

from fractions import Fraction

from repro import (
    CRow,
    CTable,
    Const,
    Instance,
    OrSet,
    OrSetRow,
    OrSetTable,
    PCTable,
    PQTable,
    POrSetTable,
    TOP,
    VTable,
    Var,
    apply_query,
    col_eq,
    col_ne,
    col_ne_const,
    conj,
    disj,
    eq,
    ne,
    proj,
    prod,
    rel,
    sel,
    singleton,
    union,
    verify_ra_definability,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def example_1() -> None:
    banner("Example 1 — a v-table R")
    x, y, z = Var("x"), Var("y"), Var("z")
    table = VTable([(1, 2, x), (3, x, y), (z, 4, 5)])
    print(table.to_text())
    worlds = table.mod_over([1, 2, 77, 89, 97])
    listed = Instance([(1, 2, 77), (3, 77, 89), (97, 4, 5)])
    print(f"\n|Mod(R)| over a 5-value slice: {len(worlds)}")
    print(f"paper's listed world {listed!r} is a member: {listed in worlds}")


def example_2() -> CTable:
    banner("Example 2 — a c-table S")
    x, y, z = Var("x"), Var("y"), Var("z")
    table = CTable(
        [
            ((1, 2, x), TOP),
            ((3, x, y), conj(eq(x, y), ne(z, 2))),
            ((z, 4, 5), disj(ne(x, 1), ne(x, y))),
        ]
    )
    print(table.to_text())
    worlds = table.mod_over([1, 2, 5, 77, 97])
    members = [
        Instance([(1, 2, 1), (3, 1, 1)]),
        Instance([(1, 2, 2), (1, 4, 5)]),
        Instance([(1, 2, 77), (97, 4, 5)]),
    ]
    print()
    for member in members:
        print(f"paper's listed world {member!r}: {member in worlds}")
    return table


def example_3() -> None:
    banner("Example 3 — an or-set-?-table T")
    table = OrSetTable(
        [
            OrSetRow((1, 2, OrSet((1, 2)))),
            OrSetRow((3, OrSet((1, 2)), OrSet((3, 4)))),
            OrSetRow((OrSet((4, 5)), 4, 5), True),
        ]
    )
    for row in table.rows:
        print(row)
    worlds = table.mod()
    print(f"\n|Mod(T)| = {len(worlds)} (finite, unlike Examples 1-2)")
    print(
        "listed member:",
        Instance([(1, 2, 1), (3, 1, 3), (4, 4, 5)]) in worlds,
    )


def example_4(s_table: CTable) -> None:
    banner("Example 4 — Mod(S) = q(Z₃): RA-definability (Theorem 1)")
    V = rel("V", 3)
    paper_query = union(
        proj(prod(singleton(1), singleton(2), V), [0, 1, 2]),
        proj(
            sel(prod(singleton(3), V), conj(col_eq(1, 2),
                                            col_ne_const(3, 2))),
            [0, 1, 2],
        ),
        proj(
            sel(
                prod(singleton(4), singleton(5), V),
                disj(col_ne_const(2, 1), col_ne(2, 3)),
            ),
            [4, 0, 1],
        ),
    )
    print("the paper's query:")
    print(" ", paper_query)
    single = Instance([(7, 7, 9)])
    print(f"\nq({{(7,7,9)}}) = {apply_query(paper_query, single)!r}")
    print(
        "generic Theorem 1 compiler verified on S:",
        verify_ra_definability(s_table),
    )


def example_5() -> None:
    banner("Example 5 — succinctness: finite c-table vs boolean c-table")
    from repro.completion import boolean_ctable_for

    for m, n in [(1, 3), (2, 3), (3, 2)]:
        variables = [Var(f"x{i}") for i in range(m)]
        finite = CTable(
            [tuple(variables)],
            domains={f"x{i}": range(n) for i in range(m)},
        )
        boolean = boolean_ctable_for(finite.mod())
        assert boolean.mod() == finite.mod()
        print(
            f"m={m} vars, |dom|={n}:  finite c-table rows = "
            f"{len(finite)},  boolean c-table rows = {len(boolean)} "
            f"(= n^m = {n ** m})"
        )


def example_6() -> None:
    banner("Example 6 — a p-or-set-table S and a p-?-table T")
    s_table = POrSetTable(
        [
            (1, {2: Fraction(3, 10), 3: Fraction(7, 10)}),
            (4, 5),
            (
                {6: Fraction(1, 2), 7: Fraction(1, 2)},
                {8: Fraction(1, 10), 9: Fraction(9, 10)},
            ),
        ]
    )
    t_table = PQTable(
        {(1, 2): Fraction(4, 10), (3, 4): Fraction(3, 10), (5, 6): Fraction(1)}
    )
    print(f"S has {len(s_table.mod())} worlds; all contain the sure row (4,5)")
    print(f"T: P[(1,2)] = {t_table.tuple_probability((1, 2))},",
          f"P[(5,6)] = {t_table.tuple_probability((5, 6))}")
    print(
        "Proposition 2 check (direct = product-space semantics):",
        t_table.mod_direct() == t_table.mod_product_space(),
    )


def intro_pctable() -> None:
    banner("Introduction — the Alice/Bob/Theo probabilistic c-table")
    x, t = Var("x"), Var("t")
    table = PCTable(
        [
            CRow((Const("Alice"), x), TOP),
            CRow((Const("Bob"), x), disj(eq(x, "phys"), eq(x, "chem"))),
            CRow((Const("Theo"), Const("math")), eq(t, 1)),
        ],
        {
            "x": {
                "math": Fraction(3, 10),
                "phys": Fraction(3, 10),
                "chem": Fraction(4, 10),
            },
            "t": {0: Fraction(15, 100), 1: Fraction(85, 100)},
        },
    )
    print(table.table.to_text())
    print("\nthe probability space it denotes:")
    for instance, weight in table.mod().items():
        print(f"  {weight}: {sorted(instance.rows)}")
    print("\nP[Bob takes chem] =", table.tuple_probability(("Bob", "chem")))

    from repro import answer_pctable, col_eq_const

    query = proj(sel(rel("V", 2), col_eq_const(1, "phys")), [0])
    answer = answer_pctable(query, table)
    print("\nWho takes physics? (Theorem 9 answer pc-table)")
    print(answer.table.to_text())


def main() -> None:
    example_1()
    s_table = example_2()
    example_3()
    example_4(s_table)
    example_5()
    example_6()
    intro_pctable()


if __name__ == "__main__":
    main()
