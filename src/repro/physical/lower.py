"""Lowering: optimized logical plans → physical operator trees.

``lower()`` walks a :class:`~repro.ctalgebra.plan.PlanNode` tree and
picks a physical operator per logical node, consulting the logical
plan's own cardinality/condition estimates when table statistics are
supplied:

- a :class:`~repro.ctalgebra.plan.JoinNode` whose predicate contains
  cross-operand column equalities becomes a
  :class:`~repro.physical.operators.HashJoinOp` with the **build side
  on the smaller estimated input**; without equijoin keys it lowers to
  the ``FilterOp``-over-``ProductOp`` pipeline (the nested-loop shape
  ``join_bar`` falls back to);
- a :class:`~repro.ctalgebra.plan.SelectNode` becomes a
  :class:`~repro.physical.operators.FilterOp`; the per-signature
  residual memo is disabled when the estimates predict nearly every row
  carries a distinct constant signature (the memo would only miss);
- the remaining operators map one-to-one.

When a :class:`~repro.physical.parallel.ParallelSpec` is supplied,
``lower()`` additionally stamps a **parallelism decision** on every
morselizable operator (filter, project, hash join, product,
difference, intersect): ``"parallel"`` when the estimated probe-input
cardinality clears the spec's morsel size (so the input would split
into at least two morsels), ``"serial"`` when the estimates say the
split can never pay.  Operators without an estimate stay ``"parallel"``
and are gated at runtime by the actual batch length — the scheduler
falls back to the serial kernel for single-morsel inputs either way.
``explain_physical`` renders the decision and the estimated morsel
count per operator.

Every choice preserves the structural-identity contract: whatever the
lowering picks — build sides, filter strategies, morselization — the
materialized answer equals the interpreted ``execute_plan`` result
row-for-row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.ctalgebra.verify import PlanVerifier
    from repro.obs.trace import TraceCollector
    from repro.physical.parallel import ParallelSpec

from repro.errors import QueryError
from repro.tables.ctable import CTable
from repro.algebra.predicates import check_predicate, split_equijoin
from repro.ctalgebra.plan import (
    ConstScan,
    DifferenceNode,
    EmptyNode,
    Estimate,
    IntersectionNode,
    JoinNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    Scan,
    SelectNode,
    TableStats,
    UnionNode,
    estimate,
    morsel_count,
)
from repro.physical.operators import (
    ConstScanOp,
    DifferenceOp,
    EmptyOp,
    ExecContext,
    FilterOp,
    HashJoinOp,
    IntersectOp,
    PhysicalOp,
    ProductOp,
    ProjectOp,
    ScanOp,
    UnionOp,
)


#: Below this estimated input size a memo cannot pay for its probes.
_MEMO_MIN_ROWS = 8.0


def _probe_child(op: PhysicalOp) -> Optional[PhysicalOp]:
    """The input the morsel scheduler would split for *op*, if any."""
    if isinstance(op, (FilterOp, ProjectOp)):
        return op.child
    if isinstance(op, HashJoinOp):
        return op.left if op.build_side == "right" else op.right
    if isinstance(op, (ProductOp, DifferenceOp, IntersectOp)):
        return op.left
    return None


def _stamp_parallel_decision(op: PhysicalOp, morsel_size: int) -> None:
    """Record whether the morsel scheduler should split *op*'s probe input.

    The decision keys on the *estimated* probe cardinality: more than
    one morsel's worth → ``"parallel"``.  Without an estimate the
    operator stays eligible and the scheduler gates on the actual batch
    length instead.  The decision never affects the answer — only which
    code path materializes it — so estimate misses cost speed, not
    correctness.
    """
    probe = _probe_child(op)
    if probe is None:
        return
    rows = probe.est_rows
    if rows is None:
        op.par_decision = "parallel"
        return
    op.est_morsels = morsel_count(rows, morsel_size)
    op.par_decision = "parallel" if rows > morsel_size else "serial"


def _expected_signatures(node: SelectNode, found: Estimate) -> float:
    """Crude count of distinct constant signatures the filter will see."""
    from repro.algebra.predicates import predicate_columns

    distinct = 1.0
    for index in sorted(predicate_columns(node.predicate)):
        if index < len(found.columns):
            column = found.columns[index]
            # Variable terms add (at most) one signature family each;
            # weigh them in through the non-constant fraction.
            spread = max(1, column.distinct_constants)
            distinct *= spread + (1.0 - column.constant_fraction) * spread
        else:
            distinct *= _MEMO_MIN_ROWS
    return distinct


def lower(
    plan: PlanNode,
    stats: Optional[Mapping[str, TableStats]] = None,
    parallel: Optional["ParallelSpec"] = None,
    _memo: Optional[Dict[PlanNode, Estimate]] = None,
    verifier: Optional["PlanVerifier"] = None,
) -> PhysicalOp:
    """Choose physical operators for *plan* (estimates-guided when given).

    *parallel* is a :class:`~repro.physical.parallel.ParallelSpec`;
    when given, every morselizable operator is stamped with the
    parallel/serial decision the morsel scheduler honors.  With a
    *verifier* (``ExecutionConfig.verify_plans``) the lowered tree is
    checked for the lowering invariants — stamps only on morselizable
    operators, morsel counts and build sides consistent with the
    estimates — before it is returned.
    """
    if _memo is None:
        _memo = {}

    def found(node: PlanNode) -> Optional[Estimate]:
        if stats is None:
            return None
        return estimate(node, stats, _memo)

    def recurse(node: PlanNode) -> PhysicalOp:
        if isinstance(node, Scan):
            op: PhysicalOp = ScanOp(node.name, node.rel_arity)
        elif isinstance(node, ConstScan):
            op = ConstScanOp(node.instance)
        elif isinstance(node, EmptyNode):
            op = EmptyOp(node.empty_arity, node.sources)
        elif isinstance(node, ProjectNode):
            bad = [
                c for c in node.columns if c < 0 or c >= node.child.arity
            ]
            if bad:
                from repro.errors import ArityError

                raise ArityError(
                    f"projection columns {bad} out of range for arity "
                    f"{node.child.arity}"
                )
            op = ProjectOp(recurse(node.child), node.columns)
        elif isinstance(node, SelectNode):
            check_predicate(node.predicate, node.child.arity)
            child_estimate = found(node.child)
            memoize = True
            if child_estimate is not None and child_estimate.rows >= _MEMO_MIN_ROWS:
                memoize = (
                    _expected_signatures(node, child_estimate)
                    < 0.5 * child_estimate.rows
                )
            op = FilterOp(recurse(node.child), node.predicate, memoize=memoize)
        elif isinstance(node, JoinNode):
            check_predicate(node.predicate, node.arity)
            pairs, residual = split_equijoin(node.predicate, node.left.arity)
            left_op = recurse(node.left)
            right_op = recurse(node.right)
            if not pairs:
                # join_bar's fallback: the blind nested loop, expressed
                # as the same Filter-over-Product pipeline (conj
                # flattening makes the conditions structurally equal).
                product_op = ProductOp(left_op, right_op)
                if (
                    left_op.est_rows is not None
                    and right_op.est_rows is not None
                ):
                    # The synthetic product has no plan node of its own;
                    # give it the obvious estimate so the parallelism
                    # decision (and explain) can see through it.
                    product_op.est_rows = left_op.est_rows * right_op.est_rows
                if parallel is not None:
                    _stamp_parallel_decision(product_op, parallel.morsel_size)
                op = FilterOp(product_op, node.predicate)
            else:
                build_side = "right"
                left_estimate = found(node.left)
                right_estimate = found(node.right)
                if (
                    left_estimate is not None
                    and right_estimate is not None
                    and left_estimate.rows < right_estimate.rows
                ):
                    build_side = "left"
                op = HashJoinOp(
                    left_op,
                    right_op,
                    node.predicate,
                    residual,
                    tuple(i for i, _ in pairs),
                    tuple(j for _, j in pairs),
                    build_side=build_side,
                )
        elif isinstance(node, ProductNode):
            op = ProductOp(recurse(node.left), recurse(node.right))
        elif isinstance(node, UnionNode):
            op = UnionOp(recurse(node.left), recurse(node.right))
        elif isinstance(node, DifferenceNode):
            op = DifferenceOp(recurse(node.left), recurse(node.right))
        elif isinstance(node, IntersectionNode):
            op = IntersectOp(recurse(node.left), recurse(node.right))
        else:
            raise QueryError(f"unknown plan node {node!r}")
        node_estimate = found(node)
        if node_estimate is not None:
            op.est_rows = node_estimate.rows
        if parallel is not None:
            _stamp_parallel_decision(op, parallel.morsel_size)
        return op

    root = recurse(plan)
    if verifier is not None:
        verifier.verify_physical(
            root,
            morsel_size=None if parallel is None else parallel.morsel_size,
            rule="lower",
        )
    return root


def execute_physical(
    physical: PhysicalOp,
    tables: Mapping[str, CTable],
    simplify_conditions: bool = False,
    collector: Optional["TraceCollector"] = None,
) -> CTable:
    """Run a lowered operator tree against bound tables.

    *collector* (EXPLAIN ANALYZE / tracing) receives per-operator
    actuals; None leaves the execution path untouched.
    """
    context = ExecContext(
        tables, simplify_conditions=simplify_conditions, collector=collector
    )
    return physical.execute(context).to_ctable()


def execute_plan_vectorized(
    plan: PlanNode,
    tables: Mapping[str, CTable],
    simplify_conditions: bool = False,
    stats: Optional[Mapping[str, TableStats]] = None,
    verifier: Optional["PlanVerifier"] = None,
) -> CTable:
    """Lower *plan* and execute it — the one-shot convenience entry."""
    return execute_physical(
        lower(plan, stats, verifier=verifier),
        tables,
        simplify_conditions=simplify_conditions,
    )


def explain_physical(physical: PhysicalOp) -> str:
    """Render a physical tree: labels, cardinality estimates, and — for
    trees lowered with a parallel spec — the per-operator parallel/serial
    decision with the estimated morsel count."""
    lines = []

    def annotate(op: PhysicalOp) -> str:
        label = op.label()
        if op.est_rows is not None:
            label += f"  rows≈{op.est_rows:.1f}"
        if op.par_decision is not None:
            if op.est_morsels is not None:
                label += f"  [{op.par_decision}, morsels≈{op.est_morsels}]"
            else:
                label += f"  [{op.par_decision}]"
        return label

    def render(op: PhysicalOp, prefix: str, child_prefix: str) -> None:
        lines.append(prefix + annotate(op))
        children = op.children()
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            render(child, child_prefix + connector, child_prefix + extension)

    render(physical, "", "")
    return "\n".join(lines)
