"""Vectorized physical operators over columnar batches.

Each operator pulls the batches of its children on demand and processes
their rows column-wise.  The runtime contract — checked by the
executor-equivalence tests — is *structural identity* with the
interpreted lifted operators of :mod:`repro.ctalgebra.lifted`: the same
rows, composed of the same interned condition objects, in the same
order.  That keeps the interpreted path usable as an oracle and lets the
engine flip executors without observable changes.

Where the speed comes from:

- :class:`FilterOp` partially evaluates the selection predicate **once
  per distinct constant signature** (the tuple of terms in the
  predicate's columns) and reuses the residual formula across all rows
  sharing the signature, instead of re-walking the predicate and
  rebuilding a substitution per row the way ``select_bar`` does;
- :class:`HashJoinOp` generalizes the fused ``join_bar`` to any equijoin
  keys the planner found, with the *build side chosen by the
  cardinality estimates* and the same per-signature predicate memo plus
  a condition-composition memo (pairs of interned formulas repeat
  heavily in generated and real workloads);
- :class:`ProjectOp` deduplicates projected rows through one hash pass,
  disjoining the conditions of now-identical rows (the paper's ``π̄``);
- :class:`DifferenceOp`/:class:`IntersectOp` reuse the constant-tuple
  hash-bucket scheme of the lifted operators and memoize the whole
  membership condition per distinct left value-tuple.

Each operator's work is split three ways so the morsel-driven scheduler
of :mod:`repro.physical.parallel` can reuse it: ``compute`` consumes
already-materialized input batches (``execute`` only adds the pull-based
recursion over children), the build-once shared state (hash-join
partitions, membership indexes, composer memos) is constructed by
separate helpers, and the per-row loops are *range kernels* that accept
an arbitrary row range — the serial path runs them over ``range(n)``,
the parallel scheduler over morsel slices, and both seal the merged
results through the same helpers, which is what keeps the outputs
structurally identical.
"""

from __future__ import annotations

from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.instance import Instance
    from repro.ctalgebra.plan import PlanNode
    from repro.obs.trace import TraceCollector

from repro.errors import ArityError, QueryError, nearest_name
from repro.logic.atoms import Const, Term, eq
from repro.logic.syntax import BOTTOM, TOP, Formula, conj, disj, neg
from repro.logic.evaluation import substitute
from repro.tables.ctable import CTable
from repro.physical.batch import Batch, merge_metadata

#: (left row, right row, composed condition) emitted by join/product loops.
_Pair = Tuple[int, int, Formula]

#: Hash-partitioned build side: (buckets, symbolic row ids, keyed flags).
_BuildIndex = Tuple[Dict[tuple, List[int]], List[int], List[bool]]


class ExecContext:
    """Per-execution state: table bindings plus shared memo tables."""

    __slots__ = (
        "tables",
        "simplify_conditions",
        "collector",
        "_scan_batches",
        "_simplify_memo",
    )

    def __init__(
        self,
        tables: Mapping[str, CTable],
        simplify_conditions: bool = False,
        collector: Optional["TraceCollector"] = None,
    ) -> None:
        self.tables = tables
        self.simplify_conditions = simplify_conditions
        #: Per-operator actuals sink (EXPLAIN ANALYZE / tracing); None —
        #: the overwhelmingly common case — keeps execution untouched.
        self.collector = collector
        self._scan_batches: Dict[str, Batch] = {}
        self._simplify_memo: Dict[Formula, Formula] = {}

    def scan_batch(self, name: str, rel_arity: int) -> Batch:
        """The columnar batch of a bound table (built once per execution,
        so self-joins transpose the table a single time)."""
        batch = self._scan_batches.get(name)
        if batch is None:
            table = self.tables.get(name)
            if table is None:
                hint = nearest_name(name, sorted(self.tables))
                raise QueryError(
                    f"no c-table bound for name {name!r}; bound names are "
                    f"{sorted(self.tables)}{hint}"
                )
            batch = Batch.from_ctable(table)
            self._scan_batches[name] = batch
        if batch.arity != rel_arity:
            raise QueryError(
                f"c-table {name!r} has arity {batch.arity}, "
                f"query expects {rel_arity}"
            )
        return batch

    def simplified(self, condition: Formula) -> Formula:
        """Memoized condition simplification (interned nodes hash O(1))."""
        cached = self._simplify_memo.get(condition)
        if cached is None:
            from repro.logic.simplify import simplify

            cached = simplify(condition)
            self._simplify_memo[condition] = cached
        return cached


def _finish(
    ctx: ExecContext,
    columns: Sequence[Sequence[Term]],
    conditions: Sequence[Formula],
    arity: int,
    domains: Optional[Dict[str, tuple]],
    global_condition: Formula,
) -> Batch:
    """Seal an operator's output, mirroring ``execute_plan``'s optional
    per-operator ``simplified()`` pass (leaf scans are exempt there too)."""
    if ctx.simplify_conditions:
        keep: List[int] = []
        simplified: List[Formula] = []
        for index, condition in enumerate(conditions):
            folded = ctx.simplified(condition)
            if folded is not BOTTOM:
                keep.append(index)
                simplified.append(folded)
        if len(keep) != len(conditions):
            columns = [
                tuple(column[index] for index in keep) for column in columns
            ]
        conditions = simplified
        global_condition = ctx.simplified(global_condition)
    return Batch(
        tuple(tuple(column) for column in columns),
        tuple(conditions),
        arity=arity,
        domains=domains,
        global_condition=global_condition,
    )


class PhysicalOp:
    """Base class of physical operators (a small pull-based tree)."""

    __slots__ = ("est_rows", "par_decision", "est_morsels")

    def __init__(self) -> None:
        #: Planner cardinality estimate, stamped by ``lower()`` when
        #: statistics are available; rendered by ``explain_physical``.
        self.est_rows: Optional[float] = None
        #: ``lower()``'s parallelism decision for this operator when a
        #: morsel spec was supplied: ``"parallel"`` (morselize when the
        #: input clears the morsel size at runtime) or ``"serial"``
        #: (the estimates say splitting never pays).  ``None`` for
        #: leaves/serial lowering; rendered by ``explain_physical``.
        self.par_decision: Optional[str] = None
        #: Estimated morsel count at the chosen morsel size (``None``
        #: without statistics).
        self.est_morsels: Optional[int] = None

    @property
    def arity(self) -> int:
        raise NotImplementedError

    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def execute(self, ctx: ExecContext) -> Batch:
        """Pull the children and process them — the serial path."""
        inputs = tuple(child.execute(ctx) for child in self.children())
        collector = ctx.collector
        if collector is None:
            return self.compute(ctx, inputs)
        started = perf_counter()
        output = self.compute(ctx, inputs)
        collector.record(self, inputs, output, perf_counter() - started)
        return output

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        """Process already-materialized input batches."""
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def walk(self) -> Iterator["PhysicalOp"]:
        yield self
        for child in self.children():
            yield from child.walk()


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------

class ScanOp(PhysicalOp):
    """Columnar scan of a bound input c-table."""

    __slots__ = ("name", "rel_arity")

    def __init__(self, name: str, rel_arity: int) -> None:
        super().__init__()
        self.name = name
        self.rel_arity = rel_arity

    @property
    def arity(self) -> int:
        return self.rel_arity

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        return ctx.scan_batch(self.name, self.rel_arity)

    def label(self) -> str:
        return f"Scan({self.name})"


class ConstScanOp(PhysicalOp):
    """A constant relation embedded as a variable-free batch."""

    __slots__ = ("instance",)

    def __init__(self, instance: "Instance") -> None:
        super().__init__()
        self.instance = instance

    @property
    def arity(self) -> int:
        return self.instance.arity

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        from repro.ctalgebra.plan import const_table

        return Batch.from_ctable(const_table(self.instance))

    def label(self) -> str:
        return f"ConstScan({list(self.instance.rows)!r})"


class EmptyOp(PhysicalOp):
    """A pruned region: no rows, but the sources' domains and globals."""

    __slots__ = ("empty_arity", "sources")

    def __init__(
        self, empty_arity: int, sources: "Tuple[PlanNode, ...]"
    ) -> None:
        super().__init__()
        self.empty_arity = empty_arity
        self.sources = sources

    @property
    def arity(self) -> int:
        return self.empty_arity

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        from repro.ctalgebra.plan import EmptyNode, empty_table

        node = EmptyNode(self.empty_arity, self.sources)
        return Batch.from_ctable(empty_table(node, ctx.tables))

    def label(self) -> str:
        return f"Empty[{self.empty_arity}]"


# ----------------------------------------------------------------------
# Filter
# ----------------------------------------------------------------------

class FilterOp(PhysicalOp):
    """Vectorized ``σ̄``: one predicate instantiation per constant signature.

    The predicate's column variables and their ``@i`` names are resolved
    at lowering time; execution takes one pass over the batch, looking
    each row's *signature* (its terms in the predicate columns) up in a
    memo of residual formulas.  A residual of ``true`` keeps the row's
    original interned condition object untouched — no conjunction is
    allocated at all (the ``select_bar`` fast exit, vectorized); a
    residual of ``false`` drops the row before it is ever materialized.

    ``memoize=False`` (chosen by ``lower()`` when the estimates say
    nearly every row has a distinct signature) skips the memo and
    instantiates per row — still with the hoisted column resolution.
    """

    __slots__ = ("child", "predicate", "memoize", "_pred_columns", "_names")

    def __init__(
        self, child: PhysicalOp, predicate: Formula, memoize: bool = True
    ) -> None:
        super().__init__()
        from repro.algebra.predicates import col, predicate_columns

        self.child = child
        self.predicate = predicate
        self.memoize = memoize
        self._pred_columns = tuple(sorted(predicate_columns(predicate)))
        self._names = tuple(col(index).name for index in self._pred_columns)

    @property
    def arity(self) -> int:
        return self.child.arity

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.child,)

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        (child,) = inputs
        memo: Dict[Tuple[Term, ...], Formula] = {}
        keep, kept_conditions, unchanged = self.filter_range(
            child, range(len(child.conditions)), memo
        )
        return self.seal(ctx, child, keep, kept_conditions, unchanged)

    def filter_range(
        self,
        child: Batch,
        rows: Iterable[int],
        memo: Dict[Tuple[Term, ...], Formula],
    ) -> Tuple[List[int], List[Formula], bool]:
        """The filter kernel over an arbitrary row range of *child*.

        Returns the kept row indexes, their composed conditions, and
        whether every visited row survived with its original interned
        condition object.  *memo* may be shared across concurrent range
        invocations: residuals are interned formulas, so a racing
        recomputation stores the identical object.
        """
        signature_columns = [child.columns[c] for c in self._pred_columns]
        conditions = child.conditions
        predicate = self.predicate
        names = self._names
        memoize = self.memoize
        keep: List[int] = []
        kept_conditions: List[Formula] = []
        unchanged = True
        for row in rows:
            signature = tuple(column[row] for column in signature_columns)
            residual = memo.get(signature) if memoize else None
            if residual is None:
                residual = substitute(predicate, dict(zip(names, signature)))
                if memoize:
                    memo[signature] = residual
            if residual is TOP:
                keep.append(row)
                kept_conditions.append(conditions[row])
                continue
            condition = conj(conditions[row], residual)
            if condition is BOTTOM:
                unchanged = False
                continue
            keep.append(row)
            kept_conditions.append(condition)
            if condition is not conditions[row]:
                unchanged = False
        return keep, kept_conditions, unchanged

    def seal(
        self,
        ctx: ExecContext,
        child: Batch,
        keep: Sequence[int],
        kept_conditions: Sequence[Formula],
        unchanged: bool,
    ) -> Batch:
        """Materialize the kernel results (the ``select_bar`` fast exit:
        a fully-unchanged batch is returned as the child object)."""
        conditions = child.conditions
        if unchanged and len(keep) == len(conditions):
            if not ctx.simplify_conditions:
                return child
            columns: Sequence[Sequence[Term]] = child.columns
        elif len(keep) == len(conditions):
            columns = child.columns
        else:
            columns = [
                tuple(column[row] for row in keep) for column in child.columns
            ]
        return _finish(
            ctx, columns, list(kept_conditions), self.arity,
            child.domains, child.global_condition,
        )

    def label(self) -> str:
        suffix = "" if self.memoize else " per-row"
        return f"Filter[{self.predicate!r}]{suffix}"


# ----------------------------------------------------------------------
# Project
# ----------------------------------------------------------------------

class ProjectOp(PhysicalOp):
    """Vectorized ``π̄`` with condition-dedup.

    One hash pass groups rows whose projected value-tuples became
    identical and disjoins their conditions in row order — exactly
    ``project_bar``'s merge, without building intermediate rows.
    """

    __slots__ = ("child", "columns")

    def __init__(self, child: PhysicalOp, columns: Tuple[int, ...]) -> None:
        super().__init__()
        self.child = child
        self.columns = tuple(columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.child,)

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        (child,) = inputs
        order, grouped = self.group_range(
            child, range(len(child.conditions))
        )
        return self.seal(ctx, child, order, grouped)

    def group_range(
        self, child: Batch, rows: Iterable[int]
    ) -> Tuple[List[Tuple[Term, ...]], Dict[Tuple[Term, ...], List[Formula]]]:
        """Group a row range by projected value-tuple, in row order."""
        projected = [child.columns[index] for index in self.columns]
        grouped: Dict[Tuple[Term, ...], List[Formula]] = {}
        order: List[Tuple[Term, ...]] = []
        conditions = child.conditions
        for row in rows:
            key = tuple(column[row] for column in projected)
            bucket = grouped.get(key)
            if bucket is None:
                grouped[key] = [conditions[row]]
                order.append(key)
            else:
                bucket.append(conditions[row])
        return order, grouped

    def seal(
        self,
        ctx: ExecContext,
        child: Batch,
        order: Sequence[Tuple[Term, ...]],
        grouped: Mapping[Tuple[Term, ...], List[Formula]],
    ) -> Batch:
        merged = [disj(*grouped[key]) for key in order]
        columns = (
            list(zip(*order))
            if order
            else [() for _ in range(self.arity)]
        )
        return _finish(
            ctx, columns, merged, self.arity,
            child.domains, child.global_condition,
        )

    def label(self) -> str:
        return f"Project[{','.join(str(c) for c in self.columns)}]"


# ----------------------------------------------------------------------
# Joins and products
# ----------------------------------------------------------------------

def _constant_key(
    columns: Sequence[Sequence[Term]], key_columns: Sequence[int], row: int
) -> Optional[tuple]:
    """The row's constant values at *key_columns*, or None if any is a Var."""
    key = []
    for index in key_columns:
        term = columns[index][row]
        if not isinstance(term, Const):
            return None
        key.append(term.value)
    return tuple(key)


class _PairComposer:
    """Shared condition composition for pairing operators.

    Instantiation is memoized per predicate-column *signature* and the
    three-way conjunction per (left condition, right condition, residual)
    triple — all interned objects, so the keys hash by identity.

    Hash-*matched* pairs (both key columns constant and equal) get a
    cheaper route: their equijoin conjuncts are known to fold to
    ``true``, so only the residual predicate is instantiated, over a
    much smaller signature.  ``conj`` flattening makes the composed
    condition structurally identical to the full instantiation.
    """

    __slots__ = (
        "predicate", "left", "right",
        "_full_spec", "_res_spec", "_full_inst", "_res_inst", "_conj",
    )

    def __init__(
        self,
        predicate: Formula,
        residual: Formula,
        left: Batch,
        right: Batch,
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self._full_spec = self._spec(predicate, left.arity)
        self._res_spec = self._spec(residual, left.arity)
        self._full_inst: Dict[tuple, Formula] = {}
        self._res_inst: Dict[tuple, Formula] = {}
        self._conj: Dict[tuple, Formula] = {}

    @staticmethod
    def _spec(
        predicate: Formula, left_arity: int
    ) -> Tuple[Formula, Tuple[str, ...], Tuple[int, ...], Tuple[int, ...]]:
        """(predicate, ``@i`` names, left columns, right columns)."""
        from repro.algebra.predicates import col, predicate_columns

        mentioned = tuple(sorted(predicate_columns(predicate)))
        names = tuple(col(index).name for index in mentioned)
        left_pred = tuple(i for i in mentioned if i < left_arity)
        right_pred = tuple(
            i - left_arity for i in mentioned if i >= left_arity
        )
        return (predicate, names, left_pred, right_pred)

    def _instantiate(
        self,
        spec: Tuple[Formula, Tuple[str, ...], Tuple[int, ...], Tuple[int, ...]],
        memo: Dict[tuple, Formula],
        i: int,
        j: int,
    ) -> Formula:
        predicate, names, left_pred, right_pred = spec
        signature = tuple(
            self.left.columns[c][i] for c in left_pred
        ) + tuple(self.right.columns[c][j] for c in right_pred)
        instantiated = memo.get(signature)
        if instantiated is None:
            instantiated = substitute(predicate, dict(zip(names, signature)))
            memo[signature] = instantiated
        return instantiated

    def _compose(
        self, left_condition: Formula, right_condition: Formula,
        instantiated: Formula,
    ) -> Formula:
        key = (left_condition, right_condition, instantiated)
        composed = self._conj.get(key)
        if composed is None:
            composed = conj(left_condition, right_condition, instantiated)
            self._conj[key] = composed
        return composed

    def condition(self, i: int, j: int) -> Formula:
        """``conj(l.condition, r.condition, c(t₁t₂))``, full predicate."""
        return self._compose(
            self.left.conditions[i],
            self.right.conditions[j],
            self._instantiate(self._full_spec, self._full_inst, i, j),
        )

    def matched_condition(self, i: int, j: int) -> Formula:
        """The pair condition when the constant equijoin keys agree."""
        return self._compose(
            self.left.conditions[i],
            self.right.conditions[j],
            self._instantiate(self._res_spec, self._res_inst, i, j),
        )


def _gather_pairs(
    left: Batch,
    right: Batch,
    pairs: Sequence[Tuple[int, int, Formula]],
) -> Tuple[List[Sequence[Term]], List[Formula]]:
    """Columns + conditions of the surviving (i, j, condition) pairs."""
    left_index = [i for i, _, _ in pairs]
    right_index = [j for _, j, _ in pairs]
    columns: List[Sequence[Term]] = [
        tuple(column[i] for i in left_index) for column in left.columns
    ]
    columns.extend(
        tuple(column[j] for j in right_index) for column in right.columns
    )
    return columns, [condition for _, _, condition in pairs]


class HashJoinOp(PhysicalOp):
    """``σ̄_c(T₁ ×̄ T₂)`` fused, hash-partitioned on arbitrary equijoin keys.

    Rows whose key columns are all constants are bucketed; a pair whose
    constants disagree could only produce a ``false`` condition, so it is
    never built.  Rows with a variable in a key column stay symbolic and
    pair with every opposite row (Lemma 1 quantifies over one valuation).

    ``build_side`` is chosen by ``lower()`` from the cardinality
    estimates.  Building on the left streams the (usually larger) right
    side through the hash table; the emitted pairs are then re-ranked to
    the probe-left order so the output stays structurally identical to
    ``join_bar``'s for downstream condition-dedup.
    """

    __slots__ = (
        "left", "right", "predicate", "residual",
        "left_keys", "right_keys", "build_side",
    )

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        predicate: Formula,
        residual: Formula,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        build_side: str = "right",
    ) -> None:
        super().__init__()
        if build_side not in ("left", "right"):
            raise QueryError(f"unknown build side {build_side!r}")
        self.left = left
        self.right = right
        self.predicate = predicate
        self.residual = residual
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.build_side = build_side

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        composer = _PairComposer(self.predicate, self.residual, left, right)
        if self.build_side == "right":
            build = self.build(right, self.right_keys)
            pairs = self.probe_left(
                left, right, composer, build, range(len(left))
            )
        else:
            build = self.build(left, self.left_keys)
            ranked = self.probe_right(
                left, right, composer, build, range(len(right))
            )
            pairs = self.restore_order(ranked)
        return self.seal(ctx, left, right, pairs)

    @staticmethod
    def build(batch: Batch, keys: Tuple[int, ...]) -> _BuildIndex:
        """Hash-partition the build side once: (buckets, symbolic, keyed).

        ``keyed[row]`` is False exactly for the symbolic rows — the
        probe-right rank pass needs it per probed row, so it is derived
        here once rather than per probe range.  The returned structures
        are read-only during probing, so morsel workers may share them
        without coordination.
        """
        buckets: Dict[tuple, List[int]] = {}
        symbolic: List[int] = []
        keyed = [True] * len(batch)
        for row in range(len(batch)):
            key = _constant_key(batch.columns, keys, row)
            if key is None:
                symbolic.append(row)
                keyed[row] = False
            else:
                buckets.setdefault(key, []).append(row)
        return buckets, symbolic, keyed

    def probe_left(
        self,
        left: Batch,
        right: Batch,
        composer: "_PairComposer",
        build: _BuildIndex,
        rows: Iterable[int],
    ) -> List[_Pair]:
        """Probe left rows in order against a right build (join_bar's loop).

        Emitted pairs are left-major, so concatenating the outputs of
        consecutive row ranges reproduces the full-range output exactly.
        """
        buckets, symbolic, _ = build
        all_right = range(len(right))
        pairs = []
        for i in rows:
            key = _constant_key(left.columns, self.left_keys, i)
            if key is None:
                for j in all_right:
                    condition = composer.condition(i, j)
                    if condition is not BOTTOM:
                        pairs.append((i, j, condition))
                continue
            matched = buckets.get(key)
            if matched is not None:
                # Constant keys agree: the equijoin conjuncts fold to
                # true, only the residual predicate needs instantiating.
                for j in matched:
                    condition = composer.matched_condition(i, j)
                    if condition is not BOTTOM:
                        pairs.append((i, j, condition))
            for j in symbolic:
                condition = composer.condition(i, j)
                if condition is not BOTTOM:
                    pairs.append((i, j, condition))
        return pairs

    def probe_right(
        self,
        left: Batch,
        right: Batch,
        composer: "_PairComposer",
        build: _BuildIndex,
        rows: Iterable[int],
    ) -> List[Tuple[int, int, int, Formula]]:
        """Build on the left, probe right rows; emit *ranked* pairs.

        A pair survives iff the left key is symbolic, the right key is
        symbolic, or both constants agree — the same set either way.  The
        probe-left output ranks pair (i, j) by ``(i, flag, j)`` where
        *flag* puts a symbolic right row after a keyed left row's bucket
        matches; :meth:`restore_order` sorts by that (unique) rank, so
        ranked pairs collected from disjoint right-row ranges merge into
        the exact probe-left row order regardless of range boundaries.
        """
        buckets, symbolic, left_keyed = build
        all_left = range(len(left))
        ranked = []
        for j in rows:
            key = _constant_key(right.columns, self.right_keys, j)
            if key is None:
                for i in all_left:
                    condition = composer.condition(i, j)
                    if condition is BOTTOM:
                        continue
                    flag = 1 if left_keyed[i] else 0
                    ranked.append((i, flag, j, condition))
                continue
            matched = buckets.get(key)
            if matched is not None:
                for i in matched:
                    condition = composer.matched_condition(i, j)
                    if condition is not BOTTOM:
                        ranked.append((i, 0, j, condition))
            for i in symbolic:
                condition = composer.condition(i, j)
                if condition is not BOTTOM:
                    ranked.append((i, 0, j, condition))
        return ranked

    @staticmethod
    def restore_order(ranked: list) -> list:
        """Sort ranked pairs back into the deterministic probe-left order."""
        ranked.sort(key=lambda pair: pair[:3])
        return [(i, j, condition) for i, _, j, condition in ranked]

    def seal(
        self,
        ctx: ExecContext,
        left: Batch,
        right: Batch,
        pairs: Sequence[_Pair],
    ) -> Batch:
        columns, conditions = _gather_pairs(left, right, pairs)
        domains, global_condition = merge_metadata(left, right)
        return _finish(
            ctx, columns, conditions, self.arity, domains, global_condition
        )

    def label(self) -> str:
        return f"HashJoin[{self.predicate!r}] build={self.build_side}"


class ProductOp(PhysicalOp):
    """``×̄``: every pair, with a pairwise condition-conjunction memo."""

    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalOp, right: PhysicalOp) -> None:
        super().__init__()
        self.left = left
        self.right = right

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        memo: Dict[Tuple[Formula, Formula], Formula] = {}
        pairs = self.pairs_range(left, right, memo, range(len(left)))
        return self.seal(ctx, left, right, pairs)

    @staticmethod
    def pairs_range(
        left: Batch,
        right: Batch,
        memo: Dict[Tuple[Formula, Formula], Formula],
        rows: Iterable[int],
    ) -> list:
        """Pair a range of left rows with every right row, left-major.

        *memo* may be shared across concurrent ranges: ``conj`` interns,
        so racing stores write the identical object.
        """
        pairs = []
        left_conditions = left.conditions
        right_conditions = right.conditions
        for i in rows:
            left_condition = left_conditions[i]
            for j, right_condition in enumerate(right_conditions):
                key = (left_condition, right_condition)
                condition = memo.get(key)
                if condition is None:
                    condition = conj(left_condition, right_condition)
                    memo[key] = condition
                if condition is not BOTTOM:
                    pairs.append((i, j, condition))
        return pairs

    def seal(
        self,
        ctx: ExecContext,
        left: Batch,
        right: Batch,
        pairs: Sequence[_Pair],
    ) -> Batch:
        columns, conditions = _gather_pairs(left, right, pairs)
        domains, global_condition = merge_metadata(left, right)
        return _finish(
            ctx, columns, conditions, self.arity, domains, global_condition
        )

    def label(self) -> str:
        return "Product"


# ----------------------------------------------------------------------
# Union / difference / intersection
# ----------------------------------------------------------------------

def _check_same_arity(left: PhysicalOp, right: PhysicalOp) -> None:
    if left.arity != right.arity:
        raise ArityError(
            f"arity mismatch: {left.arity} vs {right.arity}"
        )


class UnionOp(PhysicalOp):
    """``∪̄``: columnar concatenation."""

    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalOp, right: PhysicalOp) -> None:
        super().__init__()
        _check_same_arity(left, right)
        self.left = left
        self.right = right

    @property
    def arity(self) -> int:
        return self.left.arity

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        columns = [
            left_column + right_column
            for left_column, right_column in zip(left.columns, right.columns)
        ]
        conditions = list(left.conditions + right.conditions)
        domains, global_condition = merge_metadata(left, right)
        return _finish(
            ctx, columns, conditions, self.arity, domains, global_condition
        )

    def label(self) -> str:
        return "Union"


class _MembershipIndex:
    """The hash-bucket pairing of ``−̄``/``∩̄`` over a right batch.

    All-constant right rows are bucketed by value tuple; rows with a
    variable entry stay symbolic and pair with every left row.  The
    relevant right rows for a left row come back *in original right
    order*, so the composed membership conditions are structurally
    identical to the lifted operators'.  The whole membership condition
    is memoized per distinct left value-tuple — duplicate-valued left
    rows (common after projections) pay for it once.
    """

    __slots__ = ("right", "_buckets", "_symbolic", "_eq", "_memo")

    def __init__(self, right: Batch) -> None:
        self.right = right
        self._buckets: Dict[tuple, List[int]] = {}
        self._symbolic: List[int] = []
        for j in range(len(right)):
            key = _constant_key(right.columns, range(right.arity), j)
            if key is None:
                self._symbolic.append(j)
            else:
                self._buckets.setdefault(key, []).append(j)
        self._eq: Dict[Tuple[tuple, int], Formula] = {}
        self._memo: Dict[tuple, Formula] = {}

    def _candidates(self, values: tuple) -> Sequence[int]:
        if any(not isinstance(term, Const) for term in values):
            return range(len(self.right))
        key = tuple(term.value for term in values)
        matched = self._buckets.get(key)
        if matched is None:
            return self._symbolic
        if self._symbolic:
            return sorted(matched + self._symbolic)
        return matched

    def _equal_condition(self, values: tuple, j: int) -> Formula:
        cached = self._eq.get((values, j))
        if cached is None:
            cached = conj(
                *(
                    eq(term, column[j])
                    for term, column in zip(values, self.right.columns)
                )
            )
            self._eq[(values, j)] = cached
        return cached

    def membership(self, values: tuple, negated: bool) -> Formula:
        """``⋀ ¬(ϕ_{t₂} ∧ t₁=t₂)`` or ``⋁ (ϕ_{t₂} ∧ t₁=t₂)`` for *values*."""
        key = (values, negated)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        right_conditions = self.right.conditions
        parts = [
            conj(right_conditions[j], self._equal_condition(values, j))
            for j in self._candidates(values)
        ]
        if negated:
            result = conj(*(neg(part) for part in parts))
        else:
            result = disj(*parts)
        self._memo[key] = result
        return result


class _SetDifferenceBase(PhysicalOp):
    """Common machinery of ``−̄`` and ``∩̄``."""

    __slots__ = ("left", "right")

    _negated: bool

    def __init__(self, left: PhysicalOp, right: PhysicalOp) -> None:
        super().__init__()
        _check_same_arity(left, right)
        self.left = left
        self.right = right

    @property
    def arity(self) -> int:
        return self.left.arity

    def children(self) -> Tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def compute(self, ctx: ExecContext, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        index = _MembershipIndex(right)
        keep, conditions = self.membership_range(
            left, index, range(len(left.conditions))
        )
        return self.seal(ctx, left, right, keep, conditions)

    def membership_range(
        self, left: Batch, index: "_MembershipIndex", rows: Iterable[int]
    ) -> Tuple[List[int], List[Formula]]:
        """Compose membership conditions for a range of left rows.

        The index's buckets are read-only after construction; its
        condition memos are interning-idempotent, so morsel workers may
        probe one shared index concurrently.
        """
        keep: List[int] = []
        conditions: List[Formula] = []
        left_columns = left.columns
        left_conditions = left.conditions
        negated = self._negated
        for i in rows:
            values = tuple(column[i] for column in left_columns)
            condition = conj(
                left_conditions[i], index.membership(values, negated)
            )
            if condition is not BOTTOM:
                keep.append(i)
                conditions.append(condition)
        return keep, conditions

    def seal(
        self,
        ctx: ExecContext,
        left: Batch,
        right: Batch,
        keep: Sequence[int],
        conditions: Sequence[Formula],
    ) -> Batch:
        if len(keep) == len(left.conditions):
            columns: Sequence[Sequence[Term]] = left.columns
        else:
            columns = [
                tuple(column[i] for i in keep) for column in left.columns
            ]
        domains, global_condition = merge_metadata(left, right)
        return _finish(
            ctx, columns, list(conditions), self.arity, domains,
            global_condition,
        )


class DifferenceOp(_SetDifferenceBase):
    """``−̄``: keep ``t₁`` unless some ``t₂`` is present and equal."""

    __slots__ = ()
    _negated = True

    def label(self) -> str:
        return "Difference"


class IntersectOp(_SetDifferenceBase):
    """``∩̄``: keep ``t₁`` when some ``t₂`` is present and equal."""

    __slots__ = ()
    _negated = False

    def label(self) -> str:
        return "Intersect"
