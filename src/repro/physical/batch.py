"""Columnar batches: the unit of data flow in the physical runtime.

A :class:`Batch` is a c-table fragment laid out column-wise: ``arity``
tuple columns of terms plus one *condition column* of interned formula
objects (the interning layer of :mod:`repro.logic.syntax` makes the
formula object itself the id — comparing, hashing, and deduplicating
conditions are pointer operations).  Operators read the few columns they
need and process all rows of the batch in one pass, instead of
destructuring a :class:`~repro.tables.ctable.CRow` per tuple the way the
interpreted lifted operators do.

A batch also carries the representation-level metadata a c-table owns —
finite variable domains and the global condition — merged pairwise by
the binary operators exactly like
:func:`repro.ctalgebra.lifted._combine` does, so the final
:meth:`Batch.to_ctable` is structurally identical to what the
interpreted evaluation would have produced.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from repro.errors import TableError
from repro.logic.atoms import Term, Var
from repro.logic.syntax import Formula, TOP, conj
from repro.tables.ctable import CRow, CTable


class Batch:
    """A columnar c-table fragment plus the table-level metadata.

    The arity is stored explicitly rather than derived from the column
    count: an arity-0 batch (a boolean query, e.g. ``π̄_∅``) has no
    columns but still carries one empty value-tuple per condition.

    Concurrency contract: a batch is immutable after construction —
    columns, conditions, and metadata are never reassigned — so the
    morsel-parallel scheduler shares one batch across worker threads
    that each read a disjoint row range, with no coordination.  The one
    lazily-computed slot (:meth:`variables`) is a deterministic memo: a
    racing recomputation stores an equal value, never a different one.
    """

    __slots__ = (
        "columns", "conditions", "batch_arity", "domains",
        "global_condition", "_vars",
    )

    def __init__(
        self,
        columns: Tuple[Tuple[Term, ...], ...],
        conditions: Tuple[Formula, ...],
        arity: Optional[int] = None,
        domains: Optional[Dict[str, tuple]] = None,
        global_condition: Formula = TOP,
    ) -> None:
        if arity is None:
            if not columns:
                raise TableError("an empty batch needs an explicit arity")
            arity = len(columns)
        elif columns and arity != len(columns):
            raise TableError(
                f"declared arity {arity} does not match {len(columns)} columns"
            )
        self.columns = columns
        self.conditions = conditions
        self.batch_arity = arity
        self.domains = domains
        self.global_condition = global_condition
        self._vars: Optional[FrozenSet[str]] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return self.batch_arity

    def __len__(self) -> int:
        return len(self.conditions)

    def rows(self) -> Iterator[Tuple[Term, ...]]:
        """Yield the value tuples, row-wise (used at materialization)."""
        if self.columns:
            return iter(zip(*self.columns))
        # Zero-arity rows: one empty tuple per condition.
        return iter(() for _ in self.conditions)

    def variables(self) -> FrozenSet[str]:
        """Every variable in values, conditions, and the global (cached).

        Consulted only by the finite/infinite domain-merge check, which
        mirrors the one the lifted operators run on their materialized
        operands.
        """
        if self._vars is None:
            names = set(self.global_condition.variables())
            for condition in self.conditions:
                names |= condition.variables()
            for column in self.columns:
                for term in column:
                    if isinstance(term, Var):
                        names.add(term.name)
            self._vars = frozenset(names)
        return self._vars

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_ctable(cls, table: CTable) -> "Batch":
        """Columnar-ize *table* (one transpose; conditions stay interned)."""
        rows = table.rows
        if rows:
            columns = tuple(zip(*(row.values for row in rows)))
        else:
            columns = tuple(() for _ in range(table.arity))
        return cls(
            columns,
            tuple(row.condition for row in rows),
            arity=table.arity,
            domains=table.domains,
            global_condition=table.global_condition,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Tuple[CRow, ...],
        arity: int,
        domains: Optional[Dict[str, tuple]] = None,
        global_condition: Formula = TOP,
    ) -> "Batch":
        """Columnar-ize a bare row sequence under the given metadata.

        Used by the IVM layer (:mod:`repro.ivm.delta`) to carry the
        signed halves of a delta batch — fragments of a registered table
        rather than whole tables, so the metadata is supplied by the
        caller instead of read off a :class:`CTable`.
        """
        if rows:
            columns = tuple(zip(*(row.values for row in rows)))
        else:
            columns = tuple(() for _ in range(arity))
        return cls(
            columns,
            tuple(row.condition for row in rows),
            arity=arity,
            domains=domains,
            global_condition=global_condition,
        )

    def to_ctable(self) -> CTable:
        """Materialize the batch as a c-table.

        Rows whose condition folded to ``false`` never entered the batch,
        so the constructor's normalization pass finds nothing to drop.
        """
        rows = [
            CRow(values, condition)
            for values, condition in zip(self.rows(), self.conditions)
        ]
        return CTable(
            rows,
            arity=self.arity,
            domains=self.domains,
            global_condition=self.global_condition,
        )


def merge_metadata(left: Batch, right: Batch) -> Tuple[Optional[Dict[str, tuple]], Formula]:
    """Merged (domains, global condition) of two operand batches.

    Mirrors :func:`repro.ctalgebra.lifted._merge_domains` and the global
    conjunction of ``_combine``: shared variables must agree on their
    finite domains, and mixing a finite-domain operand with an
    infinite-domain one that actually has variables is rejected.
    """
    left_infinite = left.domains is None and left.variables()
    right_infinite = right.domains is None and right.variables()
    if (left_infinite and right.domains is not None) or (
        right_infinite and left.domains is not None
    ):
        raise TableError(
            "cannot combine an infinite-domain c-table with a finite-domain one"
        )
    if left.domains is None and right.domains is None:
        merged = None
    else:
        merged = dict(left.domains or {})
        for name, values in (right.domains or {}).items():
            existing = merged.get(name)
            if existing is not None and tuple(existing) != tuple(values):
                raise TableError(
                    f"variable {name!r} has conflicting domains in the operands"
                )
            merged[name] = tuple(values)
    return merged, conj(left.global_condition, right.global_condition)
