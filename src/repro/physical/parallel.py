"""Morsel-driven parallel execution of physical operator trees.

The vectorized runtime of :mod:`repro.physical.operators` already made
the batch the unit of work; this module makes it the unit of
*scheduling*.  A :class:`MorselScheduler` walks a lowered operator tree
bottom-up and, for every operator ``lower()`` marked ``parallel``,
splits the probe input into fixed-size **morsels** (contiguous row
ranges of the batch), runs the operator's range kernel over the morsels
on a shared :class:`~concurrent.futures.ThreadPoolExecutor` pool, and
merges the per-morsel outputs with a deterministic order-restoration
pass:

- filter / product / hash-join *probe-left* / difference / intersect
  kernels emit rows (or pairs) in probe-row order, so concatenating the
  morsel outputs in morsel order *is* the serial output;
- a *build-left* hash join emits rank-annotated pairs whose rank is
  unique per pair, so one global sort over the concatenated morsel
  outputs reproduces the serial probe-left order exactly (the same sort
  the serial path runs);
- a parallel projection merges the per-morsel group maps left to right,
  appending condition lists in morsel order, so the final disjunction
  per output row sees its inputs in original row order.

Shared build-once state — hash-join partitions, the
difference/intersect membership index, the condition-composition and
residual-instantiation memos — is constructed a single time on the
scheduling thread and then probed concurrently.  The buckets are
read-only during probing; the memos are *interning-idempotent* caches: a
racing recomputation produces the identical interned formula object (the
miss path of the interning table itself is serialized by a lock in
:mod:`repro.logic.syntax`), so the worst a race can do is waste a
little work, never change an answer.

The result is the runtime contract every executor mode obeys: the final
:class:`~repro.physical.batch.Batch` is **structurally identical** to
the serial vectorized result — same rows, same interned condition
objects, same order — for every ``num_workers`` and ``morsel_size``.
The differential fuzzing harness (``tests/harness.py``) pins this for
all three executors against the interpreted oracle.

On free-threaded CPython builds the morsel workers run truly
concurrently; under the GIL they interleave, which still keeps the
executor correct (and exercised by CI) while the speedup story waits on
the hardware — see benchmarks E31–E33.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.tables.ctable import CTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.ctalgebra.plan import PlanNode, TableStats
    from repro.ctalgebra.verify import PlanVerifier
    from repro.obs.trace import OperatorRecord, TraceCollector
from repro.physical.batch import Batch
from repro.physical.operators import (
    DifferenceOp,
    ExecContext,
    FilterOp,
    HashJoinOp,
    IntersectOp,
    PhysicalOp,
    ProductOp,
    ProjectOp,
    _MembershipIndex,
    _PairComposer,
)

#: Default number of rows per morsel.  Small enough that a few thousand
#: input rows split across a worker pool, large enough that the
#: per-morsel scheduling overhead stays amortized.
DEFAULT_MORSEL_SIZE = 256

#: Default worker-pool width.
DEFAULT_NUM_WORKERS = 4


@dataclass(frozen=True)
class ParallelSpec:
    """The two knobs of morsel-driven execution, as one value.

    ``lower()`` consults ``morsel_size`` for its parallel/serial
    decision per operator; the scheduler uses both.  The spec is frozen
    and hashable so prepared queries can cache one lowered tree per
    morsel size.
    """

    num_workers: int = DEFAULT_NUM_WORKERS
    morsel_size: int = DEFAULT_MORSEL_SIZE

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.morsel_size < 1:
            raise ValueError(
                f"morsel_size must be >= 1, got {self.morsel_size}"
            )


def morsel_ranges(total: int, morsel_size: int) -> List[range]:
    """Split ``range(total)`` into consecutive ranges of *morsel_size*."""
    return [
        range(start, min(start + morsel_size, total))
        for start in range(0, total, morsel_size)
    ]


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------

#: Process-wide pools keyed by worker count.  Spawning threads per query
#: would dominate small executions (and the engine runs many); morsel
#: tasks are leaf work — they never submit nested tasks — so sharing one
#: pool across queries and caller threads cannot deadlock.
#: The read in :func:`worker_pool` is deliberately lock-free: pools are
#: only ever inserted (never replaced) while the process lives, so a
#: stale read misses and falls into the locked slow path.
_POOLS: Dict[int, ThreadPoolExecutor] = {}  # guarded-by: _POOLS_LOCK [writes]
_POOLS_LOCK = threading.Lock()


def worker_pool(num_workers: int) -> ThreadPoolExecutor:
    """The shared morsel pool for *num_workers* (created on first use)."""
    pool = _POOLS.get(num_workers)
    if pool is None:
        with _POOLS_LOCK:
            pool = _POOLS.get(num_workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=num_workers,
                    thread_name_prefix=f"repro-morsel-{num_workers}",
                )
                _POOLS[num_workers] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Tear down every shared pool (tests; process exit joins them too)."""
    with _POOLS_LOCK:
        for pool in _POOLS.values():
            pool.shutdown(wait=True)
        _POOLS.clear()


class MorselScheduler:
    """Executes a physical tree, morselizing the operators lower() chose.

    One scheduler serves one execution: it owns the
    :class:`~repro.physical.operators.ExecContext` (table bindings plus
    the simplify memo) and borrows the shared worker pool.  Operators
    stamped ``par_decision == "parallel"`` whose probe input yields at
    least two morsels run their range kernel across the pool; everything
    else falls through to the operator's own serial ``compute``.
    """

    __slots__ = ("context", "pool", "morsel_size", "_record")

    def __init__(
        self,
        context: ExecContext,
        pool: ThreadPoolExecutor,
        morsel_size: int,
    ) -> None:
        if morsel_size < 1:
            raise ValueError(f"morsel_size must be >= 1, got {morsel_size}")
        self.context = context
        self.pool = pool
        self.morsel_size = morsel_size
        #: The collector record of the operator currently being computed
        #: on this (scheduling) thread — lets ``_map`` attribute morsels
        #: and workers without threading it through every handler.
        self._record: Optional["OperatorRecord"] = None

    # ------------------------------------------------------------------
    # Tree walk
    # ------------------------------------------------------------------

    def execute(self, op: PhysicalOp) -> Batch:
        inputs = tuple(self.execute(child) for child in op.children())
        collector = self.context.collector
        if collector is None:
            return self._compute(op, inputs)
        previous = self._record
        self._record = collector.open(op)
        started = perf_counter()
        output = self._compute(op, inputs)
        collector.record(op, inputs, output, perf_counter() - started)
        self._record = previous
        return output

    def _compute(self, op: PhysicalOp, inputs: Tuple[Batch, ...]) -> Batch:
        if op.par_decision == "parallel":
            handler = _HANDLERS.get(type(op))
            if handler is not None:
                return handler(self, op, inputs)
        return op.compute(self.context, inputs)

    def _map(self, kernel: Callable, ranges: Sequence[range]) -> list:
        """Run *kernel* over row ranges on the pool; results in morsel order.

        The first range runs on the scheduling thread itself — with
        ``num_workers == 1`` plus pool overhead that keeps the common
        two-morsel case from paying a full round trip for both halves.
        """
        record = self._record
        if record is not None:
            collector = self.context.collector
            assert collector is not None
            collector.add_morsels(record, len(ranges))
            # Bind narrowed locals for the closure (worker threads call it).
            sink, rec, inner = collector, record, kernel

            def traced_kernel(rows: range) -> object:
                sink.note_worker(rec, threading.current_thread().name)
                return inner(rows)

            kernel = traced_kernel

        futures = [self.pool.submit(kernel, rows) for rows in ranges[1:]]
        results = [kernel(ranges[0])]
        results.extend(future.result() for future in futures)
        return results

    def _morsels(self, total: int) -> Optional[List[range]]:
        """The morsel split of *total* rows, or None when a single morsel
        would cover them (splitting would be pure overhead)."""
        if total <= self.morsel_size:
            return None
        return morsel_ranges(total, self.morsel_size)

    # ------------------------------------------------------------------
    # Per-operator morsel handlers
    # ------------------------------------------------------------------

    def _filter(self, op: FilterOp, inputs: Tuple[Batch, ...]) -> Batch:
        (child,) = inputs
        ranges = self._morsels(len(child.conditions))
        if ranges is None:
            return op.compute(self.context, inputs)
        memo: dict = {}
        parts = self._map(
            lambda rows: op.filter_range(child, rows, memo), ranges
        )
        keep: List[int] = []
        kept_conditions: list = []
        unchanged = True
        for part_keep, part_conditions, part_unchanged in parts:
            keep.extend(part_keep)
            kept_conditions.extend(part_conditions)
            unchanged = unchanged and part_unchanged
        return op.seal(self.context, child, keep, kept_conditions, unchanged)

    def _project(self, op: ProjectOp, inputs: Tuple[Batch, ...]) -> Batch:
        (child,) = inputs
        ranges = self._morsels(len(child.conditions))
        if ranges is None:
            return op.compute(self.context, inputs)
        parts = self._map(lambda rows: op.group_range(child, rows), ranges)
        # Order-restoring merge: first-seen key order and per-key
        # condition order both follow original row order because the
        # morsels are consecutive and merged left to right.
        order: list = []
        grouped: dict = {}
        for part_order, part_grouped in parts:
            for key in part_order:
                bucket = grouped.get(key)
                if bucket is None:
                    grouped[key] = part_grouped[key]
                    order.append(key)
                else:
                    bucket.extend(part_grouped[key])
        return op.seal(self.context, child, order, grouped)

    def _hash_join(self, op: HashJoinOp, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        probe_rows = len(left) if op.build_side == "right" else len(right)
        ranges = self._morsels(probe_rows)
        if ranges is None:
            return op.compute(self.context, inputs)
        composer = _PairComposer(op.predicate, op.residual, left, right)
        if op.build_side == "right":
            build = op.build(right, op.right_keys)
            parts = self._map(
                lambda rows: op.probe_left(left, right, composer, build, rows),
                ranges,
            )
            pairs = [pair for part in parts for pair in part]
        else:
            build = op.build(left, op.left_keys)
            parts = self._map(
                lambda rows: op.probe_right(
                    left, right, composer, build, rows
                ),
                ranges,
            )
            ranked = [pair for part in parts for pair in part]
            pairs = op.restore_order(ranked)
        return op.seal(self.context, left, right, pairs)

    def _product(self, op: ProductOp, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        ranges = self._morsels(len(left))
        if ranges is None:
            return op.compute(self.context, inputs)
        memo: dict = {}
        parts = self._map(
            lambda rows: op.pairs_range(left, right, memo, rows), ranges
        )
        pairs = [pair for part in parts for pair in part]
        return op.seal(self.context, left, right, pairs)

    def _membership(self, op: PhysicalOp, inputs: Tuple[Batch, ...]) -> Batch:
        left, right = inputs
        ranges = self._morsels(len(left.conditions))
        if ranges is None:
            return op.compute(self.context, inputs)
        index = _MembershipIndex(right)
        parts = self._map(
            lambda rows: op.membership_range(left, index, rows), ranges
        )
        keep: List[int] = []
        conditions: list = []
        for part_keep, part_conditions in parts:
            keep.extend(part_keep)
            conditions.extend(part_conditions)
        return op.seal(self.context, left, right, keep, conditions)


_HANDLERS: Dict[type, Callable] = {
    FilterOp: MorselScheduler._filter,
    ProjectOp: MorselScheduler._project,
    HashJoinOp: MorselScheduler._hash_join,
    ProductOp: MorselScheduler._product,
    DifferenceOp: MorselScheduler._membership,
    IntersectOp: MorselScheduler._membership,
}

#: Operator types the scheduler can morselize; ``lower()`` only stamps a
#: parallel/serial decision on these.
PARALLELIZABLE_OPS = tuple(_HANDLERS)


def execute_parallel(
    physical: PhysicalOp,
    tables: Mapping[str, CTable],
    *,
    num_workers: int = DEFAULT_NUM_WORKERS,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
    simplify_conditions: bool = False,
    collector: Optional["TraceCollector"] = None,
) -> CTable:
    """Run a lowered operator tree with the morsel-driven scheduler.

    The tree should have been lowered with a
    :class:`ParallelSpec` so operators carry their parallel/serial
    decisions; a serially-lowered tree executes correctly but entirely
    serially (no decision, no morselization).  *collector* receives
    per-operator actuals (rows, morsels, worker attribution) when given.
    """
    context = ExecContext(
        tables, simplify_conditions=simplify_conditions, collector=collector
    )
    scheduler = MorselScheduler(
        context, worker_pool(num_workers), morsel_size
    )
    return scheduler.execute(physical).to_ctable()


def execute_plan_parallel(
    plan: "PlanNode",
    tables: Mapping[str, CTable],
    *,
    stats: Optional[Mapping[str, "TableStats"]] = None,
    num_workers: int = DEFAULT_NUM_WORKERS,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
    simplify_conditions: bool = False,
    verifier: Optional["PlanVerifier"] = None,
) -> CTable:
    """Lower *plan* with a parallel spec and execute it — the one-shot entry."""
    from repro.physical.lower import lower

    physical = lower(
        plan,
        stats,
        parallel=ParallelSpec(num_workers, morsel_size),
        verifier=verifier,
    )
    return execute_parallel(
        physical,
        tables,
        num_workers=num_workers,
        morsel_size=morsel_size,
        simplify_conditions=simplify_conditions,
    )
