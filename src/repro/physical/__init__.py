"""The physical execution subsystem: vectorized batch operators.

PR 2 gave the lifted c-table algebra a logical plan IR and PR 3 a
prepared-query layer that caches plans; this package is the layer in
between — a *physical* runtime that makes a cached plan fast.
:func:`lower` turns an optimized :class:`~repro.ctalgebra.plan.PlanNode`
tree into a tree of pull-based batch operators over the columnar
:class:`~repro.physical.batch.Batch` representation;
:func:`execute_physical` runs it.

The contract with the interpreted path (``execute_plan``) is structural
identity: same rows, same interned condition objects, same order.  The
engine's ``ExecutionConfig.executor`` knob flips between the executors
— ``"interpreted"`` (the oracle), ``"vectorized"`` (the serial batch
runtime), and ``"parallel"`` (the morsel-driven scheduler of
:mod:`repro.physical.parallel`, which splits batches into fixed-size
morsels across a shared worker pool and restores the deterministic
order on merge).  All three produce byte-for-byte the same answer
tables; the differential harness (``tests/harness.py``) and benchmarks
E28–E33 check them against each other.
"""

from repro.physical.batch import Batch, merge_metadata
from repro.physical.parallel import (
    DEFAULT_MORSEL_SIZE,
    DEFAULT_NUM_WORKERS,
    MorselScheduler,
    ParallelSpec,
    execute_parallel,
    execute_plan_parallel,
    morsel_ranges,
    shutdown_worker_pools,
    worker_pool,
)
from repro.physical.operators import (
    ConstScanOp,
    DifferenceOp,
    EmptyOp,
    ExecContext,
    FilterOp,
    HashJoinOp,
    IntersectOp,
    PhysicalOp,
    ProductOp,
    ProjectOp,
    ScanOp,
    UnionOp,
)
from repro.physical.lower import (
    execute_physical,
    execute_plan_vectorized,
    explain_physical,
    lower,
)

__all__ = [
    "Batch",
    "ConstScanOp",
    "DEFAULT_MORSEL_SIZE",
    "DEFAULT_NUM_WORKERS",
    "DifferenceOp",
    "EmptyOp",
    "ExecContext",
    "FilterOp",
    "HashJoinOp",
    "IntersectOp",
    "MorselScheduler",
    "ParallelSpec",
    "PhysicalOp",
    "ProductOp",
    "ProjectOp",
    "ScanOp",
    "UnionOp",
    "execute_parallel",
    "execute_physical",
    "execute_plan_parallel",
    "execute_plan_vectorized",
    "explain_physical",
    "lower",
    "merge_metadata",
    "morsel_ranges",
    "shutdown_worker_pools",
    "worker_pool",
]
