"""The physical execution subsystem: vectorized batch operators.

PR 2 gave the lifted c-table algebra a logical plan IR and PR 3 a
prepared-query layer that caches plans; this package is the layer in
between — a *physical* runtime that makes a cached plan fast.
:func:`lower` turns an optimized :class:`~repro.ctalgebra.plan.PlanNode`
tree into a tree of pull-based batch operators over the columnar
:class:`~repro.physical.batch.Batch` representation;
:func:`execute_physical` runs it.

The contract with the interpreted path (``execute_plan``) is structural
identity: same rows, same interned condition objects, same order.  The
engine's ``ExecutionConfig.executor`` knob flips between the two, with
the interpreted route kept as the oracle the equivalence tests (and
benchmarks E28–E30) check against.
"""

from repro.physical.batch import Batch, merge_metadata
from repro.physical.operators import (
    ConstScanOp,
    DifferenceOp,
    EmptyOp,
    ExecContext,
    FilterOp,
    HashJoinOp,
    IntersectOp,
    PhysicalOp,
    ProductOp,
    ProjectOp,
    ScanOp,
    UnionOp,
)
from repro.physical.lower import (
    execute_physical,
    execute_plan_vectorized,
    explain_physical,
    lower,
)

__all__ = [
    "Batch",
    "ConstScanOp",
    "DifferenceOp",
    "EmptyOp",
    "ExecContext",
    "FilterOp",
    "HashJoinOp",
    "IntersectOp",
    "PhysicalOp",
    "ProductOp",
    "ProjectOp",
    "ScanOp",
    "UnionOp",
    "execute_physical",
    "execute_plan_vectorized",
    "explain_physical",
    "lower",
    "merge_metadata",
]
