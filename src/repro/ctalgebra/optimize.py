"""A rule-based optimizer for logical plans over c-tables.

Every rewrite here is *classically* sound under set semantics, and
therefore sound on c-tables: by Lemma 1 each lifted operator commutes
with every valuation, so two classically equivalent plans map each world
``ν(T)`` to the same instance and hence have the same ``Mod`` (Theorem 4
quantifies over *any* equivalent formulation of ``q``).  The rules:

- **selection pushdown** through ``×̄`` (splitting the predicate into
  per-side and residual cross conjuncts), ``∪̄``, ``π̄`` (remapping
  column indexes through the projection list), ``−̄`` and ``∩̄``
  (``σ_c(L − R) = σ_c(L) − σ_c(R)``, and likewise for ``∩``);
- **join fusion**: a selection directly above a product becomes a
  :class:`~repro.ctalgebra.plan.JoinNode`, unlocking the equijoin hash
  partitioning of :func:`repro.ctalgebra.lifted.join_bar`;
- **projection pushdown** below products/joins and unions, keeping only
  the columns the output (and the join predicate) needs;
- **join reordering**: flattened ``×̄``/``⋈̄`` regions are re-ordered
  greedily by estimated cardinality, with conjuncts attached at the
  earliest join where their columns are available and a final ``π̄``
  restoring the original column order;
- **dead-branch pruning**: a selection whose predicate is unsatisfiable
  (decided by the DPLL engine underneath
  :func:`repro.logic.equality_sat.is_satisfiable_skeleton`) collapses
  its entire sub-plan to an :class:`~repro.ctalgebra.plan.EmptyNode`
  that preserves the region's domains and global conditions.

``optimize_plan`` runs the rules to a fixpoint (bounded); ``fuse_joins``
applies only the fusion rule and is the default, verbatim-shaped path of
:func:`repro.ctalgebra.translate.translate_query`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.logic.equality_sat import is_satisfiable_skeleton
from repro.logic.evaluation import substitute
from repro.logic.syntax import And, Bottom, Formula, TOP, Top, conj
from repro.algebra.predicates import (
    col,
    predicate_columns,
    shift_predicate,
)
from repro.ctalgebra.plan import (
    DifferenceNode,
    EmptyNode,
    IntersectionNode,
    JoinNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    SelectNode,
    TableStats,
    UnionNode,
    estimate,
    leaf_sources,
    plan_cost,
    predicate_selectivity,
)

from repro.obs.metrics import counter
from repro.obs.names import OPTIMIZER_RULES_TOTAL
from repro.obs.trace import current_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.ctalgebra.verify import PlanVerifier

_MAX_PASSES = 8


def _note_rule(rule: str, fired: bool) -> None:
    """Account one rule application in the process-wide metrics, and —
    when a query trace is active — on the innermost open span (the
    ``optimize`` span on the planned path)."""
    outcome = "fired" if fired else "no_fire"
    counter(OPTIMIZER_RULES_TOTAL, labels={"outcome": outcome, "rule": rule})
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(f"{rule}.{outcome}")


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _conjuncts(predicate: Formula) -> Tuple[Formula, ...]:
    """Top-level conjuncts (smart constructors keep ``And`` flattened)."""
    if isinstance(predicate, And):
        return predicate.children
    return (predicate,)


def _remap_columns(predicate: Formula, mapping: Mapping[int, int]) -> Formula:
    """Rewrite every column variable ``@i`` to ``@mapping[i]``."""
    substitution = {
        col(old).name: col(new) for old, new in mapping.items()
    }
    return substitute(predicate, substitution)


def _split_product_predicate(
    predicate: Formula, left_arity: int
) -> Tuple[Formula, Formula, Formula]:
    """Split into (left-only, right-only local, residual) conjunctions."""
    left_parts: List[Formula] = []
    right_parts: List[Formula] = []
    residual: List[Formula] = []
    for part in _conjuncts(predicate):
        columns = predicate_columns(part)
        if columns and max(columns) < left_arity:
            left_parts.append(part)
        elif columns and min(columns) >= left_arity:
            right_parts.append(shift_predicate(part, -left_arity))
        else:
            residual.append(part)
    return conj(*left_parts), conj(*right_parts), conj(*residual)


class _SatCache:
    """Memoized satisfiability of selection predicates.

    Predicates are interned formulas, so the dictionary lookup is a
    pointer hash; the DPLL + congruence check runs once per distinct
    predicate per optimization session.
    """

    def __init__(self) -> None:
        self._known: Dict[Formula, bool] = {}

    def satisfiable(self, predicate: Formula) -> bool:
        if isinstance(predicate, Top):
            return True
        if isinstance(predicate, Bottom):
            return False
        cached = self._known.get(predicate)
        if cached is None:
            cached = is_satisfiable_skeleton(predicate)
            self._known[predicate] = cached
        return cached


def _rebuild(node: PlanNode, children: Sequence[PlanNode]) -> PlanNode:
    """The same operator over new children."""
    if isinstance(node, ProjectNode):
        return ProjectNode(children[0], node.columns)
    if isinstance(node, SelectNode):
        return SelectNode(children[0], node.predicate)
    if isinstance(node, JoinNode):
        return JoinNode(children[0], children[1], node.predicate)
    if isinstance(node, ProductNode):
        return ProductNode(children[0], children[1])
    if isinstance(node, UnionNode):
        return UnionNode(children[0], children[1])
    if isinstance(node, DifferenceNode):
        return DifferenceNode(children[0], children[1])
    if isinstance(node, IntersectionNode):
        return IntersectionNode(children[0], children[1])
    return node


# ----------------------------------------------------------------------
# The verbatim path: join fusion only
# ----------------------------------------------------------------------

def fuse_joins(
    plan: PlanNode, verifier: Optional["PlanVerifier"] = None
) -> PlanNode:
    """Fuse each selection directly above a product into a join.

    This reproduces the seed dispatch of ``translate_query`` — the
    result table is structurally identical to the composed operators —
    and is applied on the non-optimized path too, so the equijoin fast
    path and per-operator simplification compose instead of excluding
    each other.
    """
    children = [fuse_joins(child, verifier) for child in plan.children()]
    plan = _rebuild(plan, children)
    if isinstance(plan, SelectNode) and isinstance(plan.child, ProductNode):
        fused = JoinNode(plan.child.left, plan.child.right, plan.predicate)
        _note_rule("fuse_joins", True)
        if verifier is not None:
            verifier.verify_rewrite("fuse_joins", plan, fused)
        return fused
    return plan


# ----------------------------------------------------------------------
# Local rewrite rules
# ----------------------------------------------------------------------

def _prune_to_empty(node: PlanNode) -> EmptyNode:
    return EmptyNode(node.arity, leaf_sources(node))


def _rewrite_select(node: SelectNode, sat: _SatCache) -> PlanNode:
    predicate = node.predicate
    child = node.child
    if isinstance(predicate, Top):
        return child
    if not sat.satisfiable(predicate):
        return _prune_to_empty(node)
    if isinstance(child, EmptyNode):
        return child
    if isinstance(child, SelectNode):
        return SelectNode(child.child, conj(child.predicate, predicate))
    if isinstance(child, UnionNode):
        return UnionNode(
            SelectNode(child.left, predicate),
            SelectNode(child.right, predicate),
        )
    if isinstance(child, (DifferenceNode, IntersectionNode)):
        rebuilt = type(child)(
            SelectNode(child.left, predicate),
            SelectNode(child.right, predicate),
        )
        return rebuilt
    if isinstance(child, ProjectNode):
        mapping = {
            index: child.columns[index]
            for index in range(len(child.columns))
        }
        return ProjectNode(
            SelectNode(child.child, _remap_columns(predicate, mapping)),
            child.columns,
        )
    if isinstance(child, ProductNode):
        return JoinNode(child.left, child.right, predicate)
    if isinstance(child, JoinNode):
        return JoinNode(
            child.left, child.right, conj(child.predicate, predicate)
        )
    return node


def _rewrite_join(node: JoinNode, sat: _SatCache) -> PlanNode:
    if isinstance(node.predicate, Top):
        return ProductNode(node.left, node.right)
    if not sat.satisfiable(node.predicate):
        return _prune_to_empty(node)
    if isinstance(node.left, EmptyNode) or isinstance(node.right, EmptyNode):
        return _prune_to_empty(node)
    left_only, right_only, residual = _split_product_predicate(
        node.predicate, node.left.arity
    )
    if isinstance(left_only, Top) and isinstance(right_only, Top):
        return node
    left = (
        node.left
        if isinstance(left_only, Top)
        else SelectNode(node.left, left_only)
    )
    right = (
        node.right
        if isinstance(right_only, Top)
        else SelectNode(node.right, right_only)
    )
    if isinstance(residual, Top):
        return ProductNode(left, right)
    return JoinNode(left, right, residual)


def _rewrite_project(node: ProjectNode) -> PlanNode:
    child = node.child
    if isinstance(child, EmptyNode):
        return EmptyNode(node.arity, child.sources)
    if node.columns == tuple(range(child.arity)):
        return child
    if isinstance(child, ProjectNode):
        return ProjectNode(
            child.child,
            tuple(child.columns[index] for index in node.columns),
        )
    if isinstance(child, UnionNode):
        return UnionNode(
            ProjectNode(child.left, node.columns),
            ProjectNode(child.right, node.columns),
        )
    if isinstance(child, (ProductNode, JoinNode)):
        return _push_project_through(node, child)
    return node


def _push_project_through(node: ProjectNode, child: PlanNode) -> PlanNode:
    """Keep only the columns the output and the join predicate need."""
    left_arity = child.left.arity
    predicate = child.predicate if isinstance(child, JoinNode) else TOP
    used = sorted(set(node.columns) | predicate_columns(predicate))
    used_left = [index for index in used if index < left_arity]
    used_right = [index for index in used if index >= left_arity]
    if (
        len(used_left) == left_arity
        and len(used_right) == child.right.arity
    ):
        return node
    mapping = {index: position for position, index in enumerate(used_left)}
    mapping.update(
        {
            index: len(used_left) + position
            for position, index in enumerate(used_right)
        }
    )
    left = (
        child.left
        if len(used_left) == left_arity
        else ProjectNode(child.left, tuple(used_left))
    )
    right = (
        child.right
        if len(used_right) == child.right.arity
        else ProjectNode(
            child.right, tuple(index - left_arity for index in used_right)
        )
    )
    if isinstance(predicate, Top):
        inner: PlanNode = ProductNode(left, right)
    else:
        inner = JoinNode(left, right, _remap_columns(predicate, mapping))
    outer = tuple(mapping[index] for index in node.columns)
    if outer == tuple(range(inner.arity)):
        return inner
    return ProjectNode(inner, outer)


def _rewrite_structural(node: PlanNode) -> PlanNode:
    """Empty-operand collapses for the remaining binary operators."""
    if isinstance(node, ProductNode) and (
        isinstance(node.left, EmptyNode) or isinstance(node.right, EmptyNode)
    ):
        return _prune_to_empty(node)
    if isinstance(node, IntersectionNode) and (
        isinstance(node.left, EmptyNode) or isinstance(node.right, EmptyNode)
    ):
        return _prune_to_empty(node)
    if isinstance(node, DifferenceNode) and isinstance(node.left, EmptyNode):
        return _prune_to_empty(node)
    if (
        isinstance(node, UnionNode)
        and isinstance(node.left, EmptyNode)
        and isinstance(node.right, EmptyNode)
    ):
        return _prune_to_empty(node)
    return node


def _apply_local_rule(
    node: PlanNode, sat: _SatCache
) -> Tuple[str, PlanNode]:
    """Dispatch one local rule; returns ``(rule_name, rewritten)``.

    The rule functions are resolved through module globals on purpose:
    the verifier's mutation tests monkeypatch them to seed deliberately
    broken rewrites.
    """
    if isinstance(node, SelectNode):
        return "rewrite_select", _rewrite_select(node, sat)
    if isinstance(node, JoinNode):
        return "rewrite_join", _rewrite_join(node, sat)
    if isinstance(node, ProjectNode):
        return "rewrite_project", _rewrite_project(node)
    return "rewrite_structural", _rewrite_structural(node)


def _rewrite_once(
    plan: PlanNode,
    sat: _SatCache,
    verifier: Optional["PlanVerifier"] = None,
) -> PlanNode:
    """One bottom-up pass of the local rules.

    With a *verifier*, every individual rule application is checked the
    moment it fires, so a violation names the offending rule and the
    exact before/after pair — not the fully-optimized wreckage.
    """
    children = [
        _rewrite_once(child, sat, verifier) for child in plan.children()
    ]
    node = _rebuild(plan, children)
    for _ in range(_MAX_PASSES):
        rule, rewritten = _apply_local_rule(node, sat)
        fired = rewritten != node
        _note_rule(rule, fired)
        if not fired:
            return node
        if verifier is not None:
            verifier.verify_rewrite(rule, node, rewritten)
        node = rewritten
    return node


# ----------------------------------------------------------------------
# Join reordering
# ----------------------------------------------------------------------

def _flatten_region(
    node: PlanNode,
    offset: int,
    operands: List[Tuple[PlanNode, int]],
    conjuncts: List[Formula],
) -> None:
    """Flatten nested products/joins; conjuncts in global column space."""
    if isinstance(node, (ProductNode, JoinNode)):
        _flatten_region(node.left, offset, operands, conjuncts)
        _flatten_region(
            node.right, offset + node.left.arity, operands, conjuncts
        )
        if isinstance(node, JoinNode):
            for part in _conjuncts(node.predicate):
                conjuncts.append(
                    part if offset == 0 else shift_predicate(part, offset)
                )
    else:
        operands.append((node, offset))


def _build_in_order(
    operands: Sequence[Tuple[PlanNode, int]],
    conjuncts: Sequence[Formula],
    order: Sequence[int],
    total_arity: int,
) -> PlanNode:
    """A left-deep tree placing *operands* in *order*.

    Conjuncts attach at the first join where all their columns are
    available; a final projection restores the original column order.
    """
    pending = [(part, predicate_columns(part)) for part in conjuncts]
    positions: Dict[int, int] = {}
    tree: Optional[PlanNode] = None
    for index in order:
        operand, start = operands[index]
        base = tree.arity if tree is not None else 0
        for local in range(operand.arity):
            positions[start + local] = base + local
        placed: Set[int] = set(positions)
        ready = [
            (part, columns)
            for part, columns in pending
            if columns <= placed
        ]
        pending = [
            (part, columns)
            for part, columns in pending
            if not columns <= placed
        ]
        predicate = conj(
            *(_remap_columns(part, positions) for part, _ in ready)
        )
        if tree is None:
            tree = (
                operand
                if isinstance(predicate, Top)
                else SelectNode(operand, predicate)
            )
        elif isinstance(predicate, Top):
            tree = ProductNode(tree, operand)
        else:
            tree = JoinNode(tree, operand, predicate)
    assert tree is not None and not pending
    outer = tuple(positions[index] for index in range(total_arity))
    if outer == tuple(range(total_arity)):
        return tree
    return ProjectNode(tree, outer)


def _greedy_order(
    operands: Sequence[Tuple[PlanNode, int]],
    conjuncts: Sequence[Formula],
    stats: Mapping[str, TableStats],
) -> List[int]:
    """Order operands by smallest estimated intermediate cardinality."""
    memo: Dict[PlanNode, object] = {}
    estimates = [estimate(operand, stats, memo) for operand, _ in operands]
    # Column stats in the original global column space.
    global_columns: List = []
    spans: List[Set[int]] = []
    for (operand, start), found in zip(operands, estimates):
        while len(global_columns) < start:
            global_columns.append(None)
        global_columns.extend(found.columns)
        spans.append(set(range(start, start + operand.arity)))
    tagged = [(part, predicate_columns(part)) for part in conjuncts]

    remaining = set(range(len(operands)))
    first = min(remaining, key=lambda index: estimates[index].rows)
    order = [first]
    remaining.remove(first)
    placed_columns = set(spans[first])
    current_rows = estimates[first].rows
    used: Set[int] = set()
    while remaining:
        best_index = None
        best_rows = None
        for candidate in remaining:
            columns = placed_columns | spans[candidate]
            selectivity = 1.0
            for tag, (part, part_columns) in enumerate(tagged):
                if tag in used or not part_columns <= columns:
                    continue
                selectivity *= predicate_selectivity(part, global_columns)
            rows = current_rows * estimates[candidate].rows * selectivity
            if best_rows is None or rows < best_rows:
                best_rows = rows
                best_index = candidate
        order.append(best_index)
        remaining.remove(best_index)
        placed_columns |= spans[best_index]
        for tag, (part, part_columns) in enumerate(tagged):
            if tag not in used and part_columns <= placed_columns:
                used.add(tag)
        current_rows = best_rows
    return order


def reorder_joins(
    plan: PlanNode,
    stats: Mapping[str, TableStats],
    verifier: Optional["PlanVerifier"] = None,
) -> PlanNode:
    """Reorder flattened join regions by estimated cardinality.

    The reordered candidate is kept only when the cost model says it is
    strictly cheaper than the region in its original operand order.
    """
    if isinstance(plan, (ProductNode, JoinNode)):
        flat: List[Tuple[PlanNode, int]] = []
        conjuncts: List[Formula] = []
        _flatten_region(plan, 0, flat, conjuncts)
        flat = [
            (reorder_joins(operand, stats, verifier), start)
            for operand, start in flat
        ]
        identity = list(range(len(flat)))
        rebuilt = _build_in_order(flat, conjuncts, identity, plan.arity)
        if rebuilt != plan:
            _note_rule("reorder_joins", True)
            if verifier is not None:
                verifier.verify_rewrite("reorder_joins", plan, rebuilt)
        if len(flat) < 3:
            return rebuilt
        order = _greedy_order(flat, conjuncts, stats)
        if order == identity:
            return rebuilt
        candidate = _build_in_order(flat, conjuncts, order, plan.arity)
        if verifier is not None:
            verifier.verify_rewrite("reorder_joins", plan, candidate)
        memo: Dict[PlanNode, object] = {}
        if plan_cost(candidate, stats, memo) < plan_cost(rebuilt, stats, memo):
            _note_rule("reorder_joins", True)
            return candidate
        _note_rule("reorder_joins", False)
        return rebuilt
    children = [
        reorder_joins(child, stats, verifier) for child in plan.children()
    ]
    return _rebuild(plan, children)


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

def optimize_plan(
    plan: PlanNode,
    stats: Optional[Mapping[str, TableStats]] = None,
    max_passes: int = _MAX_PASSES,
    verifier: Optional["PlanVerifier"] = None,
) -> PlanNode:
    """Run the rewrite rules to a (bounded) fixpoint.

    Sound by Theorem 4: the optimized plan's ``Mod`` equals the verbatim
    plan's, which the planner property tests check on randomized tables.
    With a *verifier* (``ExecutionConfig.verify_plans``), every single
    rule application is re-checked against the structural conservation
    laws and a violation raises
    :class:`~repro.errors.PlanVerificationError` naming the rule.
    """
    stats = stats or {}
    sat = _SatCache()
    for _ in range(max_passes):
        rewritten = _rewrite_once(plan, sat, verifier)
        rewritten = reorder_joins(rewritten, stats, verifier)
        if rewritten == plan:
            break
        plan = rewritten
    return plan
