"""Static verification of queries, logical plans, and physical plans.

The optimizer's soundness argument (Theorem 4: classically equivalent
plans share one ``Mod``) only covers rewrites that *are* classically
equivalent — a buggy rule that drops a residual conjunct, pushes a
predicate to the wrong product side, or truncates a projection produces
a well-formed tree that silently answers a different query.  Before this
module such bugs were caught probabilistically, by the differential
fuzzer, after the fact.  :class:`PlanVerifier` catches them at rewrite
time, structurally:

- **arity** — every operator's input/output arities are consistent, and
  every rewrite preserves the arity of the node it replaced;
- **scope** — plan predicates reference only column variables below the
  operand arity; a :class:`~repro.logic.atoms.BoolVar` or free domain
  variable inside a plan predicate is a scoping leak, and every variable
  of a c-table's conditions is covered by its domain metadata;
- **interning** — every condition/predicate sub-formula is the canonical
  node of the hash-consing table (the "structural equality ⇒ identity"
  invariant the morsel-parallel executor and the ``is``-keyed memos
  rely on);
- **conjunct-conservation** — a rewrite neither drops nor invents atoms:
  the normalized atom keys of the output predicates are exactly those of
  the input, modulo the two legal folds (a contradiction collapsing to
  ``false``, and column-equalities folding to ``true`` through a
  duplicated projection column);
- **leaf-conservation** — a rewrite touches operators, never leaves: the
  set of scanned relations/constants (including those remembered by an
  :class:`~repro.ctalgebra.plan.EmptyNode`) is preserved;
- **unsat-prune** — a rewrite may introduce an ``EmptyNode`` only when
  its input already contained one or its predicate is genuinely
  unsatisfiable (re-decided independently);
- **estimates** — cardinality/condition estimates are finite,
  non-negative, and shaped like the node's schema;
- **lowering** — physical trees carry parallel/serial stamps only on
  morselizable operators, morsel counts match the estimates they were
  derived from, and hash-join build sides agree with the estimates.

The checks above are purely *syntactic* and share one documented blind
spot: a shape-preserving predicate applied to the wrong join side keeps
every conjunct key, every leaf, and every arity intact.  In
``mode="semantic"`` the verifier therefore also performs **translation
validation**: each rewrite's before/after sub-plans are executed on
small *symbolic abstract tables* (fresh variable tuples, one boolean
row-presence flag per row) through the interpreted lifted operators,
and the two result tables must have per-tuple *equivalent conditions*
— decided by the cross-validated SAT+BDD engines of
:mod:`repro.logic.equivalence`, never by world enumeration.  A predicate
on the wrong side lands on the wrong tuple's fresh variables, so the
certificate fails by construction.

Verification is wired through :class:`repro.engine.config.ExecutionConfig`
(``verify_plans`` / env ``REPRO_VERIFY_PLANS``, with
``verify_mode`` / env ``REPRO_VERIFY_MODE`` selecting
``"syntactic"`` or ``"semantic"``): the optimizer then re-verifies after
**every individual rewrite rule** and names the offending rule in the
raised :class:`~repro.errors.PlanVerificationError`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Set, Tuple

from repro.errors import PlanVerificationError, QueryError, nearest_name
from repro.logic.atoms import Const, Eq, Term, Var, boolvar
from repro.logic.equality_sat import is_satisfiable_skeleton
from repro.logic.syntax import Bottom, Formula, is_atom, is_interned, walk
from repro.algebra.ast import Query, RelVar
from repro.algebra.predicates import column_index, is_column_var
from repro.ctalgebra.plan import (
    ConstScan,
    DifferenceNode,
    EmptyNode,
    Estimate,
    IntersectionNode,
    JoinNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    Scan,
    SelectNode,
    TableStats,
    UnionNode,
    estimate,
    execute_plan,
    morsel_count,
)
from repro.tables.ctable import CTable, make_row

#: Valid :class:`PlanVerifier` modes.
VERIFY_MODES = ("syntactic", "semantic")

#: Rows per relation in the semantic-certificate abstract tables.  Two
#: rows exercise duplication/cross effects (joins see every pairing)
#: while keeping the per-rewrite proof obligations tiny.
_ABSTRACT_ROWS = 2

if TYPE_CHECKING:  # pragma: no cover - layering: imported lazily at runtime
    from repro.physical.operators import PhysicalOp

#: Logical operators that carry a column-space predicate.
_PREDICATED = (SelectNode, JoinNode)

#: Binary operators whose operands must agree on arity.
_SAME_ARITY = (UnionNode, DifferenceNode, IntersectionNode)


def _term_key(term: Term) -> str:
    """Normalize a predicate term for conjunct-conservation comparison.

    Column indexes are deliberately erased: pushdown and reordering remap
    them legitimately, while the *shape* of an atom (column-to-column,
    column-to-constant, which constant) must survive every rewrite.
    """
    if is_column_var(term):
        return "col"
    if isinstance(term, Const):
        return f"const:{term.value!r}"
    return f"var:{term.name}"


def _atom_key(atom: Eq) -> Tuple[str, str]:
    first, second = _term_key(atom.left), _term_key(atom.right)
    return (first, second) if first <= second else (second, first)


def _atom_keys(plan: PlanNode) -> Set[Tuple[str, str]]:
    """Normalized keys of every equality atom in the plan's predicates."""
    keys: Set[Tuple[str, str]] = set()
    for node in plan.walk():
        if isinstance(node, _PREDICATED):
            for atom in node.predicate.atoms():
                if isinstance(atom, Eq):
                    keys.add(_atom_key(atom))
    return keys


def _leaf_keys(plan: PlanNode) -> Set[PlanNode]:
    """The set of leaf nodes, looking through ``EmptyNode`` memories."""
    leaves: Set[PlanNode] = set()
    for node in plan.walk():
        if isinstance(node, (Scan, ConstScan)):
            leaves.add(node)
        elif isinstance(node, EmptyNode):
            leaves.update(node.sources)
    return leaves


def _has_empty(plan: PlanNode) -> bool:
    return any(isinstance(node, EmptyNode) for node in plan.walk())


def _has_bottom_predicate(plan: PlanNode) -> bool:
    return any(
        isinstance(node, _PREDICATED) and isinstance(node.predicate, Bottom)
        for node in plan.walk()
    )


def _has_duplicated_projection(plan: PlanNode) -> bool:
    return any(
        isinstance(node, ProjectNode)
        and len(set(node.columns)) != len(node.columns)
        for node in plan.walk()
    )


class PlanVerifier:
    """Checks the structural invariants of plans and rewrites.

    One verifier is created per planning pipeline (its estimate memo is
    plan-identity keyed, so it must not outlive the statistics it was
    given).  All ``verify_*`` methods raise
    :class:`~repro.errors.PlanVerificationError` on the first violation
    and return ``None`` on success; :meth:`verify_query` raises plain
    :class:`~repro.errors.QueryError` since a malformed *query* is the
    caller's bug, not the planner's.
    """

    def __init__(
        self,
        stats: Optional[Mapping[str, TableStats]] = None,
        mode: str = "syntactic",
    ) -> None:
        if mode not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
            )
        self._stats = stats
        self._mode = mode
        self._memo: Dict[PlanNode, Estimate] = {}
        self._abstract: Dict[Tuple[str, int], CTable] = {}

    @property
    def mode(self) -> str:
        """The active verification mode (``"syntactic"`` or ``"semantic"``)."""
        return self._mode

    # ------------------------------------------------------------------
    # Queries (pre-translation)
    # ------------------------------------------------------------------

    def verify_query(self, query: Query, schema: Mapping[str, int]) -> None:
        """Check every relation reference against *schema* before planning.

        Unknown relations raise a :class:`~repro.errors.QueryError` that
        names the relation and its nearest registered match, instead of
        a deep ``KeyError`` inside translation.
        """
        for node in query.walk():
            if not isinstance(node, RelVar):
                continue
            declared = schema.get(node.name)
            if declared is None:
                hint = nearest_name(node.name, sorted(schema))
                raise QueryError(
                    f"query references unknown relation {node.name!r}; "
                    f"known relations are {sorted(schema)}{hint}"
                )
            if declared != node.rel_arity:
                raise QueryError(
                    f"query uses relation {node.name!r} with arity "
                    f"{node.rel_arity}, but it is declared with arity "
                    f"{declared}"
                )

    # ------------------------------------------------------------------
    # Logical plans
    # ------------------------------------------------------------------

    def verify_plan(
        self, plan: PlanNode, *, rule: Optional[str] = None
    ) -> None:
        """Check arity, predicate scoping, interning, and estimates."""
        for node in plan.walk():
            self._verify_node(node, rule)
        if self._stats is not None:
            self._verify_estimates(plan, rule)

    # ------------------------------------------------------------------
    # Maintained views (delta-plan shapes)
    # ------------------------------------------------------------------

    def verify_view(self, plan: PlanNode, view: object) -> None:
        """Check a maintained view's state tree against its plan.

        The incremental-maintenance layer (:mod:`repro.ivm.view`)
        shadows each plan position with an operator state; this check
        pins the shape invariants the delta rules rely on: the state
        tree is node-for-node isomorphic to the plan, every state's
        arity matches its plan node, and every state's maintained sort
        order is strictly increasing over exactly its row keys (the
        positional backbone of the rerun-order guarantee).
        """
        from repro.ivm.view import (  # local: ivm sits above ctalgebra
            MaterializedView,
            _JoinState,
            _ProjectState,
            _ScanState,
            _SelectState,
            _SetOpState,
            _State,
            _StaticState,
            _UnionState,
        )

        if not isinstance(view, MaterializedView):
            raise PlanVerificationError(
                "view", f"expected a MaterializedView, got {type(view).__name__}"
            )
        root = view.root
        if root is None:
            return  # Unsupported-plan fallback maintains no state tree.
        expected = {
            Scan: _ScanState,
            ConstScan: _StaticState,
            EmptyNode: _StaticState,
            SelectNode: _SelectState,
            ProjectNode: _ProjectState,
            JoinNode: _JoinState,
            ProductNode: _JoinState,
            UnionNode: _UnionState,
            DifferenceNode: _SetOpState,
            IntersectionNode: _SetOpState,
        }

        def check(node: PlanNode, state: "_State") -> None:
            wanted = expected.get(type(node))
            if wanted is None or not isinstance(state, wanted):
                raise PlanVerificationError(
                    "view",
                    f"plan node {node.label()} is shadowed by "
                    f"{type(state).__name__}, expected "
                    f"{wanted.__name__ if wanted else '?'}",
                    node=node,
                )
            if state.arity != node.arity:
                raise PlanVerificationError(
                    "view",
                    f"state arity {state.arity} != plan arity "
                    f"{node.arity} at {node.label()}",
                    node=node,
                )
            if isinstance(node, Scan) and state.name != node.name:  # type: ignore[attr-defined]
                raise PlanVerificationError(
                    "view",
                    f"scan state reads {state.name!r}, plan scans "  # type: ignore[attr-defined]
                    f"{node.name!r}",
                    node=node,
                )
            order = state.sorted_keys()
            if any(
                order[index] >= order[index + 1]
                for index in range(len(order) - 1)
            ):
                raise PlanVerificationError(
                    "view",
                    f"maintained order at {node.label()} is not strictly "
                    "increasing",
                    node=node,
                )
            if set(order) != set(state.rows):
                raise PlanVerificationError(
                    "view",
                    f"maintained order at {node.label()} disagrees with "
                    "the row keys",
                    node=node,
                )
            ordered = state.ordered_rows()
            if len(ordered) != len(order) or any(
                ordered[index] is not state.rows[key]
                for index, key in enumerate(order)
            ):
                raise PlanVerificationError(
                    "view",
                    f"maintained row list at {node.label()} disagrees "
                    "with the keyed rows",
                    node=node,
                )
            children = state.children()
            plan_children = node.children()
            if len(children) != len(plan_children):
                raise PlanVerificationError(
                    "view",
                    f"state at {node.label()} has {len(children)} children, "
                    f"plan has {len(plan_children)}",
                    node=node,
                )
            for child_node, child_state in zip(plan_children, children):
                check(child_node, child_state)

        check(plan, root)

    def _verify_node(self, node: PlanNode, rule: Optional[str]) -> None:
        if isinstance(node, Scan):
            if node.rel_arity < 0:
                raise PlanVerificationError(
                    "arity",
                    f"scan of {node.name!r} declares negative arity "
                    f"{node.rel_arity}",
                    rule=rule,
                    node=node,
                )
        elif isinstance(node, ProjectNode):
            child_arity = node.child.arity
            bad = [
                column
                for column in node.columns
                if column < 0 or column >= child_arity
            ]
            if bad:
                raise PlanVerificationError(
                    "arity",
                    f"projection references columns {bad} outside the "
                    f"child arity {child_arity}",
                    rule=rule,
                    node=node,
                )
        elif isinstance(node, _PREDICATED):
            self._verify_predicate(node.predicate, node.arity, rule, node)
        elif isinstance(node, _SAME_ARITY):
            if node.left.arity != node.right.arity:
                raise PlanVerificationError(
                    "arity",
                    f"{node.label()} operands have arities "
                    f"{node.left.arity} and {node.right.arity}",
                    rule=rule,
                    node=node,
                )
        elif isinstance(node, EmptyNode):
            if node.empty_arity < 0:
                raise PlanVerificationError(
                    "arity",
                    f"empty node declares negative arity {node.empty_arity}",
                    rule=rule,
                    node=node,
                )
            bad_sources = [
                source
                for source in node.sources
                if not isinstance(source, (Scan, ConstScan))
            ]
            if bad_sources:
                raise PlanVerificationError(
                    "leaf-conservation",
                    f"empty node remembers non-leaf sources {bad_sources}",
                    rule=rule,
                    node=node,
                )

    def _verify_predicate(
        self,
        predicate: Formula,
        arity: int,
        rule: Optional[str],
        node: object,
    ) -> None:
        for part in walk(predicate):
            if not is_interned(part):
                raise PlanVerificationError(
                    "interning",
                    f"predicate sub-formula {part!r} is not the canonical "
                    "interned node; build conditions through the smart "
                    "constructors",
                    rule=rule,
                    node=node,
                )
            if isinstance(part, Eq):
                for term in (part.left, part.right):
                    if isinstance(term, Var) and not is_column_var(term):
                        raise PlanVerificationError(
                            "scope",
                            f"predicate references non-column variable "
                            f"{term!r}; plan predicates scope over columns "
                            "only",
                            rule=rule,
                            node=node,
                        )
                    if is_column_var(term):
                        index = column_index(term)
                        if index < 0 or index >= arity:
                            raise PlanVerificationError(
                                "arity",
                                f"predicate references column {index} but "
                                f"the operand arity is {arity}",
                                rule=rule,
                                node=node,
                            )
            elif is_atom(part):
                raise PlanVerificationError(
                    "scope",
                    f"predicate contains non-equality atom {part!r} "
                    "(boolean condition variables scope to table rows, "
                    "not plans)",
                    rule=rule,
                    node=node,
                )

    def _verify_estimates(self, plan: PlanNode, rule: Optional[str]) -> None:
        stats = self._stats
        assert stats is not None
        for node in plan.walk():
            found = estimate(node, stats, self._memo)
            if not math.isfinite(found.rows) or found.rows < 0:
                raise PlanVerificationError(
                    "estimates",
                    f"estimated cardinality {found.rows!r} is not a finite "
                    "non-negative number",
                    rule=rule,
                    node=node,
                )
            if (
                not math.isfinite(found.condition_size)
                or found.condition_size < 0
            ):
                raise PlanVerificationError(
                    "estimates",
                    f"estimated condition size {found.condition_size!r} is "
                    "not a finite non-negative number",
                    rule=rule,
                    node=node,
                )
            if len(found.columns) != node.arity:
                raise PlanVerificationError(
                    "estimates",
                    f"estimate carries {len(found.columns)} column summaries "
                    f"for a node of arity {node.arity}",
                    rule=rule,
                    node=node,
                )

    # ------------------------------------------------------------------
    # Rewrites
    # ------------------------------------------------------------------

    def verify_rewrite(
        self, rule: str, before: PlanNode, after: PlanNode
    ) -> PlanNode:
        """Check one rewrite rule application; returns *after* on success.

        Beyond re-verifying the rewritten tree, the rewrite itself must
        preserve arity, the leaf set, and the predicate atoms (modulo
        provable folds) — the conservation laws every Theorem-4-sound
        rewrite obeys.
        """
        if after.arity != before.arity:
            raise PlanVerificationError(
                "arity",
                f"rewrite changed the arity from {before.arity} to "
                f"{after.arity}",
                rule=rule,
                node=after,
            )
        self.verify_plan(after, rule=rule)

        before_leaves = _leaf_keys(before)
        after_leaves = _leaf_keys(after)
        if before_leaves != after_leaves:
            dropped = before_leaves - after_leaves
            added = after_leaves - before_leaves
            raise PlanVerificationError(
                "leaf-conservation",
                f"rewrite changed the leaf set (dropped {sorted(map(repr, dropped))}, "
                f"added {sorted(map(repr, added))})",
                rule=rule,
                node=after,
            )

        collapsed = isinstance(after, EmptyNode) and not isinstance(
            before, EmptyNode
        )
        before_keys = _atom_keys(before)
        after_keys = _atom_keys(after)
        invented = after_keys - before_keys
        if invented:
            raise PlanVerificationError(
                "conjunct-conservation",
                f"rewrite invented predicate atoms {sorted(invented)}",
                rule=rule,
                node=after,
            )
        missing = before_keys - after_keys
        if missing and not collapsed and not _has_bottom_predicate(after):
            if _has_duplicated_projection(before):
                # A non-injective projection remap may legally fold
                # column-to-column equalities to ``true``.
                missing = {key for key in missing if key != ("col", "col")}
            if missing:
                raise PlanVerificationError(
                    "conjunct-conservation",
                    f"rewrite dropped predicate atoms {sorted(missing)} "
                    "without folding the region to empty",
                    rule=rule,
                    node=after,
                )

        if collapsed or (_has_empty(after) and not _has_empty(before)):
            self._verify_prune(rule, before, after)

        if self._mode == "semantic":
            self._verify_semantics(rule, before, after)
        return after

    # ------------------------------------------------------------------
    # Semantic translation validation
    # ------------------------------------------------------------------

    def _abstract_table(self, name: str, arity: int) -> CTable:
        """A small symbolic c-table standing in for relation *name*.

        Every cell is a fresh domain variable and every row carries a
        fresh boolean presence flag, so executing a plan over these
        tables computes the *most general* per-tuple conditions the plan
        can produce — any concrete table is a substitution instance.
        Cached per verifier: both occurrences of a self-joined relation
        (and the before/after sides of a rewrite) must see the same
        symbols.
        """
        key = (name, arity)
        cached = self._abstract.get(key)
        if cached is None:
            rows = [
                make_row(
                    tuple(
                        Var(f"{name}.r{index}c{column}")
                        for column in range(arity)
                    ),
                    boolvar(f"{name}.row{index}"),
                )
                for index in range(_ABSTRACT_ROWS)
            ]
            cached = CTable(rows, arity=arity)
            self._abstract[key] = cached
        return cached

    def _verify_semantics(
        self, rule: str, before: PlanNode, after: PlanNode
    ) -> None:
        """Certify one rewrite by symbolic execution on abstract tables.

        Both sub-plans are interpreted over the shared abstract tables
        and the result tables are compared tuple-by-tuple with the
        cross-validated SAT+BDD equivalence engines — translation
        validation of the individual rewrite, catching semantic bugs
        (e.g. a predicate pushed to the wrong join side) that preserve
        every syntactic conservation law.  No world enumeration is
        involved, so the certificate cost scales with plan size, not
        ``2^variables``.
        """
        # Lazy import: worlds.compare sits above ctalgebra in the
        # layering (it imports translate, which builds verifiers).
        from repro.worlds.compare import ctables_equivalent_symbolic

        tables = {}
        for leaf in _leaf_keys(before):
            if isinstance(leaf, Scan):
                tables[leaf.name] = self._abstract_table(
                    leaf.name, leaf.rel_arity
                )
        before_result = execute_plan(before, tables)
        after_result = execute_plan(after, tables)
        if not ctables_equivalent_symbolic(
            before_result, after_result, engine="both", strict=False
        ):
            raise PlanVerificationError(
                "semantics",
                "rewrite is not Mod-preserving: applied to symbolic "
                "abstract tables, the before/after plans produce tuples "
                "with inequivalent conditions",
                rule=rule,
                node=after,
            )

    def _verify_prune(
        self, rule: str, before: PlanNode, after: PlanNode
    ) -> None:
        """An introduced ``EmptyNode`` needs an independent justification."""
        if _has_empty(before):
            # Collapsing an operator over an already-empty region: the
            # empty operand is the justification.
            return
        if isinstance(before, _PREDICATED):
            predicate = before.predicate
            if isinstance(predicate, Bottom):
                return
            if not is_satisfiable_skeleton(predicate):
                return
            raise PlanVerificationError(
                "unsat-prune",
                f"rewrite pruned a region whose predicate {predicate!r} "
                "is satisfiable",
                rule=rule,
                node=after,
            )
        raise PlanVerificationError(
            "unsat-prune",
            "rewrite introduced an empty node below an operator with no "
            "unsatisfiable predicate and no empty operand",
            rule=rule,
            node=after,
        )

    # ------------------------------------------------------------------
    # Physical plans
    # ------------------------------------------------------------------

    def verify_physical(
        self,
        op: "PhysicalOp",
        *,
        morsel_size: Optional[int] = None,
        rule: Optional[str] = None,
    ) -> None:
        """Check lowering invariants of a physical operator tree.

        *morsel_size* is the :class:`~repro.physical.parallel.ParallelSpec`
        size the tree was lowered for (``None`` for serial lowering).
        """
        # Lazy import: ctalgebra sits below physical in the layering; the
        # verifier is handed physical trees by the lowering hook only.
        from repro.physical.lower import _probe_child
        from repro.physical.operators import HashJoinOp, FilterOp, ProjectOp
        from repro.physical.parallel import PARALLELIZABLE_OPS

        for node in op.walk():
            decision = node.par_decision
            if decision not in (None, "parallel", "serial"):
                raise PlanVerificationError(
                    "lowering",
                    f"unknown parallel decision {decision!r}",
                    rule=rule,
                    node=node,
                )
            if decision is not None and not isinstance(
                node, PARALLELIZABLE_OPS
            ):
                raise PlanVerificationError(
                    "lowering",
                    f"{node.label()} carries a parallel decision but is not "
                    "a morselizable operator",
                    rule=rule,
                    node=node,
                )
            rows = node.est_rows
            if rows is not None and (not math.isfinite(rows) or rows < 0):
                raise PlanVerificationError(
                    "estimates",
                    f"physical estimate {rows!r} is not a finite "
                    "non-negative number",
                    rule=rule,
                    node=node,
                )
            probe = _probe_child(node)
            probe_rows = probe.est_rows if probe is not None else None
            if (
                morsel_size is not None
                and decision is not None
                and probe_rows is not None
            ):
                expected = "parallel" if probe_rows > morsel_size else "serial"
                if decision != expected:
                    raise PlanVerificationError(
                        "lowering",
                        f"{node.label()} is stamped {decision!r} but its "
                        f"probe input estimates {probe_rows:.1f} rows "
                        f"against morsel size {morsel_size} "
                        f"(expected {expected!r})",
                        rule=rule,
                        node=node,
                    )
                if node.est_morsels is not None and node.est_morsels != (
                    morsel_count(probe_rows, morsel_size)
                ):
                    raise PlanVerificationError(
                        "lowering",
                        f"{node.label()} is stamped with {node.est_morsels} "
                        f"morsels but the estimates give "
                        f"{morsel_count(probe_rows, morsel_size)}",
                        rule=rule,
                        node=node,
                    )
            if isinstance(node, HashJoinOp):
                self._verify_hash_join(node, rule)
            if isinstance(node, FilterOp):
                self._verify_predicate(
                    node.predicate, node.arity, rule, node
                )
            if isinstance(node, ProjectOp):
                child_arity = node.child.arity
                bad = [
                    column
                    for column in node.columns
                    if column < 0 or column >= child_arity
                ]
                if bad:
                    raise PlanVerificationError(
                        "arity",
                        f"physical projection references columns {bad} "
                        f"outside the child arity {child_arity}",
                        rule=rule,
                        node=node,
                    )

    def _verify_hash_join(self, node: "PhysicalOp", rule: Optional[str]) -> None:
        if node.build_side not in ("left", "right"):
            raise PlanVerificationError(
                "lowering",
                f"hash join build side must be 'left' or 'right', got "
                f"{node.build_side!r}",
                rule=rule,
                node=node,
            )
        left_arity = node.left.arity
        right_arity = node.right.arity
        bad_left = [key for key in node.left_keys if key >= left_arity]
        bad_right = [key for key in node.right_keys if key >= right_arity]
        if bad_left or bad_right:
            raise PlanVerificationError(
                "arity",
                f"hash join keys out of range (left {bad_left} of arity "
                f"{left_arity}, right {bad_right} of arity {right_arity})",
                rule=rule,
                node=node,
            )
        left_rows = node.left.est_rows
        right_rows = node.right.est_rows
        if left_rows is not None and right_rows is not None:
            expected = "left" if left_rows < right_rows else "right"
            if node.build_side != expected:
                raise PlanVerificationError(
                    "estimates",
                    f"hash join builds on the {node.build_side} side but "
                    f"the estimates ({left_rows:.1f} vs {right_rows:.1f} "
                    f"rows) pick {expected!r} — stale or inconsistent "
                    "estimates",
                    rule=rule,
                    node=node,
                )
        self._verify_predicate(node.predicate, node.arity, rule, node)
        self._verify_predicate(node.residual, node.arity, rule, node)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def verify_ctable(self, name: str, table: CTable) -> None:
        """Check condition canonicity and domain coverage of one c-table.

        Run at registration time (under ``verify_plans``) so that every
        condition entering the engine satisfies the identity invariant
        the parallel executor assumes.
        """
        domains = table.domains
        covered = None if domains is None else set(domains)
        self._verify_condition(
            name, table.global_condition, covered, "global condition"
        )
        for position, row in enumerate(table.rows):
            self._verify_condition(
                name, row.condition, covered, f"row {position}"
            )

    def _verify_condition(
        self,
        name: str,
        condition: Formula,
        covered: Optional[Set[str]],
        where: str,
    ) -> None:
        for part in walk(condition):
            if not is_interned(part):
                raise PlanVerificationError(
                    "interning",
                    f"table {name!r} {where} holds non-canonical "
                    f"sub-formula {part!r}; build conditions through the "
                    "smart constructors (conj/disj/neg/eq/boolvar)",
                    node=condition,
                )
        if covered is not None:
            missing = sorted(condition.variables() - covered)
            if missing:
                raise PlanVerificationError(
                    "scope",
                    f"table {name!r} {where} mentions variables {missing} "
                    "absent from the table's domain metadata",
                    node=condition,
                )

