"""The c-table algebra: Theorem 4's lifted relational operators.

[20] defines, for each relational-algebra operation ``u``, an operation
``ū`` on c-tables such that for every valuation ν,

    ν(q̄(T)) = q(ν(T))                        (Lemma 1)

and therefore ``Mod(q̄(T)) = q(Mod(T))`` — c-tables are closed under the
relational algebra.  :mod:`repro.ctalgebra.lifted` implements the
operators; :mod:`repro.ctalgebra.translate` implements ``q ↦ q̄``;
:mod:`repro.ctalgebra.plan` provides the logical-plan IR with
cardinality/condition estimates and :func:`explain`;
:mod:`repro.ctalgebra.optimize` rewrites plans (soundly, by Theorem 4)
before execution.
"""

from repro.ctalgebra.lifted import (
    difference_bar,
    intersection_bar,
    join_bar,
    product_bar,
    project_bar,
    select_bar,
    union_bar,
)
from repro.ctalgebra.plan import (
    PlanNode,
    StatsAccumulator,
    TableStats,
    collect_stats,
    estimate,
    execute_plan,
    explain,
    plan_cost,
    plan_from_query,
)
from repro.ctalgebra.optimize import fuse_joins, optimize_plan
from repro.ctalgebra.translate import (
    apply_query_to_ctable,
    plan_for_query,
    translate_query,
)

__all__ = [
    "PlanNode",
    "StatsAccumulator",
    "TableStats",
    "apply_query_to_ctable",
    "collect_stats",
    "difference_bar",
    "estimate",
    "execute_plan",
    "explain",
    "fuse_joins",
    "intersection_bar",
    "join_bar",
    "optimize_plan",
    "plan_cost",
    "plan_for_query",
    "plan_from_query",
    "product_bar",
    "project_bar",
    "select_bar",
    "translate_query",
    "union_bar",
]
