"""The c-table algebra: Theorem 4's lifted relational operators.

[20] defines, for each relational-algebra operation ``u``, an operation
``ū`` on c-tables such that for every valuation ν,

    ν(q̄(T)) = q(ν(T))                        (Lemma 1)

and therefore ``Mod(q̄(T)) = q(Mod(T))`` — c-tables are closed under the
relational algebra.  :mod:`repro.ctalgebra.lifted` implements the
operators; :mod:`repro.ctalgebra.translate` implements ``q ↦ q̄``.
"""

from repro.ctalgebra.lifted import (
    difference_bar,
    intersection_bar,
    join_bar,
    product_bar,
    project_bar,
    select_bar,
    union_bar,
)
from repro.ctalgebra.translate import apply_query_to_ctable, translate_query

__all__ = [
    "apply_query_to_ctable",
    "difference_bar",
    "intersection_bar",
    "join_bar",
    "product_bar",
    "project_bar",
    "select_bar",
    "translate_query",
    "union_bar",
]
