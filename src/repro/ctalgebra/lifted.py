"""Lifted relational operators on c-tables (proof of Theorem 4).

Each operator mirrors its classical counterpart but manipulates rows
symbolically and composes conditions:

- projection merges rows with syntactically equal projected tuples,
  disjoining their conditions (the paper's ``π̄``),
- selection conjoins the instantiated predicate ``c(t)`` — a formula
  over constants and variables, not a truth value (``σ̄``),
- product and union are structural (``×̄``, ``∪̄``),
- difference and intersection (handled "similarly", per the paper)
  compare tuples symbolically: the term-wise equality of two rows is
  itself a condition, so ``T₁ −̄ T₂`` keeps row ``t₁`` under
  ``ϕ_{t₁} ∧ ⋀_{t₂∈T₂} ¬(ϕ_{t₂} ∧ (t₁ = t₂))``.

All operators preserve finite variable domains and global conditions
(both tables' globals are conjoined), and every operator satisfies
Lemma 1, which the property tests check against random valuations.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ArityError, TableError
from repro.logic.atoms import Const, Term, eq
from repro.logic.syntax import BOTTOM, TOP, Formula, conj, disj, neg
from repro.algebra.predicates import (
    check_predicate,
    instantiate_predicate,
    split_equijoin,
)
from repro.tables.ctable import CRow, CTable


def _merge_domains(left: CTable, right: CTable) -> Optional[Dict[str, tuple]]:
    """Merge the finite domains of two operand tables.

    Shared variables must agree exactly.  A table with variables but no
    domains is an infinite-domain table: combining it with a finite-domain
    one has no well-defined domain story, so we reject it (the ``q̄``
    translation never produces the situation).
    """
    left_infinite = left.domains is None and left.variables()
    right_infinite = right.domains is None and right.variables()
    if (left_infinite and right.domains is not None) or (
        right_infinite and left.domains is not None
    ):
        raise TableError(
            "cannot combine an infinite-domain c-table with a finite-domain one"
        )
    if left.domains is None and right.domains is None:
        return None
    merged: Dict[str, tuple] = dict(left.domains or {})
    for name, values in (right.domains or {}).items():
        existing = merged.get(name)
        if existing is not None and tuple(existing) != tuple(values):
            raise TableError(
                f"variable {name!r} has conflicting domains in the operands"
            )
        merged[name] = tuple(values)
    return merged


def _combine(
    left: CTable, right: CTable, rows: Iterable[CRow], arity: int
) -> CTable:
    return CTable(
        rows,
        arity=arity,
        domains=_merge_domains(left, right),
        global_condition=conj(left.global_condition, right.global_condition),
    )


def project_bar(table: CTable, columns: Sequence[int]) -> CTable:
    """``π̄_ℓ``: project rows, merging equal term-tuples by disjunction."""
    columns = tuple(columns)
    bad = [c for c in columns if c < 0 or c >= table.arity]
    if bad:
        raise ArityError(
            f"projection columns {bad} out of range for arity {table.arity}"
        )
    grouped: Dict[Tuple[Term, ...], list] = {}
    order: list = []
    for row in table.rows:
        projected = tuple(row.values[index] for index in columns)
        if projected not in grouped:
            grouped[projected] = []
            order.append(projected)
        grouped[projected].append(row.condition)
    rows = [
        CRow(projected, disj(*grouped[projected])) for projected in order
    ]
    return CTable(
        rows,
        arity=len(columns),
        domains=table.domains,
        global_condition=table.global_condition,
    )


def select_bar(table: CTable, predicate: Formula) -> CTable:
    """``σ̄_c``: conjoin the symbolically instantiated predicate.

    When the instantiated predicate folds to ``true`` the row is kept
    *as-is* — same :class:`CRow`, same interned condition object — so
    selective-free scans allocate no fresh conjunctions at all; a
    ``false`` instantiation drops the row immediately.
    """
    check_predicate(predicate, table.arity)
    rows = []
    for row in table.rows:
        instantiated = instantiate_predicate(predicate, row.values)
        if instantiated is TOP:
            rows.append(row)
            continue
        condition = conj(row.condition, instantiated)
        if condition is not BOTTOM:
            rows.append(CRow(row.values, condition))
    return CTable(
        rows,
        arity=table.arity,
        domains=table.domains,
        global_condition=table.global_condition,
    )


def product_bar(left: CTable, right: CTable) -> CTable:
    """``×̄``: concatenate tuples, conjoin conditions.

    Shared variables are *not* renamed: a self-join of a c-table with
    itself must use the same valuation on both sides (Lemma 1 quantifies
    over a single ν).
    """
    rows = [
        CRow(l.values + r.values, conj(l.condition, r.condition))
        for l in left.rows
        for r in right.rows
    ]
    return _combine(left, right, rows, left.arity + right.arity)


def _join_key(row: CRow, columns: Iterable[int]) -> Optional[tuple]:
    """The row's constant values at *columns*, or None if any is a Var."""
    key = []
    for index in columns:
        term = row.values[index]
        if not isinstance(term, Const):
            return None
        key.append(term.value)
    return tuple(key)


def join_bar(left: CTable, right: CTable, predicate: Formula) -> CTable:
    """``σ̄_c(T₁ ×̄ T₂)`` fused, with an equijoin fast path.

    Produces exactly the table ``select_bar(product_bar(left, right),
    predicate)`` would, but when the predicate's top-level conjuncts
    contain cross-operand column equalities, rows whose join columns are
    *constants* are hash-partitioned on those columns: a pair of rows
    whose constants disagree can only yield a ``false`` condition (which
    the c-table drops anyway), so the blind nested loop skips it without
    ever building the row.  Rows with variables in a join column stay
    symbolic and are paired with every opposite row, preserving Lemma 1.
    """
    total_arity = left.arity + right.arity
    check_predicate(predicate, total_arity)
    pairs, _residual = split_equijoin(predicate, left.arity)
    if not pairs:
        return select_bar(product_bar(left, right), predicate)
    left_columns = tuple(i for i, _ in pairs)
    right_columns = tuple(j for _, j in pairs)
    buckets: Dict[tuple, list] = {}
    symbolic_right = []
    for row in right.rows:
        key = _join_key(row, right_columns)
        if key is None:
            symbolic_right.append(row)
        else:
            buckets.setdefault(key, []).append(row)
    rows = []
    for l in left.rows:
        key = _join_key(l, left_columns)
        if key is None:
            candidates = right.rows
        else:
            matched = buckets.get(key)
            if matched is None:
                candidates = symbolic_right
            elif symbolic_right:
                candidates = matched + symbolic_right
            else:
                candidates = matched
        for r in candidates:
            values = l.values + r.values
            condition = conj(
                l.condition,
                r.condition,
                instantiate_predicate(predicate, values),
            )
            if condition is not BOTTOM:
                rows.append(CRow(values, condition))
    return _combine(left, right, rows, total_arity)


def union_bar(left: CTable, right: CTable) -> CTable:
    """``∪̄``: the union of the two row sets."""
    if left.arity != right.arity:
        raise ArityError(f"arity mismatch: {left.arity} vs {right.arity}")
    return _combine(left, right, left.rows + right.rows, left.arity)


def _rows_equal_condition(first: CRow, second: CRow) -> Formula:
    """The condition under which two symbolic rows denote the same tuple."""
    return conj(
        *(eq(a, b) for a, b in zip(first.values, second.values))
    )


def _constant_row_key(row: CRow) -> Optional[tuple]:
    """The row's tuple of constant values, or None if any entry is a Var."""
    key = []
    for term in row.values:
        if not isinstance(term, Const):
            return None
        key.append(term.value)
    return tuple(key)


def _matching_right_rows(
    right: CTable,
) -> Callable[[CRow], Sequence[CRow]]:
    """Index the right operand for ``−̄``/``∩̄`` tuple-equality pairing.

    Two all-constant rows with syntactically unequal tuples have a
    ``false`` equality condition, which ``conj``/``disj`` fold away — so
    those pairs contribute nothing and never need their ``eq``
    conjunction built.  All-constant right rows are hash-bucketed by
    tuple (mirroring ``join_bar``'s partitioning); rows with a variable
    entry stay symbolic and pair with every left row.  Returns a
    function mapping a left row to the relevant right rows *in original
    right-operand order*, so the composed conditions are structurally
    identical to the blind nested loop's.
    """
    buckets: Dict[tuple, list] = {}
    symbolic_indices = []
    for index, row in enumerate(right.rows):
        key = _constant_row_key(row)
        if key is None:
            symbolic_indices.append(index)
        else:
            buckets.setdefault(key, []).append(index)

    def candidates(row: CRow):
        key = _constant_row_key(row)
        if key is None:
            return right.rows
        matched = buckets.get(key)
        if matched is None:
            indices = symbolic_indices
        elif symbolic_indices:
            indices = sorted(matched + symbolic_indices)
        else:
            indices = matched
        return [right.rows[index] for index in indices]

    return candidates


def difference_bar(left: CTable, right: CTable) -> CTable:
    """``−̄``: keep ``t₁`` unless some ``t₂`` is present and equal to it."""
    if left.arity != right.arity:
        raise ArityError(f"arity mismatch: {left.arity} vs {right.arity}")
    candidates = _matching_right_rows(right)
    rows = []
    for l in left.rows:
        absent_in_right = conj(
            *(
                neg(conj(r.condition, _rows_equal_condition(l, r)))
                for r in candidates(l)
            )
        )
        rows.append(CRow(l.values, conj(l.condition, absent_in_right)))
    return _combine(left, right, rows, left.arity)


def intersection_bar(left: CTable, right: CTable) -> CTable:
    """``∩̄``: keep ``t₁`` when some ``t₂`` is present and equal to it."""
    if left.arity != right.arity:
        raise ArityError(f"arity mismatch: {left.arity} vs {right.arity}")
    candidates = _matching_right_rows(right)
    rows = []
    for l in left.rows:
        present_in_right = disj(
            *(
                conj(r.condition, _rows_equal_condition(l, r))
                for r in candidates(l)
            )
        )
        rows.append(CRow(l.values, conj(l.condition, present_in_right)))
    return _combine(left, right, rows, left.arity)
