"""The translation ``q ↦ q̄`` from RA queries to c-table programs.

Replacing each operator ``u`` of a relational-algebra expression by its
lifted counterpart ``ū`` gives the c-table algebra expression ``q̄`` with
``Mod(q̄(T)) = q(Mod(T))`` (Theorem 4).  :func:`apply_query_to_ctable`
performs the replacement and evaluation in one recursive pass.

Constant relations become variable-free c-tables; the input relation
name(s) resolve to caller-supplied c-tables.  The optional
``simplify_conditions`` flag runs the condition simplifier at every
operator — benchmark E08 ablates its effect on condition growth.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import QueryError
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.tables.ctable import CRow, CTable, make_row
from repro.ctalgebra.lifted import (
    difference_bar,
    intersection_bar,
    join_bar,
    product_bar,
    project_bar,
    select_bar,
    union_bar,
)


def constant_ctable(node: ConstRel) -> CTable:
    """Embed a constant relation as a variable-free c-table."""
    rows = [make_row(row) for row in node.instance]
    return CTable(rows, arity=node.instance.arity)


def translate_query(
    query: Query,
    tables: Mapping[str, CTable],
    simplify_conditions: bool = False,
) -> CTable:
    """Evaluate ``q̄`` on c-table inputs bound by name.

    The result is a c-table representing ``q(Mod(T))``; its domains and
    global condition are inherited from the inputs.
    """
    def recurse(node: Query) -> CTable:
        if isinstance(node, RelVar):
            table = tables.get(node.name)
            if table is None:
                raise QueryError(f"no c-table bound for name {node.name!r}")
            if table.arity != node.rel_arity:
                raise QueryError(
                    f"c-table {node.name!r} has arity {table.arity}, "
                    f"query expects {node.rel_arity}"
                )
            return table
        if isinstance(node, ConstRel):
            return constant_ctable(node)
        if isinstance(node, Project):
            result = project_bar(recurse(node.child), node.columns)
        elif isinstance(node, Select):
            # σ̄ directly above ×̄ fuses into a join with an equijoin
            # fast path; the result is structurally identical to the
            # composed operators.  With per-operator simplification the
            # intermediate product must be simplified too, so the fused
            # form is skipped to keep the ablation honest.
            if isinstance(node.child, Product) and not simplify_conditions:
                result = join_bar(
                    recurse(node.child.left),
                    recurse(node.child.right),
                    node.predicate,
                )
            else:
                result = select_bar(recurse(node.child), node.predicate)
        elif isinstance(node, Product):
            result = product_bar(recurse(node.left), recurse(node.right))
        elif isinstance(node, Union):
            result = union_bar(recurse(node.left), recurse(node.right))
        elif isinstance(node, Difference):
            result = difference_bar(recurse(node.left), recurse(node.right))
        elif isinstance(node, Intersection):
            result = intersection_bar(recurse(node.left), recurse(node.right))
        else:
            raise QueryError(f"unknown query node {node!r}")
        if simplify_conditions:
            result = result.simplified()
        return result

    return recurse(query)


def apply_query_to_ctable(
    query: Query, table: CTable, simplify_conditions: bool = False
) -> CTable:
    """Evaluate ``q̄(T)`` for a single-input query.

    Every relation name in *query* (there is normally one) binds to the
    same *table*, mirroring the paper's single-relation schemas.
    """
    names = query.relation_names()
    for name, arity in names.items():
        if arity != table.arity:
            raise QueryError(
                f"query input {name!r} has arity {arity}, c-table has "
                f"arity {table.arity}"
            )
    bindings = {name: table for name in names}
    return translate_query(query, bindings, simplify_conditions)
