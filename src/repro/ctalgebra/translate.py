"""The translation ``q ↦ q̄`` from RA queries to c-table programs.

Replacing each operator ``u`` of a relational-algebra expression by its
lifted counterpart ``ū`` gives the c-table algebra expression ``q̄`` with
``Mod(q̄(T)) = q(Mod(T))`` (Theorem 4).  The translation is explicit
about *plans* now: the query AST is first lowered to a
:class:`~repro.ctalgebra.plan.PlanNode` tree, optionally rewritten by
the rule-based optimizer, and then executed through the lifted
operators.

Constant relations become variable-free c-tables; the input relation
name(s) resolve to caller-supplied c-tables.  Two knobs:

- ``simplify_conditions`` runs the condition simplifier at every
  operator — benchmark E08 ablates its effect on condition growth.  The
  fused equijoin fast path is used either way: the fused ``⋈̄`` result
  is structurally identical to ``σ̄`` over ``×̄``, so simplifying *it*
  keeps the ablation like-for-like (previously the fast path was
  silently skipped whenever simplification was on, so E08 compared
  different plans).
- ``optimize`` runs the Theorem-4-sound rewrite rules of
  :mod:`repro.ctalgebra.optimize` (selection/projection pushdown, join
  reordering, dead-branch pruning) before execution — benchmarks
  E21–E24 ablate the planner.

Since the engine redesign, :func:`translate_query` and
:func:`apply_query_to_ctable` are thin shims over the module-level
default :class:`~repro.engine.Engine` — ad-hoc calls re-plan every time;
use :class:`~repro.engine.Session` to cache plans across repeated
executions.
"""

from __future__ import annotations

from typing import Mapping

from typing import Callable, Dict, Optional

from repro.algebra.ast import Query
from repro.tables.ctable import CTable
from repro.ctalgebra.plan import (
    PlanNode,
    TableStats,
    collect_stats,
    plan_from_query,
)
from repro.ctalgebra.optimize import fuse_joins, optimize_plan
from repro.ctalgebra.verify import PlanVerifier
from repro.obs.names import SPAN_OPTIMIZE, SPAN_VERIFY
from repro.obs.trace import trace_span


def _verified(
    verifier: Optional[PlanVerifier],
    plan: PlanNode,
    rule: str,
    verify_mode: str,
) -> None:
    """One pipeline-level verifier check, traced as a verify span."""
    if verifier is None:
        return
    with trace_span(SPAN_VERIFY, mode=verify_mode, stage=rule):
        verifier.verify_plan(plan, rule=rule)


def build_plan(
    query: Query,
    stats_thunk: Callable[[], Dict[str, TableStats]],
    optimize: bool,
    verify: bool = False,
    verify_mode: str = "syntactic",
) -> PlanNode:
    """The one plan-construction pipeline, shared with the engine.

    *stats_thunk* supplies table statistics lazily — they are only
    needed (and only computed) when the optimizer runs.  Both
    :func:`plan_for_query` and :class:`repro.engine.Engine` delegate
    here, so the plan the engine executes is by construction the plan
    ``explain``/``plan_for_query`` describe.

    With ``verify=True`` (``ExecutionConfig.verify_plans``) a
    :class:`~repro.ctalgebra.verify.PlanVerifier` checks the verbatim
    plan, then re-checks after every individual rewrite rule, and
    finally certifies the plan that leaves the pipeline.  *verify_mode*
    (``ExecutionConfig.verify_mode``) selects the syntactic conservation
    checks alone or, with ``"semantic"``, additionally certifies every
    rewrite by symbolic translation validation.
    """
    plan = plan_from_query(query)
    if optimize:
        stats = stats_thunk()
        verifier: Optional[PlanVerifier] = (
            PlanVerifier(stats, mode=verify_mode) if verify else None
        )
        _verified(verifier, plan, "plan_from_query", verify_mode)
        with trace_span(SPAN_OPTIMIZE):
            optimized = optimize_plan(plan, stats, verifier=verifier)
        _verified(verifier, optimized, "optimize_plan", verify_mode)
        return optimized
    verifier = PlanVerifier(mode=verify_mode) if verify else None
    _verified(verifier, plan, "plan_from_query", verify_mode)
    fused = fuse_joins(plan, verifier)
    _verified(verifier, fused, "fuse_joins", verify_mode)
    return fused


def plan_for_query(
    query: Query,
    tables: Mapping[str, CTable],
    optimize: bool = False,
    verify: bool = False,
    verify_mode: str = "syntactic",
) -> PlanNode:
    """The plan ``translate_query`` would execute for *query*.

    With ``optimize=False`` this is the verbatim plan with selections
    over products fused into joins (the seed evaluation order); with
    ``optimize=True`` the full rewrite pipeline runs against statistics
    of the bound tables.  ``verify=True`` runs the plan verifier along
    the pipeline (*verify_mode* as in :func:`build_plan`).
    """
    return build_plan(
        query,
        lambda: collect_stats(tables),
        optimize,
        verify=verify,
        verify_mode=verify_mode,
    )


def translate_query(
    query: Query,
    tables: Mapping[str, CTable],
    simplify_conditions: bool = False,
    optimize: bool = False,
) -> CTable:
    """Evaluate ``q̄`` on c-table inputs bound by name.

    The result is a c-table representing ``q(Mod(T))``; its domains and
    global condition are inherited from the inputs.
    """
    from repro.engine import default_engine

    return default_engine().execute(
        query,
        tables,
        simplify_conditions=simplify_conditions,
        optimize=optimize,
    )


def apply_query_to_ctable(
    query: Query,
    table: CTable,
    simplify_conditions: bool = False,
    optimize: bool = False,
) -> CTable:
    """Evaluate ``q̄(T)`` for a single-input query.

    The query's single relation name binds to *table*, mirroring the
    paper's single-relation schemas.  A query mentioning *several*
    distinct relation names raises :class:`~repro.errors.QueryError`:
    binding them all to one table would silently compute a self-join
    (the pre-engine behavior, which only checked arity).  Bind each name
    explicitly via :func:`translate_query` or a
    :class:`~repro.engine.Session`.
    """
    from repro.engine import default_engine

    return default_engine().execute_single(
        query,
        table,
        simplify_conditions=simplify_conditions,
        optimize=optimize,
    )
