"""A logical plan IR for the lifted c-table algebra.

``translate_query`` used to evaluate the query AST verbatim; this module
separates *what* to evaluate from *how*.  A :class:`PlanNode` tree mirrors
the relational-algebra AST but adds two operators the AST has no use for:

- :class:`JoinNode` — the fused ``σ̄_c(T₁ ×̄ T₂)`` with the equijoin hash
  partitioning of :func:`repro.ctalgebra.lifted.join_bar`,
- :class:`EmptyNode` — a provably empty sub-plan (its selection condition
  is unsatisfiable).  The node remembers the *leaf tables* of the region
  it replaced so execution can reproduce the verbatim result's merged
  finite domains and conjoined global condition exactly; by Theorem 4
  the two tables then have the same ``Mod``.

Because every lifted operator satisfies Lemma 1 (``ν(ū(T)) = u(ν(T))``),
any plan that is *classically* equivalent to the query under set
semantics represents the same ``Mod`` — that is what licenses the
rewrites in :mod:`repro.ctalgebra.optimize`.

The module also provides the cost model the optimizer ranks plans with:
:func:`estimate` computes per-node cardinality and condition-size
estimates from lightweight per-table statistics (:class:`TableStats`),
and :func:`explain` renders a plan with its estimates for inspection::

    π̄[0,3]  rows≈12.0 cond≈5.0
    └─ ⋈̄[(@1 = @2)]  rows≈12.0 cond≈5.0
       ├─ scan L  rows≈100
       └─ scan R  rows≈100
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import QueryError, TableError, nearest_name
from repro.core.instance import Instance
from repro.logic.atoms import Const, Eq
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    TOP,
    Top,
    conj,
    walk,
)
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.algebra.predicates import is_column_var, column_index
from repro.tables.ctable import CRow, CTable, make_row
from repro.ctalgebra.lifted import (
    difference_bar,
    intersection_bar,
    join_bar,
    product_bar,
    project_bar,
    select_bar,
    union_bar,
)


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------

class PlanNode:
    """Base class of logical-plan operators.

    Nodes are immutable, hashable values (frozen dataclasses), so plans
    can be compared for fixpoint detection and memoized in estimate
    caches.
    """

    __slots__ = ()

    @property
    def arity(self) -> int:
        raise NotImplementedError

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Yield every node of the plan, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def label(self) -> str:
        """One-line operator label used by :func:`explain`."""
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(PlanNode):
    """Read an input c-table bound by relation name."""

    name: str
    rel_arity: int

    __slots__ = ("name", "rel_arity")

    @property
    def arity(self) -> int:
        return self.rel_arity

    def label(self) -> str:
        return f"scan {self.name}"


@dataclass(frozen=True)
class ConstScan(PlanNode):
    """Embed a constant relation as a variable-free c-table."""

    instance: Instance

    __slots__ = ("instance",)

    @property
    def arity(self) -> int:
        return self.instance.arity

    def label(self) -> str:
        return f"const {list(self.instance.rows)!r}"


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """``π̄_ℓ`` onto (possibly repeated, reordered) columns."""

    child: PlanNode
    columns: Tuple[int, ...]

    __slots__ = ("child", "columns")

    @property
    def arity(self) -> int:
        return len(self.columns)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"π̄[{','.join(str(c) for c in self.columns)}]"


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """``σ̄_c`` by a predicate over the child's columns."""

    child: PlanNode
    predicate: Formula

    __slots__ = ("child", "predicate")

    @property
    def arity(self) -> int:
        return self.child.arity

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"σ̄[{self.predicate!r}]"


@dataclass(frozen=True)
class ProductNode(PlanNode):
    """``×̄``: the cross product."""

    left: PlanNode
    right: PlanNode

    __slots__ = ("left", "right")

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "×̄"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """``σ̄_c(T₁ ×̄ T₂)`` fused; executes via the equijoin fast path."""

    left: PlanNode
    right: PlanNode
    predicate: Formula

    __slots__ = ("left", "right", "predicate")

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"⋈̄[{self.predicate!r}]"


@dataclass(frozen=True)
class UnionNode(PlanNode):
    """``∪̄``."""

    left: PlanNode
    right: PlanNode

    __slots__ = ("left", "right")

    @property
    def arity(self) -> int:
        return self.left.arity

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "∪̄"


@dataclass(frozen=True)
class DifferenceNode(PlanNode):
    """``−̄``."""

    left: PlanNode
    right: PlanNode

    __slots__ = ("left", "right")

    @property
    def arity(self) -> int:
        return self.left.arity

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "−̄"


@dataclass(frozen=True)
class IntersectionNode(PlanNode):
    """``∩̄``."""

    left: PlanNode
    right: PlanNode

    __slots__ = ("left", "right")

    @property
    def arity(self) -> int:
        return self.left.arity

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "∩̄"


@dataclass(frozen=True)
class EmptyNode(PlanNode):
    """A sub-plan proven to produce no rows in any world.

    *sources* are the leaf nodes (:class:`Scan`/:class:`ConstScan`) of
    the pruned region: the verbatim evaluation would have merged their
    finite domains and conjoined their global conditions into the
    result, and those parts of the representation are semantically
    load-bearing (a global condition can rule out valuations of
    variables shared with the *surviving* branches).  Execution rebuilds
    them without evaluating a single operator.
    """

    empty_arity: int
    sources: Tuple[PlanNode, ...]

    __slots__ = ("empty_arity", "sources")

    @property
    def arity(self) -> int:
        return self.empty_arity

    def label(self) -> str:
        names = ",".join(
            source.name if isinstance(source, Scan) else "const"
            for source in self.sources
        )
        return f"∅[{self.empty_arity}]({names})"


def leaf_sources(plan: PlanNode) -> Tuple[PlanNode, ...]:
    """The plan's leaves (scans/constants/pruned sources), deduplicated."""
    seen: List[PlanNode] = []
    for node in plan.walk():
        found = ()
        if isinstance(node, (Scan, ConstScan)):
            found = (node,)
        elif isinstance(node, EmptyNode):
            found = node.sources
        for leaf in found:
            if leaf not in seen:
                seen.append(leaf)
    return tuple(seen)


# ----------------------------------------------------------------------
# Building plans from query ASTs
# ----------------------------------------------------------------------

def plan_from_query(query: Query) -> PlanNode:
    """The verbatim plan: one plan operator per query AST operator."""
    if isinstance(query, RelVar):
        return Scan(query.name, query.rel_arity)
    if isinstance(query, ConstRel):
        return ConstScan(query.instance)
    if isinstance(query, Project):
        return ProjectNode(plan_from_query(query.child), tuple(query.columns))
    if isinstance(query, Select):
        return SelectNode(plan_from_query(query.child), query.predicate)
    if isinstance(query, Product):
        return ProductNode(
            plan_from_query(query.left), plan_from_query(query.right)
        )
    if isinstance(query, Union):
        return UnionNode(
            plan_from_query(query.left), plan_from_query(query.right)
        )
    if isinstance(query, Difference):
        return DifferenceNode(
            plan_from_query(query.left), plan_from_query(query.right)
        )
    if isinstance(query, Intersection):
        return IntersectionNode(
            plan_from_query(query.left), plan_from_query(query.right)
        )
    raise QueryError(f"unknown query node {query!r}")


# ----------------------------------------------------------------------
# Statistics and estimates
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnStats:
    """Per-column summary: how often the entry is a constant, how varied."""

    constant_fraction: float
    distinct_constants: int


@dataclass(frozen=True)
class TableStats:
    """Lightweight statistics of one input c-table."""

    rows: int
    columns: Tuple[ColumnStats, ...]
    condition_size: float

    @classmethod
    def from_ctable(cls, table: CTable) -> "TableStats":
        total = len(table.rows)
        if total == 0:
            return cls(0, tuple(ColumnStats(1.0, 0) for _ in range(table.arity)), 0.0)
        constants: List[set] = [set() for _ in range(table.arity)]
        constant_counts = [0] * table.arity
        condition_nodes = 0
        for row in table.rows:
            condition_nodes += _formula_size(row.condition)
            for index, term in enumerate(row.values):
                if isinstance(term, Const):
                    constant_counts[index] += 1
                    constants[index].add(term.value)
        columns = tuple(
            ColumnStats(constant_counts[i] / total, len(constants[i]))
            for i in range(table.arity)
        )
        return cls(total, columns, condition_nodes / total)

    @classmethod
    def from_instance(cls, instance: Instance) -> "TableStats":
        rows = list(instance.rows)
        distinct = [
            len({row[i] for row in rows}) for i in range(instance.arity)
        ]
        columns = tuple(
            ColumnStats(1.0, distinct[i]) for i in range(instance.arity)
        )
        return cls(len(rows), columns, 1.0)


def collect_stats(tables: Mapping[str, CTable]) -> Dict[str, TableStats]:
    """Statistics of every bound input table, keyed by name."""
    return {
        name: TableStats.from_ctable(table) for name, table in tables.items()
    }


def _formula_size(formula: Formula) -> int:
    return sum(1 for _ in walk(formula))


class StatsAccumulator:
    """Mutable per-table counters behind :class:`TableStats`.

    ``TableStats.from_ctable`` walks every row (and every row's
    condition formula) from scratch; a session re-registering a large
    table that changed by a handful of rows pays that full walk again.
    The accumulator keeps the raw integer counters — row count,
    per-column constant refcounts, total condition nodes — so a
    re-registration can be absorbed as a *row delta*: only the added and
    removed rows are walked.  :meth:`stats` performs the same final
    divisions as ``from_ctable``, so the resulting :class:`TableStats`
    is bit-identical (the statistics fingerprint in plan/result cache
    keys depends on it).
    """

    __slots__ = ("arity", "rows", "constant_counts", "constant_refs", "condition_nodes")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.rows = 0
        self.constant_counts = [0] * arity
        #: Per column: constant value -> number of rows holding it.
        self.constant_refs: List[Dict[object, int]] = [
            {} for _ in range(arity)
        ]
        self.condition_nodes = 0

    @classmethod
    def from_ctable(cls, table: CTable) -> "StatsAccumulator":
        accumulator = cls(table.arity)
        accumulator.add_rows(table.rows)
        return accumulator

    def add_rows(self, rows: Iterable[CRow]) -> None:
        for row in rows:
            self.rows += 1
            self.condition_nodes += _formula_size(row.condition)
            for index, term in enumerate(row.values):
                if isinstance(term, Const):
                    self.constant_counts[index] += 1
                    refs = self.constant_refs[index]
                    refs[term.value] = refs.get(term.value, 0) + 1

    def remove_rows(self, rows: Iterable[CRow]) -> None:
        for row in rows:
            self.rows -= 1
            self.condition_nodes -= _formula_size(row.condition)
            for index, term in enumerate(row.values):
                if isinstance(term, Const):
                    self.constant_counts[index] -= 1
                    refs = self.constant_refs[index]
                    remaining = refs[term.value] - 1
                    if remaining:
                        refs[term.value] = remaining
                    else:
                        del refs[term.value]

    def apply_delta(
        self, old_rows: Iterable[CRow], new_rows: Iterable[CRow]
    ) -> None:
        """Shift the counters from the *old_rows* multiset to *new_rows*."""
        from collections import Counter

        before = Counter(old_rows)
        after = Counter(new_rows)
        self.add_rows((after - before).elements())
        self.remove_rows((before - after).elements())

    def stats(self) -> TableStats:
        """The equivalent ``TableStats.from_ctable`` result."""
        total = self.rows
        if total == 0:
            return TableStats(
                0, tuple(ColumnStats(1.0, 0) for _ in range(self.arity)), 0.0
            )
        columns = tuple(
            ColumnStats(
                self.constant_counts[i] / total, len(self.constant_refs[i])
            )
            for i in range(self.arity)
        )
        return TableStats(total, columns, self.condition_nodes / total)


@dataclass(frozen=True)
class Estimate:
    """Planner estimate for one node: output rows, condition size, columns."""

    rows: float
    condition_size: float
    columns: Tuple[ColumnStats, ...]

    def cost(self) -> float:
        """The node's intrinsic work estimate (rows touched)."""
        return self.rows


_DEFAULT_DISTINCT = 10


def _predicate_fold_probability(
    predicate: Formula, columns: Sequence[ColumnStats]
) -> float:
    """P[an all-constant row satisfies the predicate] — crude but ordinal."""
    if isinstance(predicate, Top):
        return 1.0
    if isinstance(predicate, Bottom):
        return 0.0
    if isinstance(predicate, Eq):
        distincts = []
        for term in (predicate.left, predicate.right):
            if is_column_var(term):
                index = column_index(term)
                if index < len(columns):
                    distincts.append(max(1, columns[index].distinct_constants))
                else:
                    distincts.append(_DEFAULT_DISTINCT)
        if not distincts:
            return 1.0
        return 1.0 / max(distincts)
    if isinstance(predicate, Not):
        return 1.0 - _predicate_fold_probability(predicate.child, columns)
    if isinstance(predicate, And):
        result = 1.0
        for child in predicate.children:
            result *= _predicate_fold_probability(child, columns)
        return result
    if isinstance(predicate, Or):
        result = 1.0
        for child in predicate.children:
            result *= 1.0 - _predicate_fold_probability(child, columns)
        return 1.0 - result
    return 0.5


def _predicate_constant_cover(
    predicate: Formula, columns: Sequence[ColumnStats]
) -> float:
    """P[every column the predicate touches holds a constant]."""
    cover = 1.0
    seen = set()
    for node in walk(predicate):
        if isinstance(node, Eq):
            for term in (node.left, node.right):
                if is_column_var(term):
                    index = column_index(term)
                    if index not in seen and index < len(columns):
                        seen.add(index)
                        cover *= columns[index].constant_fraction
    return cover


def predicate_selectivity(
    predicate: Formula, columns: Sequence[ColumnStats]
) -> float:
    """Estimated fraction of rows a lifted selection keeps.

    All-constant rows either fold to ``true`` or disappear; rows with a
    variable in a referenced column always survive (their condition just
    grows).  The estimate blends the two regimes.
    """
    cover = _predicate_constant_cover(predicate, columns)
    fold = _predicate_fold_probability(predicate, columns)
    return min(1.0, cover * fold + (1.0 - cover))


def _union_columns(
    left: Estimate, right: Estimate
) -> Tuple[ColumnStats, ...]:
    total = left.rows + right.rows
    if total <= 0:
        return left.columns
    merged = []
    for l, r in zip(left.columns, right.columns):
        fraction = (
            l.constant_fraction * left.rows + r.constant_fraction * right.rows
        ) / total
        merged.append(
            ColumnStats(fraction, max(l.distinct_constants, r.distinct_constants))
        )
    return tuple(merged)


def estimate(
    plan: PlanNode,
    stats: Mapping[str, TableStats],
    _memo: Optional[Dict[PlanNode, Estimate]] = None,
) -> Estimate:
    """Bottom-up cardinality / condition-size estimate of *plan*."""
    if _memo is None:
        _memo = {}
    cached = _memo.get(plan)
    if cached is not None:
        return cached
    result = _estimate(plan, stats, _memo)
    _memo[plan] = result
    return result


def _estimate(
    plan: PlanNode,
    stats: Mapping[str, TableStats],
    memo: Dict[PlanNode, Estimate],
) -> Estimate:
    if isinstance(plan, Scan):
        table = stats.get(plan.name)
        if table is None:
            columns = tuple(
                ColumnStats(0.5, _DEFAULT_DISTINCT)
                for _ in range(plan.rel_arity)
            )
            return Estimate(float(_DEFAULT_DISTINCT), 1.0, columns)
        return Estimate(float(table.rows), table.condition_size, table.columns)
    if isinstance(plan, ConstScan):
        table = TableStats.from_instance(plan.instance)
        return Estimate(float(table.rows), table.condition_size, table.columns)
    if isinstance(plan, EmptyNode):
        columns = tuple(ColumnStats(1.0, 0) for _ in range(plan.arity))
        return Estimate(0.0, 0.0, columns)
    if isinstance(plan, ProjectNode):
        child = estimate(plan.child, stats, memo)
        columns = tuple(
            child.columns[index]
            if index < len(child.columns)
            else ColumnStats(0.5, _DEFAULT_DISTINCT)
            for index in plan.columns
        )
        return Estimate(child.rows, child.condition_size, columns)
    if isinstance(plan, SelectNode):
        child = estimate(plan.child, stats, memo)
        selectivity = predicate_selectivity(plan.predicate, child.columns)
        grown = child.condition_size + _formula_size(plan.predicate)
        return Estimate(child.rows * selectivity, grown, child.columns)
    if isinstance(plan, ProductNode):
        left = estimate(plan.left, stats, memo)
        right = estimate(plan.right, stats, memo)
        return Estimate(
            left.rows * right.rows,
            left.condition_size + right.condition_size,
            left.columns + right.columns,
        )
    if isinstance(plan, JoinNode):
        left = estimate(plan.left, stats, memo)
        right = estimate(plan.right, stats, memo)
        columns = left.columns + right.columns
        selectivity = predicate_selectivity(plan.predicate, columns)
        grown = (
            left.condition_size
            + right.condition_size
            + _formula_size(plan.predicate)
        )
        return Estimate(left.rows * right.rows * selectivity, grown, columns)
    if isinstance(plan, UnionNode):
        left = estimate(plan.left, stats, memo)
        right = estimate(plan.right, stats, memo)
        size = (
            (left.condition_size * left.rows + right.condition_size * right.rows)
            / (left.rows + right.rows)
            if left.rows + right.rows
            else 0.0
        )
        return Estimate(
            left.rows + right.rows, size, _union_columns(left, right)
        )
    if isinstance(plan, DifferenceNode):
        left = estimate(plan.left, stats, memo)
        right = estimate(plan.right, stats, memo)
        # Each kept row conjoins one negated membership per opposing row.
        per_row = right.condition_size + 2.0 * plan.arity
        grown = left.condition_size + right.rows * per_row
        return Estimate(left.rows, grown, left.columns)
    if isinstance(plan, IntersectionNode):
        left = estimate(plan.left, stats, memo)
        right = estimate(plan.right, stats, memo)
        per_row = right.condition_size + 2.0 * plan.arity
        grown = left.condition_size + right.rows * per_row
        return Estimate(min(left.rows, right.rows), grown, left.columns)
    raise QueryError(f"unknown plan node {plan!r}")


def plan_cost(
    plan: PlanNode,
    stats: Mapping[str, TableStats],
    _memo: Optional[Dict[PlanNode, Estimate]] = None,
) -> float:
    """Total estimated work of *plan*: rows produced across all nodes.

    The dominant cost of every lifted operator is the number of row
    (pairs) it materializes, so summing per-node output cardinalities
    ranks plans the way wall-clock does.
    """
    if _memo is None:
        _memo = {}
    return sum(estimate(node, stats, _memo).cost() for node in plan.walk())


def morsel_count(rows: float, morsel_size: int) -> int:
    """Number of fixed-size morsels covering *rows* estimated rows.

    The physical layer's parallelism decision (see
    :func:`repro.physical.lower.lower`) morselizes an operator only when
    its probe input spans more than one morsel; ``explain(physical=True)``
    renders this count per operator.
    """
    if morsel_size < 1:
        raise ValueError(f"morsel_size must be >= 1, got {morsel_size}")
    if rows <= 0:
        return 0
    return int(-(-rows // morsel_size))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def explain(
    plan: PlanNode, stats: Optional[Mapping[str, TableStats]] = None
) -> str:
    """Render *plan* as an indented tree, with estimates when *stats* given."""
    memo: Dict[PlanNode, Estimate] = {}
    lines: List[str] = []

    def annotate(node: PlanNode) -> str:
        if stats is None:
            return node.label()
        found = estimate(node, stats, memo)
        return (
            f"{node.label()}  rows≈{found.rows:.1f} "
            f"cond≈{found.condition_size:.1f}"
        )

    def render(node: PlanNode, prefix: str, child_prefix: str) -> None:
        lines.append(prefix + annotate(node))
        children = node.children()
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            render(child, child_prefix + connector, child_prefix + extension)

    render(plan, "", "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def resolve_scan(node: Scan, tables: Mapping[str, CTable]) -> CTable:
    """The bound table of a :class:`Scan`, arity-checked.

    Shared with the physical runtime (:mod:`repro.physical`), which
    resolves leaves the same way before columnar-izing them.
    """
    table = tables.get(node.name)
    if table is None:
        hint = nearest_name(node.name, sorted(tables))
        raise QueryError(
            f"no c-table bound for name {node.name!r}; bound names are "
            f"{sorted(tables)}{hint}"
        )
    if table.arity != node.rel_arity:
        raise QueryError(
            f"c-table {node.name!r} has arity {table.arity}, "
            f"query expects {node.rel_arity}"
        )
    return table


def const_table(instance: Instance) -> CTable:
    """A constant relation as a variable-free c-table."""
    rows = [make_row(row) for row in instance]
    return CTable(rows, arity=instance.arity)


def empty_table(node: EmptyNode, tables: Mapping[str, CTable]) -> CTable:
    """The empty c-table carrying the pruned region's domains and globals.

    Mirrors what folding the region's operators through
    ``lifted._combine`` would have produced for the representation-level
    metadata, without evaluating any rows.
    """
    merged_domains: Optional[Dict[str, tuple]] = None
    saw_finite = False
    saw_infinite = False
    global_condition = TOP
    for source in node.sources:
        if isinstance(source, Scan):
            table = resolve_scan(source, tables)
        elif isinstance(source, ConstScan):
            table = const_table(source.instance)
        else:
            raise QueryError(f"unexpected pruned source {source!r}")
        if table.domains is None and table.variables():
            saw_infinite = True
        elif table.domains is not None:
            saw_finite = True
            if merged_domains is None:
                merged_domains = {}
            for name, values in table.domains.items():
                existing = merged_domains.get(name)
                if existing is not None and tuple(existing) != tuple(values):
                    raise TableError(
                        f"variable {name!r} has conflicting domains in the "
                        "operands"
                    )
                merged_domains[name] = tuple(values)
        global_condition = conj(global_condition, table.global_condition)
    if saw_finite and saw_infinite:
        raise TableError(
            "cannot combine an infinite-domain c-table with a finite-domain one"
        )
    return CTable(
        (),
        arity=node.arity,
        domains=merged_domains,
        global_condition=global_condition,
    )


def execute_plan(
    plan: PlanNode,
    tables: Mapping[str, CTable],
    simplify_conditions: bool = False,
) -> CTable:
    """Evaluate *plan* bottom-up through the lifted operators."""

    def recurse(node: PlanNode) -> CTable:
        if isinstance(node, Scan):
            return resolve_scan(node, tables)
        if isinstance(node, ConstScan):
            return const_table(node.instance)
        if isinstance(node, EmptyNode):
            return empty_table(node, tables)
        if isinstance(node, ProjectNode):
            result = project_bar(recurse(node.child), node.columns)
        elif isinstance(node, SelectNode):
            result = select_bar(recurse(node.child), node.predicate)
        elif isinstance(node, JoinNode):
            result = join_bar(
                recurse(node.left), recurse(node.right), node.predicate
            )
        elif isinstance(node, ProductNode):
            result = product_bar(recurse(node.left), recurse(node.right))
        elif isinstance(node, UnionNode):
            result = union_bar(recurse(node.left), recurse(node.right))
        elif isinstance(node, DifferenceNode):
            result = difference_bar(recurse(node.left), recurse(node.right))
        elif isinstance(node, IntersectionNode):
            result = intersection_bar(recurse(node.left), recurse(node.right))
        else:
            raise QueryError(f"unknown plan node {node!r}")
        if simplify_conditions:
            result = result.simplified()
        return result

    return recurse(plan)
