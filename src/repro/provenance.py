"""Why-provenance and its coincidence with c-table conditions (§9).

Section 9 of the paper observes that the condition decorating a tuple
``t`` in ``q̄(T)`` "can be seen as the lineage [8], a.k.a. the
why-provenance [6], of the tuple ``t``" — the germ of the authors'
later provenance-semiring work.  This module makes the observation
executable:

- :func:`why_provenance` computes the classical why-provenance of an
  answer tuple over a *conventional* instance: the set of *witnesses*,
  each witness being a minimal-by-construction set of input tuples that
  together produce the answer tuple,
- :func:`lineage_formula` converts a witness set into a boolean formula
  over per-input-tuple event variables (a disjunction of conjunctions —
  exactly DNF lineage),
- :func:`ctable_lineage_matches_provenance` checks the §9 claim: tag
  every input tuple with a fresh boolean variable (the canonical
  boolean c-table over the instance), run ``q̄``, and the condition of
  the answer tuple is *logically equivalent* to the why-provenance
  formula.

The check is a theorem for positive queries (SPJU); for queries with
difference the condition refines why-provenance with negative literals
(why-provenance is not defined for non-monotone queries), and the
function reports that honestly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import QueryError, UnsupportedOperationError
from repro.core.instance import Instance, Row
from repro.logic.atoms import BoolVar, boolvar
from repro.logic.syntax import BOTTOM, Formula, conj, disj
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.algebra.predicates import eval_predicate

# A witness is a set of input tuples; why-provenance is a set of witnesses.
Witness = FrozenSet[Row]
WhyProvenance = FrozenSet[Witness]


def _annotated_eval(
    query: Query, instance: Instance
) -> Dict[Row, Set[Witness]]:
    """Evaluate *query* carrying witness sets per output tuple.

    Implements the classical why-provenance semantics of Buneman,
    Khanna and Tan for the positive operators; difference and
    intersection are rejected (why-provenance is defined for monotone
    queries).
    """
    if isinstance(query, RelVar):
        return {row: {frozenset({row})} for row in instance.rows}
    if isinstance(query, ConstRel):
        return {row: {frozenset()} for row in query.instance.rows}
    if isinstance(query, Project):
        child = _annotated_eval(query.child, instance)
        out: Dict[Row, Set[Witness]] = {}
        for row, witnesses in child.items():
            projected = tuple(row[index] for index in query.columns)
            out.setdefault(projected, set()).update(witnesses)
        return out
    if isinstance(query, Select):
        child = _annotated_eval(query.child, instance)
        return {
            row: set(witnesses)
            for row, witnesses in child.items()
            if eval_predicate(query.predicate, row)
        }
    if isinstance(query, Product):
        left = _annotated_eval(query.left, instance)
        right = _annotated_eval(query.right, instance)
        out = {}
        for left_row, left_witnesses in left.items():
            for right_row, right_witnesses in right.items():
                combined = left_row + right_row
                bucket = out.setdefault(combined, set())
                for lw in left_witnesses:
                    for rw in right_witnesses:
                        bucket.add(lw | rw)
        return out
    if isinstance(query, Union):
        left = _annotated_eval(query.left, instance)
        right = _annotated_eval(query.right, instance)
        out = {row: set(witnesses) for row, witnesses in left.items()}
        for row, witnesses in right.items():
            out.setdefault(row, set()).update(witnesses)
        return out
    if isinstance(query, (Difference, Intersection)):
        raise UnsupportedOperationError(
            "why-provenance is defined for monotone (SPJU) queries; "
            "use ctable lineage for queries with difference"
        )
    raise QueryError(f"unknown query node {query!r}")


def why_provenance(
    query: Query, instance: Instance, row: Row
) -> WhyProvenance:
    """Return the why-provenance of *row* in ``q(instance)``.

    The result is a set of witnesses; empty iff the tuple is not in the
    answer.  The query must reference a single relation name and be
    monotone (SPJU over constants).
    """
    names = query.relation_names()
    if len(names) > 1:
        raise QueryError("why_provenance expects a single input relation")
    annotated = _annotated_eval(query, instance)
    return frozenset(annotated.get(tuple(row), set()))


def minimal_witnesses(provenance: WhyProvenance) -> WhyProvenance:
    """Drop witnesses that strictly contain another witness.

    Buneman et al.'s *minimal* why-provenance; the lineage formula is
    logically unchanged (absorption), so the c-table comparison accepts
    either form.
    """
    witnesses = sorted(provenance, key=len)
    kept: List[Witness] = []
    for witness in witnesses:
        if not any(existing < witness for existing in kept):
            kept.append(witness)
    return frozenset(kept)


def tuple_event(row: Row) -> BoolVar:
    """The canonical event variable asserting input tuple *row* is present."""
    return boolvar(f"t:{row!r}")


def lineage_formula(provenance: WhyProvenance) -> Formula:
    """DNF lineage over tuple events: ∨ over witnesses, ∧ within."""
    if not provenance:
        return BOTTOM
    return disj(
        *(
            conj(*(tuple_event(row) for row in sorted(witness, key=repr)))
            for witness in sorted(provenance, key=repr)
        )
    )


def instance_as_event_ctable(instance: Instance):
    """Tag every tuple of *instance* with its event variable.

    The resulting boolean c-table's Mod is the powerset of the instance
    — the "every subset possible" database whose conditions *are*
    provenance.
    """
    from repro.tables.ctable import BooleanCTable, make_row

    rows = [
        make_row(row, tuple_event(row)) for row in sorted(instance.rows,
                                                          key=repr)
    ]
    return BooleanCTable(rows, arity=instance.arity)


def ctable_lineage(query: Query, instance: Instance, row: Row) -> Formula:
    """The condition of *row* in ``q̄`` over the event-tagged instance."""
    from repro.ctalgebra.translate import apply_query_to_ctable
    from repro.logic.atoms import Const

    table = instance_as_event_ctable(instance)
    answered = apply_query_to_ctable(query, table)
    row = tuple(row)
    branches = [
        crow.condition
        for crow in answered.rows
        if tuple(term.value for term in crow.values) == row
    ]
    return disj(*branches)


def _boolean_equivalent(left: Formula, right: Formula) -> bool:
    # Symbolic propositional equivalence (SAT on the XOR); lineage
    # formulas carry one event variable per input tuple, so the old
    # valuation enumeration was exponential in the instance size.
    from repro.logic.equivalence import equivalent_conditions

    return equivalent_conditions(left, right)


def ctable_lineage_matches_provenance(
    query: Query, instance: Instance, row: Row
) -> bool:
    """Check §9's claim: q̄'s condition ≡ the why-provenance formula.

    Both formulas range over the tuple-event variables of *instance*;
    equivalence is checked by exhaustive boolean evaluation (the
    instances in play are small).
    """
    provenance = why_provenance(query, instance, row)
    expected = lineage_formula(provenance)
    actual = ctable_lineage(query, instance, row)
    return _boolean_equivalent(expected, actual)
