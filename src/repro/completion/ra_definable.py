"""Theorem 1: every c-table's semantics is RA-definable from ``Z_k``.

Given a c-table ``T`` with variables ``x₁ … x_k``, the construction
builds an SPJU query ``q`` with ``q(Mod(Z_k)) = Mod(T)``:

for every tuple ``t`` with condition ``ϕ_t``, multiply out one factor per
column — the singleton ``{c}`` for a constant entry, ``π_j(Z_k)`` for an
entry holding variable ``x_j`` — plus one factor ``π_{i_j}(Z_k)`` per
variable occurring in ``ϕ_t`` but not in ``t``; select by ``ψ_t`` (the
condition with variables replaced by the columns now holding them), and
project back to the first ``n`` columns.  Union over the tuples.

Example 4 of the paper is this construction applied to Example 2's
c-table; ``examples/paper_tour.py`` prints both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TableError, UnsupportedOperationError
from repro.core.domain import Domain
from repro.logic.atoms import BoolVar, Const, Eq, Term, Var, eq
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    neg,
)
from repro.algebra.ast import ConstRel, Query
from repro.algebra.builders import proj, rel, sel, singleton, union
from repro.algebra.fragments import FRAGMENT_SPJU, in_fragment
from repro.algebra.predicates import col
from repro.tables.ctable import CRow, CTable
from repro.completion.zk import zk_table


def _condition_to_predicate(
    condition: Formula, variable_column: Dict[str, int]
) -> Formula:
    """Rewrite a condition into a selection predicate via column indexes."""
    if isinstance(condition, (Top, Bottom)):
        return condition
    if isinstance(condition, Eq):
        def to_term(term: Term) -> Term:
            if isinstance(term, Var):
                return col(variable_column[term.name])
            return term

        return eq(to_term(condition.left), to_term(condition.right))
    if isinstance(condition, BoolVar):
        raise UnsupportedOperationError(
            "Theorem 1 applies to equality conditions; boolean c-tables "
            "are covered by the finite-completeness construction"
        )
    if isinstance(condition, Not):
        return neg(_condition_to_predicate(condition.child, variable_column))
    if isinstance(condition, And):
        return conj(
            *(
                _condition_to_predicate(child, variable_column)
                for child in condition.children
            )
        )
    if isinstance(condition, Or):
        return disj(
            *(
                _condition_to_predicate(child, variable_column)
                for child in condition.children
            )
        )
    raise TableError(f"unexpected condition node {condition!r}")


def ctable_to_query(
    table: CTable, variable_order: Optional[Sequence[str]] = None
) -> Tuple[Query, int]:
    """Compile *table* into ``(q, k)`` with ``q(Mod(Z_k)) = Mod(T)``.

    ``k`` is the number of variables; *variable_order* fixes which
    variable each ``Z_k`` column carries (sorted names by default).  The
    resulting query lies in the SPJU fragment, as Theorem 1 promises.
    """
    if table.global_condition != Top():
        raise UnsupportedOperationError(
            "the Theorem 1 construction handles tables without a global "
            "condition (conjoin it into each row first)"
        )
    variables = (
        list(variable_order)
        if variable_order is not None
        else sorted(table.variables())
    )
    if set(variables) != set(table.variables()):
        raise TableError("variable_order must enumerate the table's variables")
    position_of = {name: index for index, name in enumerate(variables)}
    k = max(1, len(variables))
    z = rel("Z", k)
    n = table.arity

    branches: List[Query] = []
    for row in table.rows:
        factors: List[Query] = []
        variable_column: Dict[str, int] = {}
        for term in row.values:
            if isinstance(term, Const):
                factors.append(singleton(term.value))
            else:
                variable_column.setdefault(term.name, len(factors))
                factors.append(proj(z, [position_of[term.name]]))
        extra = sorted(
            row.condition.variables() - set(variable_column),
        )
        for name in extra:
            variable_column[name] = len(factors)
            factors.append(proj(z, [position_of[name]]))
        from repro.algebra.builders import prod

        body = prod(*factors) if factors else singleton()
        predicate = _condition_to_predicate(row.condition, variable_column)
        branches.append(proj(sel(body, predicate), list(range(n))))
    if not branches:
        # An empty c-table denotes the single empty instance: the empty
        # query (difference-free) is the constant empty relation, which
        # SPJU can produce as a never-satisfied selection over Z.
        from repro.logic.syntax import BOTTOM

        empty = proj(sel(z, BOTTOM), [0] * n if n else [])
        return empty, k
    query = union(*branches)
    assert in_fragment(query, FRAGMENT_SPJU)
    return query, k


def verify_ra_definability(
    table: CTable, domain: Optional[Domain] = None
) -> bool:
    """Check ``q(Mod(Z_k)) = Mod(T)`` (over a witness slice by default).

    The check follows the paper's proof route: by Theorem 4 it suffices
    that ``q̄(Z_k)`` and ``T`` have the same Mod, which we compare over a
    joint witness domain.
    """
    from repro.worlds.compare import mod_equal_over, witness_domain_for

    variables = sorted(table.variables())
    query, k = ctable_to_query(table, variables)
    z = zk_table(k)
    # Name Z's variables after the table's own, so both sides range over
    # the same valuation space.
    if variables:
        z = z.rename_variables(
            {f"z{index}": name for index, name in enumerate(variables)}
        )
    from repro.ctalgebra.translate import apply_query_to_ctable

    translated = apply_query_to_ctable(query, z)
    if domain is None:
        domain = witness_domain_for(
            table, translated, constants=sorted(table.constants(), key=repr)
        )
    return mod_equal_over(table, translated, domain)
