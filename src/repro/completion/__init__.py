"""Completion constructions: the paper's expressiveness theorems, executable.

- :mod:`repro.completion.zk` — the minimal-information Codd tables
  ``Z_k`` and Proposition 4's query with ``q(N) = Z_k``,
- :mod:`repro.completion.ra_definable` — Theorem 1: compile any c-table
  into an SPJU query over ``Z_k`` (RA-definability), and Theorem 2's
  converse direction,
- :mod:`repro.completion.ra_completion` — Theorem 5: RA-completion of
  Codd tables (SPJU) and v-tables (SP),
- :mod:`repro.completion.finite_completion` — Theorem 3 (boolean
  c-tables are finitely complete), Theorem 6 (finite completions of
  or-set tables, finite v-tables, Rsets, R⊕≡), Theorem 7 / Corollary 1
  (general finite completion),
- :mod:`repro.completion.separations` — bounded-exhaustive refutation
  searchers proving the paper's separation examples and Proposition 1's
  non-closure witnesses.
"""

from repro.completion.zk import prop4_query, zk_idatabase, zk_table
from repro.completion.ra_definable import ctable_to_query, verify_ra_definability
from repro.completion.ra_completion import (
    codd_spju_completion,
    vtable_sp_completion,
)
from repro.completion.finite_completion import (
    boolean_ctable_for,
    general_finite_completion,
    orset_pj_completion,
    qtable_ra_completion,
    rsets_pu_completion,
    rxoreq_spj_completion,
    vtable_splus_p_completion,
)
from repro.completion.separations import (
    codd_representable,
    orset_representable,
    qtable_representable,
    rsets_representable,
    rxoreq_representable,
    vtable_representable,
)

__all__ = [
    "boolean_ctable_for",
    "codd_representable",
    "codd_spju_completion",
    "ctable_to_query",
    "general_finite_completion",
    "orset_pj_completion",
    "orset_representable",
    "prop4_query",
    "qtable_ra_completion",
    "qtable_representable",
    "rsets_pu_completion",
    "rsets_representable",
    "rxoreq_spj_completion",
    "rxoreq_representable",
    "verify_ra_definability",
    "vtable_representable",
    "vtable_sp_completion",
    "vtable_splus_p_completion",
    "zk_idatabase",
    "zk_table",
]
