"""Bounded-exhaustive representability searchers (separations, Prop. 1).

The paper states several *negative* facts: some incomplete database is
representable in one system but in no table of a weaker system
(Section 3's separating examples), and various systems are not closed
under selection or join (Proposition 1).  Such facts are refutations
over an infinite syntactic space; this module makes them checkable by
exhaustive search over a *sound finite candidate space*:

- every value used by a candidate table must already occur, at the same
  column, in some world of the target (a cell alternative outside the
  target's column values would be chosen in some world, producing a
  tuple no target world has);
- a row type whose cells offer ``c`` concrete tuples never needs
  multiplicity above ``c`` (any family of worlds produced with more
  copies is already produced with ``c``, since at most ``c`` distinct
  tuples can come out of the type);
- row counts are bounded by the caller; the defaults cover the paper's
  examples with room to spare (the searchers are used on targets whose
  worlds have at most a handful of tuples).

Soundness scope: the multiplicity and value caps above make the or-set
(= finite Codd) and v-table searches refutation-sound for the paper's
separating examples; for Rsets and R⊕≡ the searchers decide
representability *within the given size bounds* (the general negative
claims are [29]'s).  Two genuinely unbounded refutation lemmas
complement them:

- :func:`qtable_representable` — an *exact* decision procedure (?-table
  models form the full boolean lattice between the certain and possible
  tuples),
- :func:`emptiness_varies` — a non-empty v-table/Codd-table/or-set-table
  always denotes non-empty worlds, so an image containing both ``∅`` and
  a non-empty world is unrepresentable (the infinite-domain Prop. 1
  arguments),
- :func:`connected_under_small_steps` — or-set and Rsets models are
  images of product choice spaces, hence connected under ≤2-tuple
  symmetric-difference steps; disconnected targets are unrepresentable
  by any table of those systems.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.idatabase import IDatabase
from repro.core.instance import Instance
from repro.tables.orset import OrSet, OrSetRow, OrSetTable
from repro.tables.rsets import RSetsBlock, RSetsTable
from repro.tables.rxoreq import Assertion, RXorEquivTable
from repro.tables.vtable import VTable
from repro.tables.ctable import make_row
from repro.logic.atoms import Var


# ----------------------------------------------------------------------
# Exact decision: ?-tables
# ----------------------------------------------------------------------

def qtable_representable(target: IDatabase) -> bool:
    """Decide exactly whether a ?-table represents *target*.

    ``Mod`` of a ?-table is the full boolean lattice between its
    mandatory set ``M`` and ``M ∪ O``; *target* is representable iff it
    has that shape, i.e. iff it contains every ``M ∪ S`` for
    ``S ⊆ possible − certain``.
    """
    certain = target.certain_tuples()
    optional = target.possible_tuples() - certain
    if len(target) != 2 ** len(optional):
        return False
    # Counting suffices: every world lies between M and M ∪ O, and there
    # are exactly 2^|O| such sets, so equality of counts forces equality
    # of families.  (Worlds are distinct by construction of IDatabase.)
    return True


# ----------------------------------------------------------------------
# Lemma for infinite-domain refutations
# ----------------------------------------------------------------------

def emptiness_varies(target: IDatabase) -> bool:
    """True when *target* contains both the empty and a non-empty world.

    Tables without optional parts (v-tables, Codd tables, plain or-set
    tables) denote the empty world iff they have no rows — in which case
    they denote *only* the empty world.  Hence a target for which this
    function returns True is representable by none of those systems,
    over finite or infinite domains alike.  This is the engine of the
    Proposition 1 selection counterexamples.
    """
    has_empty = any(len(instance) == 0 for instance in target)
    has_nonempty = any(len(instance) > 0 for instance in target)
    return has_empty and has_nonempty


def connected_under_small_steps(target: IDatabase) -> bool:
    """The choice-space connectivity lemma for product-shaped systems.

    Or-set tables and Rsets tables denote images of a *product* choice
    space (one independent coordinate per or-set cell / block).  Changing
    a single coordinate removes at most one tuple from the world and adds
    at most one, so any two worlds are linked by a chain of worlds whose
    consecutive symmetric differences have size ≤ 2.  A target whose
    "|Δ| ≤ 2" graph is disconnected is therefore representable by *no*
    or-set table and no Rsets table — a sound, complete-as-refutation,
    cheap test that the bounded searches cannot provide.
    """
    worlds = list(target.instances)
    if len(worlds) <= 1:
        return True
    adjacency = {index: set() for index in range(len(worlds))}
    for i in range(len(worlds)):
        for j in range(i + 1, len(worlds)):
            delta = worlds[i].rows ^ worlds[j].rows
            if len(delta) <= 2:
                adjacency[i].add(j)
                adjacency[j].add(i)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(worlds)


# ----------------------------------------------------------------------
# Candidate-space helpers
# ----------------------------------------------------------------------

def _column_values(target: IDatabase) -> List[List]:
    """Values occurring at each column across all worlds, sorted."""
    columns: List[set] = [set() for _ in range(target.arity)]
    for instance in target:
        for row in instance:
            for index, value in enumerate(row):
                columns[index].add(value)
    return [sorted(values, key=repr) for values in columns]


def _nonempty_subsets(values: Sequence) -> Iterator[Tuple]:
    for size in range(1, len(values) + 1):
        yield from itertools.combinations(values, size)


def _multisets_up_to(items: Sequence, max_total: int, caps: Sequence[int]):
    """Yield multisets over *items* with per-item caps and total bound.

    Iterative (explicit stack) so huge item lists fail by taking time,
    not by blowing the recursion limit.
    """
    stack: List[Tuple[int, int, Tuple[int, ...]]] = [(0, max_total, ())]
    while stack:
        position, remaining, chosen = stack.pop()
        if position == len(items):
            yield chosen
            continue
        for count in range(min(caps[position], remaining), -1, -1):
            stack.append((position + 1, remaining - count, chosen + (count,)))


# ----------------------------------------------------------------------
# Or-set tables (= finite Codd tables)
# ----------------------------------------------------------------------

def orset_representable(
    target: IDatabase, max_rows: Optional[int] = None
) -> bool:
    """Search for a plain or-set table with ``Mod = target``.

    Candidate rows combine, per column, a constant or an or-set over the
    target's column values.  ``max_rows`` defaults to the largest world
    size plus one (every row yields a tuple in every world, so a
    representing table with more rows than that must collide heavily;
    the default is ample for the paper's small separations — callers can
    raise it for extra assurance).
    """
    if len(target) == 1:
        return True  # the single instance itself is an or-set table
    if emptiness_varies(target):
        return False
    if not connected_under_small_steps(target):
        return False  # sound refutation regardless of table size
    columns = _column_values(target)
    if any(not values for values in columns) and target.arity > 0:
        # Some column never carries a value: only the empty world exists,
        # which the len(target) == 1 case already covered.
        return len(target) == 1
    max_rows = max_rows if max_rows is not None else target.max_cardinality() + 1
    row_types: List[Tuple] = []
    for combo in itertools.product(
        *[list(_nonempty_subsets(values)) for values in columns]
    ):
        cells = tuple(
            subset[0] if len(subset) == 1 else OrSet(subset) for subset in combo
        )
        row_types.append(cells)
    caps = [
        max(
            1,
            min(
                max_rows,
                _row_choice_count(cells),
            ),
        )
        for cells in row_types
    ]
    for counts in _multisets_up_to(row_types, max_rows, caps):
        if sum(counts) == 0:
            continue
        rows = []
        for cells, count in zip(row_types, counts):
            rows.extend([OrSetRow(cells, False)] * count)
        if not rows:
            continue
        table = OrSetTable(rows, arity=target.arity, allow_optional=False)
        if table.mod() == target:
            return True
    return False


def _row_choice_count(cells: Tuple) -> int:
    count = 1
    for cell in cells:
        if isinstance(cell, OrSet):
            count *= len(cell)
    return count


def codd_representable(
    target: IDatabase, max_rows: Optional[int] = None
) -> bool:
    """Search for a finite-domain Codd table with ``Mod = target``.

    Codd tables and or-set tables are equivalent (Section 3), so this
    delegates to :func:`orset_representable`.
    """
    return orset_representable(target, max_rows)


# ----------------------------------------------------------------------
# Finite v-tables
# ----------------------------------------------------------------------

def vtable_representable(
    target: IDatabase,
    max_rows: int = 3,
    max_vars: int = 2,
) -> bool:
    """Search for a finite v-table with ``Mod = target``.

    Cells range over the target's column values and ``max_vars``
    canonical variables; each variable's domain ranges over non-empty
    subsets of the target's full value set.  Variable names are
    canonical (first occurrence order), cutting the symmetric candidates.
    """
    if len(target) == 1:
        return True
    if emptiness_varies(target):
        return False
    columns = _column_values(target)
    all_values = sorted({v for column in columns for v in column}, key=repr)
    variables = [Var(f"v{index}") for index in range(max_vars)]
    cell_pool: List = []
    for index in range(target.arity):
        cell_pool.append(list(columns[index]) + list(variables))
    row_types = list(itertools.product(*cell_pool)) if target.arity else [()]
    for row_count in range(1, max_rows + 1):
        for rows in itertools.combinations_with_replacement(
            row_types, row_count
        ):
            used = []
            for row in rows:
                for cell in row:
                    if isinstance(cell, Var) and cell.name not in used:
                        used.append(cell.name)
            if not _canonical_variable_order(used):
                continue
            domain_choices = [
                list(_nonempty_subsets(all_values)) for _ in used
            ]
            for assignment in itertools.product(*domain_choices):
                domains = dict(zip(used, assignment))
                table = VTable(
                    [make_row(row) for row in rows],
                    arity=target.arity,
                    domains=domains,
                )
                if table.mod() == target:
                    return True
    return False


def _canonical_variable_order(used: List[str]) -> bool:
    """True when variables appear in canonical first-use order v0, v1, …"""
    return used == [f"v{index}" for index in range(len(used))]


# ----------------------------------------------------------------------
# Rsets
# ----------------------------------------------------------------------

def rsets_representable(
    target: IDatabase, max_blocks: int = 3
) -> bool:
    """Search for an Rsets table with ``Mod = target``.

    Blocks range over non-empty subsets of the target's possible tuples,
    each optionally '?'-labeled; multisets of up to *max_blocks* blocks
    are tried (block duplication beyond 2 copies is rarely useful at
    these sizes, and the per-type cap keeps the search finite).
    """
    possible = sorted(target.possible_tuples(), key=repr)
    if len(target) == 1 and target.max_cardinality() == 0:
        return True  # the empty Rsets table denotes {∅}
    if not connected_under_small_steps(target):
        return False  # sound refutation regardless of table size
    if target.max_cardinality() > max_blocks:
        return False  # every block contributes at most one tuple per world
    block_types: List[RSetsBlock] = []
    for subset in _nonempty_subsets(possible):
        block_types.append(RSetsBlock(frozenset(subset), False))
        block_types.append(RSetsBlock(frozenset(subset), True))
    caps = [max_blocks] * len(block_types)
    for counts in _multisets_up_to(block_types, max_blocks, caps):
        blocks: List[RSetsBlock] = []
        for block_type, count in zip(block_types, counts):
            blocks.extend([block_type] * count)
        if not blocks:
            continue
        table = RSetsTable(blocks, arity=target.arity)
        if table.mod() == target:
            return True
    return False


# ----------------------------------------------------------------------
# R⊕≡
# ----------------------------------------------------------------------

def rxoreq_representable(
    target: IDatabase, max_tuples: int = 4
) -> bool:
    """Search for an R⊕≡ table with ``Mod = target``.

    Position multisets range over the target's possible tuples; every
    assignment of {none, ⊕, ≡} to position pairs is tried.
    """
    possible = sorted(target.possible_tuples(), key=repr)
    if not possible:
        return len(target) == 1
    for count in range(0, max_tuples + 1):
        for tuples in itertools.combinations_with_replacement(
            possible, count
        ):
            pairs = list(itertools.combinations(range(count), 2))
            for kinds in itertools.product(
                (None, "xor", "iff"), repeat=len(pairs)
            ):
                assertions = [
                    Assertion(kind, left, right)
                    for (left, right), kind in zip(pairs, kinds)
                    if kind is not None
                ]
                table = RXorEquivTable(
                    tuples, assertions, arity=target.arity
                )
                if table.mod() == target:
                    return True
    return False
