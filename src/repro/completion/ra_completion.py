"""Theorem 5: RA-completion of Codd tables and v-tables.

Closing a representation system under a query-language fragment
(Definition 8) yields tables ``(T, q)`` with ``Mod(T, q) = q(Mod(T))``.
Theorem 5 shows:

1. Codd tables closed under **SPJU** are RA-complete — a corollary of
   Theorem 1, since ``Z_k`` is a Codd table
   (:func:`codd_spju_completion`);
2. v-tables closed under **SP** are RA-complete — the appendix
   construction appends a tuple-identifier column and one column per
   variable, so a single selection + projection recovers the c-table
   semantics (:func:`vtable_sp_completion`).

Both functions return ``(table, query)`` such that ``q̄(table)`` has the
same Mod as the input c-table; ``verify_*`` helpers check it over
witness domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.domain import Domain
from repro.errors import UnsupportedOperationError
from repro.logic.atoms import Const, Var
from repro.logic.syntax import TOP, Formula, conj, disj
from repro.algebra.ast import Query
from repro.algebra.builders import proj, sel, rel
from repro.algebra.fragments import FRAGMENT_SP, FRAGMENT_SPJU, in_fragment
from repro.algebra.predicates import col, col_eq_const
from repro.tables.codd import CoddTable
from repro.tables.ctable import CRow, CTable
from repro.tables.vtable import VTable
from repro.completion.ra_definable import (
    _condition_to_predicate,
    ctable_to_query,
)
from repro.completion.zk import zk_table


def codd_spju_completion(table: CTable) -> Tuple[CoddTable, Query]:
    """Theorem 5.1: c-table → (Codd table, SPJU query).

    Trivial corollary of Theorem 1: the Codd table is ``Z_k`` with one
    column per variable of the input (named after them), and the query is
    the Theorem 1 compilation.
    """
    variables = sorted(table.variables())
    query, k = ctable_to_query(table, variables)
    z = zk_table(k)
    if variables:
        z = z.rename_variables(
            {f"z{index}": name for index, name in enumerate(variables)}
        )
    assert in_fragment(query, FRAGMENT_SPJU)
    return z, query


def vtable_sp_completion(table: CTable) -> Tuple[VTable, Query]:
    """Theorem 5.2: c-table → (v-table, SP query).

    For input arity ``n`` with tuples ``t₁ … t_m`` and variables
    ``x₁ … x_p``, build a v-table of arity ``n + 1 + p`` whose row ``i``
    is ``tᵢ`` followed by the identifier constant ``i`` and then
    ``x₁ … x_p``; the query selects
    ``⋁ᵢ (id = i ∧ ψᵢ)`` and projects to the first ``n`` columns, where
    ``ψᵢ`` is ``ϕ_{tᵢ}`` over the trailing variable columns.

    The identifier constants are chosen fresh (outside the table's
    constants) so the selection can distinguish rows regardless of the
    table's own values.
    """
    if table.global_condition != TOP:
        raise UnsupportedOperationError(
            "conjoin the global condition into each row before completing"
        )
    n = table.arity
    variables = sorted(table.variables())
    p = len(variables)
    id_column = n
    variable_column: Dict[str, int] = {
        name: n + 1 + index for index, name in enumerate(variables)
    }
    # Fresh identifiers: integers not colliding with the table's constants.
    taken = {value for value in table.constants() if isinstance(value, int)}
    identifiers: List[int] = []
    candidate = 0
    while len(identifiers) < len(table.rows):
        if candidate not in taken:
            identifiers.append(candidate)
        candidate += 1

    rows = []
    selectors = []
    for row, identifier in zip(table.rows, identifiers):
        extended = row.values + (Const(identifier),) + tuple(
            Var(name) for name in variables
        )
        rows.append(CRow(extended))
        psi = _condition_to_predicate(row.condition, variable_column)
        selectors.append(conj(col_eq_const(id_column, identifier), psi))
    vtable = VTable(rows, arity=n + 1 + p)
    source = rel("S", n + 1 + p)
    query = proj(sel(source, disj(*selectors)), list(range(n)))
    assert in_fragment(query, FRAGMENT_SP)
    return vtable, query


def verify_ra_completion(
    table: CTable,
    completion: Tuple[CTable, Query],
    domain: Optional[Domain] = None,
) -> bool:
    """Check that a completion pair reproduces ``Mod(table)``.

    Evaluates ``q̄`` on the completion's base table and compares Mods
    over a joint witness domain (or the caller's *domain*).
    """
    from repro.ctalgebra.translate import apply_query_to_ctable
    from repro.worlds.compare import mod_equal_over, witness_domain_for

    base, query = completion
    translated = apply_query_to_ctable(query, base)
    if domain is None:
        domain = witness_domain_for(
            table, translated, constants=sorted(table.constants(), key=repr)
        )
    return mod_equal_over(table, translated, domain)
