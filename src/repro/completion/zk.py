"""The tables ``Z_k`` and Proposition 4.

``Z_k`` is the Codd table with a single row of ``k`` distinct variables;
``Mod(Z_k) = { {t} | t ∈ D^k }`` is the set of all one-tuple relations
of arity ``k`` — the minimal-information databases c-tables can express
(Section 3).  Proposition 4 exhibits an RA query ``q`` with
``q(N) = Z_k``: the incomplete databases representable by c-tables are
thus RA-definable even from the absolute zero-information database.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.domain import Domain
from repro.core.idatabase import IDatabase
from repro.core.instance import Instance
from repro.core.universe import all_instances
from repro.logic.atoms import Var
from repro.logic.syntax import disj
from repro.algebra.ast import Query
from repro.algebra.builders import diff, proj, prod, rel, sel, union
from repro.algebra.predicates import col_ne
from repro.tables.codd import CoddTable
from repro.tables.ctable import CRow


def zk_table(k: int, prefix: str = "z") -> CoddTable:
    """Return ``Z_k``: one row of *k* distinct fresh variables."""
    row = CRow(tuple(Var(f"{prefix}{index}") for index in range(k)))
    return CoddTable([row])


def zk_idatabase(domain: Domain, k: int) -> IDatabase:
    """Return ``Mod(Z_k)`` restricted to a finite *domain* slice."""
    return zk_table(k).mod_over(domain)


def prop4_query(k: int, witness: Sequence) -> Query:
    """Return Proposition 4's query ``q`` with ``q(N) = Z_k``.

    Following the paper's proof:

        q'(V) := V − π_ℓ(σ_{ℓ≠r}(V × V))     -- V if |V| = 1 else ∅
        q(V)  := q'(V) ∪ ({t} − π_ℓ({t} × q'(V)))

    where ``t`` is an arbitrarily chosen *witness* tuple from ``D^k``:
    singleton inputs pass through; every other input is replaced by the
    fixed singleton ``{t}``, so the image over all of ``N`` is exactly
    the one-tuple relations.
    """
    V = rel("V", k)
    first_half = list(range(k))
    not_all_equal = disj(
        *(col_ne(index, k + index) for index in range(k))
    )
    q_prime = diff(V, proj(sel(prod(V, V), not_all_equal), first_half))
    from repro.algebra.ast import ConstRel

    t_rel = ConstRel(Instance([tuple(witness)]))
    fallback = diff(
        t_rel, proj(prod(t_rel, q_prime), first_half)
    )
    return union(q_prime, fallback)


def verify_prop4(domain: Domain, k: int) -> bool:
    """Check ``q(N) = Z_k`` over a finite *domain* slice.

    Applies the query to every instance in ``N`` (so keep
    ``|domain|^k`` small) and compares the image against ``Mod(Z_k)``.
    """
    from repro.algebra.evaluate import apply_query

    witness = tuple(domain.values[0] for _ in range(k))
    query = prop4_query(k, witness)
    image = IDatabase(
        (apply_query(query, instance) for instance in all_instances(domain, k)),
        arity=k,
    )
    return image == zk_idatabase(domain, k)
