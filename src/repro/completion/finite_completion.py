"""Finite completeness: Theorems 3, 6, 7 and Corollary 1, executable.

Every function takes an explicit finite incomplete database (an
:class:`~repro.core.idatabase.IDatabase`) and produces tables plus a
query in the fragment the corresponding theorem names, such that the
query's image over the tables' possible worlds is exactly the target.

Where the paper's proof uses a *pair* of tables "to simplify the
presentation", we do the same: the completion returns a dict binding
relation names to tables, and :func:`verify_finite_completion` evaluates
the query over the product of their world sets (the paper notes all
results reformulate smoothly for multi-relation schemas).

Two places need small repairs the paper glosses over, both documented at
the function level: surplus binary codes in the R⊕≡ construction are
mapped to the last instance (as in Theorem 3), and R⊕≡ tuples are made
mandatory with the duplicated-tuple ⊕ trick.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import UnsupportedOperationError
from repro.core.instance import Instance
from repro.core.idatabase import IDatabase
from repro.logic.atoms import boolvar
from repro.logic.syntax import TOP, Formula, conj, disj, neg
from repro.algebra.ast import ConstRel, Query
from repro.algebra.builders import (
    diff,
    proj,
    prod,
    rel,
    sel,
    singleton,
    union,
)
from repro.algebra.evaluate import evaluate_query
from repro.algebra.fragments import (
    FRAGMENT_PJ,
    FRAGMENT_PU,
    FRAGMENT_SPLUS_P,
    FRAGMENT_SPLUS_PJ,
    in_fragment,
)
from repro.algebra.predicates import col_eq, col_eq_const
from repro.tables.base import Table
from repro.tables.ctable import BooleanCTable, CRow, make_row
from repro.tables.orset import OrSet, OrSetRow, OrSetTable
from repro.tables.rsets import RSetsBlock, RSetsTable
from repro.tables.rxoreq import Assertion, RXorEquivTable
from repro.tables.qtable import QRow, QTable
from repro.tables.vtable import VTable
from repro.logic.atoms import Var


def _sorted_instances(target: IDatabase) -> List[Instance]:
    return sorted(target.instances, key=repr)


# ----------------------------------------------------------------------
# Theorem 3: boolean c-tables are finitely complete
# ----------------------------------------------------------------------

def _code_condition(code: int, bits: int, prefix: str) -> Formula:
    """The conjunction selecting binary *code* over *bits* variables."""
    literals = []
    for position in range(bits):
        variable = boolvar(f"{prefix}{position}")
        if code >> position & 1:
            literals.append(variable)
        else:
            literals.append(neg(variable))
    return conj(*literals)


def boolean_ctable_for(
    target: IDatabase, prefix: str = "x"
) -> BooleanCTable:
    """Theorem 3's construction: any finite i-database as a boolean c-table.

    With ``m`` instances and ``ℓ = ⌈lg m⌉`` boolean variables, instance
    ``i < m`` is guarded by the code condition ``ϕᵢ``, and the last
    instance absorbs all remaining codes ``ϕ_m ∨ … ∨ ϕ_{2^ℓ}``.
    """
    instances = _sorted_instances(target)
    m = len(instances)
    if m == 0:
        raise UnsupportedOperationError(
            "an incomplete database must contain at least one instance"
        )
    bits = max(0, math.ceil(math.log2(m))) if m > 1 else 0
    rows: List[CRow] = []
    for index, instance in enumerate(instances):
        if index < m - 1:
            condition = _code_condition(index, bits, prefix)
        else:
            condition = disj(
                *(
                    _code_condition(code, bits, prefix)
                    for code in range(m - 1, 2 ** bits)
                )
            )
        for row in instance:
            rows.append(make_row(row, condition))
    return BooleanCTable(rows, arity=target.arity)


# ----------------------------------------------------------------------
# Theorem 6.1: or-set tables + PJ
# ----------------------------------------------------------------------

def orset_pj_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Theorem 6.1: (or-set tables S, T; PJ query) for any finite target.

    ``S`` holds every instance's tuples tagged with the instance index;
    ``T`` is one or-set cell choosing the index; the query equi-joins the
    tag against the choice and projects the tag away.  The join is an
    equality selection over a product — the ``J`` of the PJ fragment.
    """
    instances = _sorted_instances(target)
    k = target.arity
    s_rows = [
        OrSetRow(tuple(row) + (index,), False)
        for index, instance in enumerate(instances, start=1)
        for row in instance
    ]
    s_table = OrSetTable(s_rows, arity=k + 1, allow_optional=False)
    indexes = tuple(range(1, len(instances) + 1))
    t_cell = indexes[0] if len(indexes) == 1 else OrSet(indexes)
    t_table = OrSetTable([OrSetRow((t_cell,), False)], arity=1,
                         allow_optional=False)
    query = proj(
        sel(prod(rel("S", k + 1), rel("T", 1)), col_eq(k, k + 1)),
        list(range(k)),
    )
    assert in_fragment(query, FRAGMENT_PJ)
    return {"S": s_table, "T": t_table}, query


# ----------------------------------------------------------------------
# Theorem 6.2: finite v-tables + PJ, and + S⁺P
# ----------------------------------------------------------------------

def vtable_pj_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Theorem 6.2 (PJ case): finite v-tables are at least or-set tables."""
    tables, query = orset_pj_completion(target)
    from repro.tables.convert import orset_to_codd

    converted = {
        name: orset_to_codd(table, prefix=f"{name.lower()}v")
        for name, table in tables.items()
    }
    return converted, query


def vtable_splus_p_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Theorem 6.2 (S⁺P case): a single finite v-table suffices.

    The v-table is the cross product of Case 1's S and T materialized as
    a table: rows ``(t, i, x)`` with ``dom(x) = {1..n}``; the query is
    the positive selection ``i = x`` followed by projection — no product
    needed at query time.
    """
    instances = _sorted_instances(target)
    k = target.arity
    n = len(instances)
    x = Var("w")
    rows = [
        make_row(tuple(row) + (index, x))
        for index, instance in enumerate(instances, start=1)
        for row in instance
    ]
    table = VTable(rows, arity=k + 2, domains={"w": range(1, n + 1)})
    query = proj(
        sel(rel("S", k + 2), col_eq(k, k + 1)),
        list(range(k)),
    )
    assert in_fragment(query, FRAGMENT_SPLUS_P)
    return {"S": table}, query


# ----------------------------------------------------------------------
# Theorem 6.3: Rsets + PJ, and + PU
# ----------------------------------------------------------------------

def rsets_pj_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Theorem 6.3 (PJ case): Case 1's tables re-expressed as Rsets.

    S's tagged tuples become singleton mandatory blocks; T's or-set cell
    becomes one block of unary index tuples.
    """
    instances = _sorted_instances(target)
    k = target.arity
    s_blocks = [
        RSetsBlock(frozenset({tuple(row) + (index,)}), False)
        for index, instance in enumerate(instances, start=1)
        for row in instance
    ]
    s_table = RSetsTable(s_blocks, arity=k + 1)
    t_table = RSetsTable(
        [
            RSetsBlock(
                frozenset((index,) for index in range(1, len(instances) + 1)),
                False,
            )
        ],
        arity=1,
    )
    query = proj(
        sel(prod(rel("S", k + 1), rel("T", 1)), col_eq(k, k + 1)),
        list(range(k)),
    )
    assert in_fragment(query, FRAGMENT_PJ)
    return {"S": s_table, "T": t_table}, query


def rsets_pu_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Theorem 6.3 (PU case): one wide block, one row per instance.

    With ``m`` the largest instance cardinality, the table has arity
    ``k·m`` and a single block holding, per instance, its tuples arranged
    in a row (padded by repetition); the query unions the ``m``
    projections.  The construction needs every instance non-empty unless
    the target is ``{∅}`` (the paper implicitly assumes this; padding an
    empty instance is impossible).
    """
    instances = _sorted_instances(target)
    k = target.arity
    m = max((len(instance) for instance in instances), default=0)
    if m == 0:
        # Target is {∅}: the empty Rsets table joined with an identity
        # projection already denotes exactly the empty instance.
        table = RSetsTable([], arity=k)
        query = proj(rel("T", k), list(range(k)))
        return {"T": table}, query
    if any(len(instance) == 0 for instance in instances):
        raise UnsupportedOperationError(
            "the PU construction cannot express the empty instance "
            "alongside non-empty ones (every world of the union of "
            "projections of a chosen row is non-empty)"
        )
    block_rows = []
    for instance in instances:
        rows = sorted(instance.rows, key=repr)
        padded = list(rows) + [rows[0]] * (m - len(rows))
        flat: Tuple = tuple(value for row in padded for value in row)
        block_rows.append(flat)
    table = RSetsTable(
        [RSetsBlock(frozenset(block_rows), False)], arity=k * m
    )
    branches = [
        proj(rel("T", k * m), list(range(k * i, k * i + k)))
        for i in range(m)
    ]
    query = union(*branches)
    assert in_fragment(query, FRAGMENT_PU)
    return {"T": table}, query


# ----------------------------------------------------------------------
# Theorem 6.4: R⊕≡ + S⁺PJ
# ----------------------------------------------------------------------

def rxoreq_spj_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Theorem 6.4: (R⊕≡ tables S, T; S⁺PJ query).

    ``S`` encodes ``m = ⌈lg n⌉`` independent bits as ⊕-constrained pairs
    ``(0,j),(1,j)``; the sub-query ``q' = ∏ⱼ π₁(σ₂₌ⱼ(S))`` reads the
    chosen code.  ``T`` holds each instance's tuples tagged with the
    instance's binary code (surplus codes map to the last instance, as in
    Theorem 3 — a detail the paper's sketch omits), made mandatory with
    the duplicated-tuple ⊕ trick.  The main query joins tag columns
    against the code columns.
    """
    instances = _sorted_instances(target)
    k = target.arity
    n = len(instances)
    if n == 1:
        tuples: List[Tuple] = []
        assertions: List[Assertion] = []
        for row in instances[0]:
            position = len(tuples)
            tuples.append(tuple(row))
            tuples.append(tuple(row))
            assertions.append(Assertion("xor", position, position + 1))
        table = RXorEquivTable(tuples, assertions, arity=k)
        query = proj(rel("T", k), list(range(k)))
        return {"T": table}, query
    bits = math.ceil(math.log2(n))
    # S: one ⊕ pair per bit.
    s_tuples: List[Tuple] = []
    s_assertions: List[Assertion] = []
    for bit in range(1, bits + 1):
        position = len(s_tuples)
        s_tuples.append((0, bit))
        s_tuples.append((1, bit))
        s_assertions.append(Assertion("xor", position, position + 1))
    s_table = RXorEquivTable(s_tuples, s_assertions, arity=2)
    # T: code-tagged tuples, mandatory via duplication.
    t_tuples: List[Tuple] = []
    t_assertions: List[Assertion] = []

    def code_suffix(code: int) -> Tuple:
        return tuple(code >> position & 1 for position in range(bits))

    def add_instance(instance: Instance, code: int) -> None:
        for row in instance:
            position = len(t_tuples)
            tagged = tuple(row) + code_suffix(code)
            t_tuples.append(tagged)
            t_tuples.append(tagged)
            t_assertions.append(Assertion("xor", position, position + 1))

    for index, instance in enumerate(instances[:-1]):
        add_instance(instance, index)
    for code in range(n - 1, 2 ** bits):
        add_instance(instances[-1], code)
    t_table = RXorEquivTable(t_tuples, t_assertions, arity=k + bits)
    # q' reads the chosen bit vector from S.
    bit_readers = [
        proj(sel(rel("S", 2), col_eq_const(1, bit)), [0])
        for bit in range(1, bits + 1)
    ]
    q_prime = prod(*bit_readers)
    matches = conj(
        *(col_eq(k + position, k + bits + position) for position in range(bits))
    )
    query = proj(
        sel(prod(rel("T", k + bits), q_prime), matches), list(range(k))
    )
    assert in_fragment(query, FRAGMENT_SPLUS_PJ)
    return {"S": s_table, "T": t_table}, query


# ----------------------------------------------------------------------
# Theorem 7 and Corollary 1: general finite completion
# ----------------------------------------------------------------------

def _zero_ary_true() -> ConstRel:
    return ConstRel(Instance([()], arity=0))


def _nonempty(expression: Query) -> Query:
    """Arity-0 encoding of "expression is non-empty"."""
    return proj(expression, [])


def _empty(expression: Query) -> Query:
    """Arity-0 encoding of "expression is empty"."""
    return diff(_zero_ary_true(), _nonempty(expression))


def _equals_instance(view: Query, instance: Instance) -> Query:
    """Arity-0 query: true iff *view* evaluates exactly to *instance*."""
    constant = ConstRel(instance)
    if len(instance) == 0:
        return _empty(view)
    return prod(_empty(diff(view, constant)), _empty(diff(constant, view)))


def general_finite_completion(
    base_mod: IDatabase, target: IDatabase
) -> Query:
    """Theorem 7: an RA query mapping *base_mod*'s worlds onto *target*.

    Requires ``|base_mod| ≥ |target|``.  Worlds ``J₁ … J_ℓ`` of the base
    are matched by boolean sub-queries ``qᵢ(V)`` ("V = Jᵢ"), and world
    ``Jᵢ`` is sent to target instance ``Iᵢ`` (for ``i < k``) or ``I_k``
    (for ``i ≥ k``), via ``⋃ Iᵢ × qᵢ(V)``.
    """
    worlds = _sorted_instances(base_mod)
    targets = _sorted_instances(target)
    if len(worlds) < len(targets):
        raise UnsupportedOperationError(
            f"base system has {len(worlds)} worlds, fewer than the "
            f"{len(targets)} target instances"
        )
    view = rel("V", base_mod.arity)
    branches = []
    for index, world in enumerate(worlds):
        destination = targets[index] if index < len(targets) else targets[-1]
        recognizer = _equals_instance(view, world)
        if len(destination) == 0:
            # ∅ × anything is ∅ — the branch contributes nothing, which
            # is exactly right for an empty destination instance.
            continue
        branches.append(prod(ConstRel(destination), recognizer))
    if not branches:
        # Every destination is the empty instance of arity k: produce it.
        k = target.arity
        impossible = _empty(_zero_ary_true())  # constant-false, arity 0
        filler = prod(ConstRel(Instance([tuple([0] * k)])), impossible)
        return filler
    return union(*branches)


def qtable_ra_completion(
    target: IDatabase,
) -> Tuple[Dict[str, Table], Query]:
    """Corollary 1: ?-tables closed under RA are finitely complete.

    Builds a unary ?-table with ``⌈lg k⌉`` optional tuples (so its Mod
    has at least ``k`` worlds) and applies Theorem 7.
    """
    needed = len(target.instances)
    r = max(1, math.ceil(math.log2(needed))) if needed > 1 else 1
    qtable = QTable(
        [QRow((index,), True) for index in range(1, r + 1)], arity=1
    )
    query = general_finite_completion(qtable.mod(), target)
    return {"V": qtable}, query


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------

def verify_finite_completion(
    tables: Mapping[str, Table],
    query: Query,
    target: IDatabase,
) -> bool:
    """Check that the query's image over the tables' worlds is *target*.

    The incomplete database of a multi-table binding is the product of
    the tables' world sets; the image is collected instance by instance.
    """
    names = sorted(tables)
    world_lists = [list(tables[name].mod()) for name in names]
    images = set()
    for combo in itertools.product(*world_lists):
        env = dict(zip(names, combo))
        images.add(evaluate_query(query, env))
    return IDatabase(images, arity=target.arity) == target
