"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ArityError(ReproError):
    """A tuple, table, or query was used with an incompatible arity."""


class DomainError(ReproError):
    """A value lies outside the active domain, or a domain is misused."""


class ConditionError(ReproError):
    """A condition formula is malformed or used in an unsupported way."""


class ValuationError(ReproError):
    """A valuation does not cover the variables it is applied to."""


class QueryError(ReproError):
    """A relational-algebra expression is malformed."""


class PlanError(ReproError):
    """A logical or physical plan is structurally malformed."""


class PlanVerificationError(PlanError):
    """A plan (or a single rewrite) violates a verified invariant.

    Raised by :class:`repro.ctalgebra.verify.PlanVerifier`.  The message
    is assembled from structured parts so diagnostics are uniform and a
    test (or a user) can see *which rule* produced the bad tree and
    *which check* rejected it:

    - ``check`` — the invariant that failed (``"arity"``, ``"scope"``,
      ``"interning"``, ``"estimates"``, ``"lowering"``,
      ``"conjunct-conservation"``, ``"leaf-conservation"``,
      ``"unsat-prune"``);
    - ``rule`` — the optimizer rule (or pipeline stage) whose output was
      being verified, when known;
    - ``node`` — a short rendering of the offending node;
    - ``detail`` — the human explanation.
    """

    def __init__(
        self,
        check: str,
        detail: str,
        *,
        rule: "str | None" = None,
        node: "object | None" = None,
    ) -> None:
        self.check = check
        self.rule = rule
        self.node = node
        self.detail = detail
        parts = [f"plan verification failed [{check}]"]
        if rule is not None:
            parts.append(f"after rule {rule!r}")
        message = " ".join(parts) + f": {detail}"
        if node is not None:
            rendered = repr(node)
            if len(rendered) > 200:
                rendered = rendered[:200] + "…"
            message += f" (node: {rendered})"
        super().__init__(message)


def nearest_name(name: str, candidates: "list[str] | tuple[str, ...]") -> str:
    """A ``"; did you mean 'x'?"`` suffix for unknown-name diagnostics.

    Returns the empty string when nothing in *candidates* is close, so
    callers can append the result unconditionally.
    """
    import difflib

    close = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    if not close:
        return ""
    return f"; did you mean {close[0]!r}?"


class FragmentError(QueryError):
    """A query does not belong to the relational-algebra fragment required."""


class TableError(ReproError):
    """A representation-system table is malformed."""


class ProbabilityError(ReproError):
    """Probability values are malformed (negative, or do not sum to one)."""


class NoWorldsError(ReproError):
    """A worlds-quantified operation was asked about an empty ``Mod``.

    The certain answer is an intersection over the possible worlds; over
    *zero* worlds that intersection is vacuously "every tuple", which no
    finite instance can represent.  Returning an empty instance instead
    would silently conflate "no worlds" with "no certain tuples", so the
    situation (e.g. an unsatisfiable global condition) raises.
    """


class UnsupportedOperationError(ReproError):
    """The requested operation is not supported by this representation system.

    Raised, for instance, when asking a system that is provably not closed
    under an operation to represent the result exactly (Proposition 1).
    """
