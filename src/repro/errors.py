"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ArityError(ReproError):
    """A tuple, table, or query was used with an incompatible arity."""


class DomainError(ReproError):
    """A value lies outside the active domain, or a domain is misused."""


class ConditionError(ReproError):
    """A condition formula is malformed or used in an unsupported way."""


class ValuationError(ReproError):
    """A valuation does not cover the variables it is applied to."""


class QueryError(ReproError):
    """A relational-algebra expression is malformed."""


class FragmentError(QueryError):
    """A query does not belong to the relational-algebra fragment required."""


class TableError(ReproError):
    """A representation-system table is malformed."""


class ProbabilityError(ReproError):
    """Probability values are malformed (negative, or do not sum to one)."""


class NoWorldsError(ReproError):
    """A worlds-quantified operation was asked about an empty ``Mod``.

    The certain answer is an intersection over the possible worlds; over
    *zero* worlds that intersection is vacuously "every tuple", which no
    finite instance can represent.  Returning an empty instance instead
    would silently conflate "no worlds" with "no certain tuples", so the
    situation (e.g. an unsatisfiable global condition) raises.
    """


class UnsupportedOperationError(ReproError):
    """The requested operation is not supported by this representation system.

    Raised, for instance, when asking a system that is provably not closed
    under an operation to represent the result exactly (Proposition 1).
    """
