"""Decision procedures for equality logic over an infinite domain.

c-tables in the paper range over a countably infinite domain ``D``, so
"is this condition satisfiable?" cannot be answered by enumerating ``D``.
Equality logic enjoys a *small-model property*: a boolean combination of
equalities over variables ``V`` and constants ``C`` is satisfiable over
an infinite domain if and only if it is satisfiable over any finite
domain containing ``C`` plus ``|V|`` extra fresh values.  (Each variable
need only choose between being equal to one of the constants, or equal to
some other variable's fresh value, or fresh itself.)

This module implements that reduction (:func:`witness_domain`) and on top
of it satisfiability, validity, implication and equivalence tests, which
power the semantic comparisons in :mod:`repro.worlds.compare` and the
infinite-domain theorems (E04, E05, E10 in DESIGN.md).

Two engines are provided and cross-checked in the tests: direct pruned
enumeration over the witness domain (:func:`is_satisfiable_finite`), and
a SAT-based engine that solves the boolean skeleton and checks the
induced equality constraints for consistency with a union-find
(:func:`is_satisfiable_skeleton`).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterator, List, Sequence, Tuple

from repro.logic.atoms import BoolVar, Const, Eq
from repro.logic.cnf import AtomMap, tseitin_clauses
from repro.logic.models import is_satisfiable_over
from repro.logic.sat import Solver
from repro.logic.syntax import Formula, conj, neg, walk


def constants_of(formula: Formula) -> FrozenSet[Hashable]:
    """Return the set of constant values mentioned by equality atoms."""
    values = set()
    for node in walk(formula):
        if isinstance(node, Eq):
            for term in (node.left, node.right):
                if isinstance(term, Const):
                    values.add(term.value)
    return frozenset(values)


class _FreshValue:
    """A domain value guaranteed distinct from every user constant.

    Instances compare equal only to themselves, so they can never collide
    with paper-level constants such as small integers or strings.
    """

    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"•{self.label}"


def fresh_values(count: int) -> List[_FreshValue]:
    """Return *count* pairwise-distinct fresh domain values."""
    return [_FreshValue(index) for index in range(count)]


def witness_domain(formula: Formula, extra: int = 0) -> List[Hashable]:
    """Return a finite domain sufficient to decide *formula* over infinite D.

    The domain consists of the formula's constants plus one fresh value
    per domain variable, plus *extra* additional fresh values (callers
    comparing several formulas at once pass the combined requirement).
    """
    constants = sorted(constants_of(formula), key=repr)
    variable_count = sum(
        1 for name in formula.variables() if not _is_boolean_name(formula, name)
    )
    fresh = fresh_values(variable_count + extra)
    return list(constants) + list(fresh)


def _is_boolean_name(formula: Formula, name: str) -> bool:
    return any(
        isinstance(node, BoolVar) and node.name == name for node in walk(formula)
    )


def _split_variables(formula: Formula) -> Tuple[List[str], List[str]]:
    """Split the formula's variables into (domain variables, boolean vars)."""
    booleans = {
        node.name for node in walk(formula) if isinstance(node, BoolVar)
    }
    domain_vars = sorted(formula.variables() - booleans)
    return domain_vars, sorted(booleans)


def is_satisfiable_finite(
    formula: Formula, domain: Sequence[Hashable]
) -> bool:
    """Decide satisfiability of *formula* with domain vars ranging over *domain*."""
    domain_vars, boolean_vars = _split_variables(formula)
    domains: Dict[str, Sequence[Hashable]] = {
        name: list(domain) for name in domain_vars
    }
    domains.update({name: (False, True) for name in boolean_vars})
    if not domains:
        # Ground formula: partial evaluation decides it outright.
        from repro.logic.evaluation import partial_evaluate
        from repro.logic.syntax import TOP

        return partial_evaluate(formula, {}) is TOP
    return is_satisfiable_over(formula, domains)


def is_satisfiable_infinite(formula: Formula) -> bool:
    """Decide satisfiability of *formula* over the countably infinite domain."""
    return is_satisfiable_finite(formula, witness_domain(formula))


def is_valid_infinite(formula: Formula) -> bool:
    """Decide validity (truth under every valuation) over the infinite domain.

    Note the witness domain must be computed for the *negation*, whose
    satisfiability is being tested.
    """
    negated = neg(formula)
    return not is_satisfiable_finite(negated, witness_domain(negated))


def implies_infinite(antecedent: Formula, consequent: Formula) -> bool:
    """Decide whether *antecedent* entails *consequent* over infinite D."""
    counterexample = conj(antecedent, neg(consequent))
    return not is_satisfiable_finite(
        counterexample, witness_domain(counterexample)
    )


def equivalent_infinite(left: Formula, right: Formula) -> bool:
    """Decide logical equivalence of two conditions over infinite D."""
    return implies_infinite(left, right) and implies_infinite(right, left)


def is_satisfiable_skeleton(formula: Formula) -> bool:
    """SAT-based satisfiability via boolean skeleton + congruence check.

    The formula's boolean skeleton (atoms as opaque propositions) is
    solved by DPLL; each propositional model induces equality/disequality
    constraints that are checked for consistency by union-find.  Models
    are enumerated until a theory-consistent one is found.  This engine is
    independent of the enumeration engine and the two are cross-validated
    by property tests.
    """
    clauses, atom_map, _ = tseitin_clauses(formula)
    solver = Solver()
    for assignment in solver.enumerate(clauses):
        if _theory_consistent(assignment, atom_map):
            return True
    return False


def _theory_consistent(assignment: Dict[int, bool], atom_map: AtomMap) -> bool:
    """Check equality/disequality constraints induced by a SAT model."""
    parent: Dict[Hashable, Hashable] = {}

    def find(item: Hashable) -> Hashable:
        parent.setdefault(item, item)
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(left: Hashable, right: Hashable) -> None:
        parent[find(left)] = find(right)

    def key(term) -> Hashable:
        if isinstance(term, Const):
            return ("const", term.value)
        return ("var", term.name)

    disequalities = []
    for atom in atom_map.atoms():
        if not isinstance(atom, Eq):
            continue
        index = atom_map.index_of(atom)
        if index not in assignment:
            continue
        if assignment[index]:
            union(key(atom.left), key(atom.right))
        else:
            disequalities.append((key(atom.left), key(atom.right)))
    # Distinct constants must stay in distinct classes.
    constant_roots: Dict[Hashable, Hashable] = {}
    for item in list(parent):
        if isinstance(item, tuple) and item[0] == "const":
            root = find(item)
            if root in constant_roots and constant_roots[root] != item:
                return False
            constant_roots[root] = item
    return all(find(left) != find(right) for left, right in disequalities)


def equivalence_classes(
    valuation_pairs: Sequence[Tuple[str, Hashable]]
) -> List[FrozenSet[str]]:
    """Group variable names by equal assigned value (a testing helper)."""
    groups: Dict[Hashable, set] = {}
    for name, value in valuation_pairs:
        groups.setdefault(value, set()).add(name)
    return [frozenset(group) for group in groups.values()]


def all_partitions(
    items: Sequence[str],
) -> Iterator[List[FrozenSet[str]]]:
    """Yield every partition of *items* into non-empty blocks.

    Used by exhaustive separation proofs (benchmark E19): valuations over
    an infinite domain matter only through the partition they induce on
    variables plus their agreement with constants.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in all_partitions(rest):
        for index in range(len(partition)):
            updated = [list(block) for block in partition]
            updated[index].append(first)
            yield [frozenset(block) for block in updated]
        yield [frozenset({first})] + [frozenset(block) for block in partition]


def satisfying_partition_count(formula: Formula) -> int:
    """Count variable partitions consistent with *formula* (diagnostics).

    Each partition is realized by assigning a shared fresh value per
    block; the count is a domain-independent measure of how constrained a
    condition is.
    """
    domain_vars, boolean_vars = _split_variables(formula)
    count = 0
    constants = sorted(constants_of(formula), key=repr)
    for partition in all_partitions(domain_vars):
        block_values = fresh_values(len(partition))
        valuation: Dict[str, Hashable] = {}
        for block, value in zip(partition, block_values):
            for name in block:
                valuation[name] = value
        # Blocks may alternatively collapse onto constants; enumerate the
        # choice of "block -> fresh or block -> constant" assignments.
        choices = [[value] + list(constants) for value in block_values]
        for combo in itertools.product(*choices):
            if len(set(combo)) != len(combo):
                continue
            candidate = {}
            for block, value in zip(partition, combo):
                for name in block:
                    candidate[name] = value
            for booleans in itertools.product(
                (False, True), repeat=len(boolean_vars)
            ):
                candidate.update(dict(zip(boolean_vars, booleans)))
                from repro.logic.evaluation import evaluate

                if evaluate(formula, candidate):
                    count += 1
    return count
