"""Probability of a condition under independent distributed variables.

pc-tables (Definition 13 of the paper) attach to every variable ``x`` a
finite probability space ``dom(x)``; variables are independent.  The
probability that a condition holds is then a weighted count over the
product space.  Three evaluation strategies are provided, benchmarked
against each other in E18:

- :func:`probability_enumerate` — fold over *all* valuations (exact,
  exponential, the baseline),
- :func:`probability_shannon` — recursive Shannon expansion with
  memoization on the simplified residual formula: expand one variable at
  a time, weight each branch, and share work across branches whose
  residuals coincide (this generalizes BDD evaluation to multi-valued
  variables — in knowledge-compilation terms it builds a free decision
  diagram on the fly),
- ``strategy="wmc"`` — compile the condition to d-DNNF once
  (:mod:`repro.logic.compile`) and weighted-model-count the circuit
  (:mod:`repro.prob.wmc`); cost scales with condition and circuit size,
  never ``2^variables``,
- :meth:`repro.logic.bdd.Bdd.probability` — for purely boolean
  conditions, compile to an OBDD first.

:func:`probability` dispatches between them, compiled-first past the
variable budget (mirroring how ``ctables_equivalent`` in
:mod:`repro.worlds.compare` dispatches symbolic-first).  All strategies
return identical exact :class:`fractions.Fraction` values.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ProbabilityError
from repro.logic.evaluation import evaluate, partial_evaluate
from repro.logic.syntax import BOTTOM, TOP, Formula

# A distribution maps each outcome value to its probability.
Distribution = Mapping[Hashable, Fraction]
Distributions = Mapping[str, Distribution]

#: The probability strategies :func:`probability` dispatches between.
PROB_STRATEGIES = ("auto", "enumerate", "shannon", "wmc")

#: Up to this many condition variables, ``strategy="auto"`` keeps the
#: memoized Shannon expansion (cheap, no compilation overhead); above it
#: the d-DNNF + WMC route takes over — the twin of
#: ``SYMBOLIC_VARIABLE_BUDGET`` in :mod:`repro.worlds.compare`, which
#: budgets enumeration for Mod-equivalence the same way.
PROB_VARIABLE_BUDGET = 8


def default_prob_strategy() -> str:
    """Return the process-wide strategy from ``REPRO_PROB_STRATEGY``.

    An empty or unset variable means ``"auto"``; anything else must name
    one of :data:`PROB_STRATEGIES`.
    """
    value = os.environ.get("REPRO_PROB_STRATEGY", "").strip().lower()
    if not value:
        return "auto"
    if value not in PROB_STRATEGIES:
        raise ProbabilityError(
            f"REPRO_PROB_STRATEGY={value!r} is not one of {PROB_STRATEGIES}"
        )
    return value


def check_distribution(name: str, distribution: Distribution) -> None:
    """Validate that *distribution* is a probability distribution."""
    if not distribution:
        raise ProbabilityError(f"variable {name!r} has an empty distribution")
    total = Fraction(0)
    for value, weight in distribution.items():
        weight = Fraction(weight)
        if weight < 0:
            raise ProbabilityError(
                f"negative probability {weight} for {name!r}={value!r}"
            )
        total += weight
    if total != 1:
        raise ProbabilityError(
            f"probabilities for {name!r} sum to {total}, expected 1"
        )


def check_distributions(distributions: Distributions) -> None:
    """Validate every distribution in the map."""
    for name, distribution in distributions.items():
        check_distribution(name, distribution)


def probability_enumerate(
    formula: Formula, distributions: Distributions
) -> Fraction:
    """Exact probability by full enumeration of the product space."""
    check_distributions(distributions)
    _require_coverage(formula, distributions)
    names = sorted(distributions)

    def recurse(position: int, valuation: Dict[str, Hashable]) -> Fraction:
        if position == len(names):
            return Fraction(1) if evaluate(formula, valuation) else Fraction(0)
        name = names[position]
        total = Fraction(0)
        for value, weight in distributions[name].items():
            valuation[name] = value
            total += Fraction(weight) * recurse(position + 1, valuation)
        del valuation[name]
        return total

    return recurse(0, {})


def probability(
    formula: Formula,
    distributions: Distributions,
    *,
    strategy: Optional[str] = None,
) -> Fraction:
    """Exact probability of *formula* under independent *distributions*.

    *strategy* picks the evaluation route (one of
    :data:`PROB_STRATEGIES`); ``None`` defers to ``REPRO_PROB_STRATEGY``
    (default ``"auto"``).  ``"auto"`` dispatches compiled-first: the
    memoized Shannon expansion within :data:`PROB_VARIABLE_BUDGET`
    condition variables, the d-DNNF + weighted-model-counting route
    beyond it.  Every strategy returns the same exact
    :class:`fractions.Fraction`.
    """
    resolved = _resolve_strategy(strategy, formula)
    if resolved == "enumerate":
        return probability_enumerate(formula, distributions)
    if resolved == "wmc":
        # Imported lazily: repro.prob sits above repro.logic in the
        # package layering, and only this strategy needs it.
        from repro.prob.wmc import wmc_probability

        return wmc_probability(formula, distributions)
    return probability_shannon(formula, distributions)


def _resolve_strategy(strategy: Optional[str], formula: Formula) -> str:
    if strategy is None:
        strategy = default_prob_strategy()
    strategy = strategy.lower()
    if strategy not in PROB_STRATEGIES:
        raise ProbabilityError(
            f"unknown probability strategy {strategy!r}; "
            f"expected one of {PROB_STRATEGIES}"
        )
    if strategy == "auto":
        if len(formula.variables()) <= PROB_VARIABLE_BUDGET:
            return "shannon"
        return "wmc"
    return strategy


def probability_shannon(
    formula: Formula, distributions: Distributions
) -> Fraction:
    """Exact probability by memoized Shannon expansion.

    Variables are expanded in sorted-name order restricted to the
    variables the residual formula still mentions; branches whose partial
    evaluation folds to a constant stop immediately, and residuals are
    cached so isomorphic sub-problems are solved once.
    """
    check_distributions(distributions)
    _require_coverage(formula, distributions)
    cache: Dict[Tuple[Formula, Tuple[str, ...]], Fraction] = {}

    def recurse(current: Formula, remaining: Tuple[str, ...]) -> Fraction:
        if current is TOP:
            return Fraction(1)
        if current is BOTTOM:
            return Fraction(0)
        live = tuple(name for name in remaining if name in current.variables())
        if not live:
            # No distributed variable remains but the formula did not fold:
            # it must be ground-decidable.
            folded = partial_evaluate(current, {})
            if folded is TOP:
                return Fraction(1)
            if folded is BOTTOM:
                return Fraction(0)
            raise ProbabilityError(
                f"formula retains free variables without distributions: "
                f"{sorted(current.variables())}"
            )
        key = (current, live)
        cached = cache.get(key)
        if cached is not None:
            return cached
        pivot, rest = live[0], live[1:]
        total = Fraction(0)
        for value, weight in distributions[pivot].items():
            weight = Fraction(weight)
            if weight == 0:
                continue
            branch = partial_evaluate(current, {pivot: value})
            total += weight * recurse(branch, rest)
        cache[key] = total
        return total

    return recurse(partial_evaluate(formula, {}), tuple(sorted(distributions)))


def _require_coverage(formula: Formula, distributions: Distributions) -> None:
    missing = formula.variables() - set(distributions)
    if missing:
        raise ProbabilityError(
            f"no distributions for variables: {sorted(missing)}"
        )


def uniform(values: Sequence[Hashable]) -> Dict[Hashable, Fraction]:
    """Return the uniform distribution over *values*."""
    if not values:
        raise ProbabilityError("cannot build a uniform distribution over nothing")
    share = Fraction(1, len(values))
    return {value: share for value in values}


def bernoulli(weight: Union[int, float, str, Fraction]) -> Dict[bool, Fraction]:
    """Return a boolean distribution with P[True] = *weight*."""
    weight = Fraction(weight)
    if not 0 <= weight <= 1:
        raise ProbabilityError(f"Bernoulli weight {weight} outside [0, 1]")
    return {True: weight, False: 1 - weight}
