"""Symbolic condition equivalence: SAT- and BDD-backed, no enumeration.

Deciding whether two c-table conditions admit exactly the same valuations
is the primitive behind Mod-level table comparison
(:mod:`repro.worlds.compare`) and semantic plan verification
(:mod:`repro.ctalgebra.verify`).  The historical route — enumerate every
valuation over a witness domain — is exponential in the number of
variables and caps table sizes across the differential harness and the
benchmarks.  This module replaces it with two independent symbolic
provers over the *symmetric difference* ``(φ ∧ ¬ψ) ∨ (¬φ ∧ ψ)``:

- **SAT engine** — Tseitin-encode the difference
  (:func:`repro.logic.cnf.tseitin_clauses`), enumerate propositional
  models with the DPLL solver, and reject models whose induced
  equality/disequality constraints are inconsistent under
  :mod:`repro.logic.equality_sat`'s union-find theory closure.  The
  formulas are equivalent over the countably infinite domain iff no
  theory-consistent model of the difference exists — complete for
  equality logic by the small-model property.
- **BDD engine** — map every atom (``Eq`` or ``BoolVar``) to an opaque
  propositional variable, compile both conditions into one shared
  :class:`repro.logic.bdd.Bdd` manager, and XOR the two nodes.  A ``⊥``
  difference proves equivalence outright; otherwise each root-to-``⊤``
  path is a partial atom assignment that is checked against the same
  theory closure.  A theory-consistent partial assignment always extends
  to a full infinite-domain valuation (assign each congruence class a
  distinct fresh value), so path-level checking is exact.

The two engines share nothing beyond the atom numbering, which makes
``engine="both"`` a genuine cross-validation: any disagreement raises
:class:`~repro.errors.ConditionError` instead of silently picking a
winner.  Mixed conditions are handled exactly — ``BoolVar`` atoms are
free two-valued propositions, ``Eq`` atoms are interpreted over the
infinite domain.

Callers that need a witness rather than a verdict use
:func:`distinguishing_assignment`, which returns a theory-consistent
truth assignment to the genuine atoms on which the two conditions
disagree (``None`` when they are equivalent; note the witness may be the
*empty* assignment when the difference is a ground tautology, so compare
against ``None`` rather than truthiness).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConditionError
from repro.logic.atoms import Eq
from repro.logic.bdd import ONE, ZERO, Bdd
from repro.logic.cnf import AtomMap, tseitin_clauses

# The union-find theory closure is deliberately shared with
# is_satisfiable_skeleton so both satisfiability and equivalence agree on
# what "realizable over infinite D" means.
from repro.logic.equality_sat import _theory_consistent
from repro.logic.sat import Solver
from repro.obs.metrics import counter
from repro.obs.names import EQUIV_BDD_TOTAL, EQUIV_SAT_TOTAL
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    is_atom,
    neg,
)

ENGINES: Tuple[str, ...] = ("sat", "bdd", "both")

DEFAULT_ENGINE: str = "sat"


def xor_condition(left: Formula, right: Formula) -> Formula:
    """Return the symmetric difference ``(left ∧ ¬right) ∨ (¬left ∧ right)``.

    The smart constructors fold the obvious cases: identical (interned)
    inputs collapse to ``⊥`` without ever reaching a solver.
    """
    return disj(conj(left, neg(right)), conj(neg(left), right))


# ----------------------------------------------------------------------
# SAT engine
# ----------------------------------------------------------------------

def distinguishing_assignment(
    left: Formula, right: Formula
) -> Optional[Dict[Formula, bool]]:
    """Return a theory-consistent atom assignment separating the conditions.

    ``None`` means the conditions are equivalent over the infinite
    domain.  Otherwise the returned mapping assigns truth values to the
    genuine atoms (``Eq`` / ``BoolVar``) of a propositional model of the
    symmetric difference whose equality constraints are realizable; it
    may be empty when the difference holds under every valuation.
    """
    counter(EQUIV_SAT_TOTAL)
    difference = xor_condition(left, right)
    if difference is BOTTOM:
        return None
    clauses, atom_map, _ = tseitin_clauses(difference)
    for assignment in Solver().enumerate(clauses):
        if _theory_consistent(assignment, atom_map):
            return {
                atom: assignment[atom_map.index_of(atom)]
                for atom in atom_map.atoms()
                if atom_map.index_of(atom) in assignment
            }
    return None


def _sat_equivalent(left: Formula, right: Formula) -> bool:
    return distinguishing_assignment(left, right) is None


# ----------------------------------------------------------------------
# BDD engine
# ----------------------------------------------------------------------

def _compile_opaque(
    manager: Bdd, names: Dict[Formula, str], formula: Formula
) -> int:
    """Compile *formula* treating every atom as an opaque BDD variable.

    ``Bdd.from_formula`` refuses ``Eq`` atoms by design; here equality
    atoms are precisely what the theory closure later reinterprets, so
    they compile to plain variables like any ``BoolVar``.
    """
    if isinstance(formula, Top):
        return manager.true()
    if isinstance(formula, Bottom):
        return manager.false()
    if is_atom(formula):
        return manager.var(names[formula])
    if isinstance(formula, Not):
        return manager.neg(_compile_opaque(manager, names, formula.child))
    if isinstance(formula, And):
        node = ONE
        for child in formula.children:
            node = manager.conj(node, _compile_opaque(manager, names, child))
            if node == ZERO:
                return ZERO
        return node
    if isinstance(formula, Or):
        node = ZERO
        for child in formula.children:
            node = manager.disj(node, _compile_opaque(manager, names, child))
            if node == ONE:
                return ONE
        return node
    raise ConditionError(f"cannot compile {formula!r} into an opaque BDD")


def _find_theory_path(
    manager: Bdd,
    node: int,
    index_of: Dict[str, int],
    atom_map: AtomMap,
) -> Optional[Dict[int, bool]]:
    """Return a theory-consistent root-to-⊤ path of *node*, if any.

    Paths are explored via public cofactoring only; a variable whose two
    cofactors coincide is skipped, so each discovered assignment is
    exactly the partial assignment of one reduced-BDD path.
    """
    order = manager.order

    def go(
        current: int, position: int, path: Dict[int, bool]
    ) -> Optional[Dict[int, bool]]:
        if current == ZERO:
            return None
        if current == ONE:
            assignment = dict(path)
            if _theory_consistent(assignment, atom_map):
                return assignment
            return None
        name = order[position]
        low = manager.restrict(current, name, False)
        high = manager.restrict(current, name, True)
        if low == high:
            return go(low, position + 1, path)
        for value, child in ((False, low), (True, high)):
            path[index_of[name]] = value
            found = go(child, position + 1, path)
            if found is not None:
                return found
            del path[index_of[name]]
        return None

    return go(node, 0, {})


def _bdd_equivalent(left: Formula, right: Formula) -> bool:
    counter(EQUIV_BDD_TOTAL)
    atom_map = AtomMap()
    atoms = sorted(left.atoms() | right.atoms(), key=repr)
    names: Dict[Formula, str] = {}
    for atom in atoms:
        names[atom] = f"a{atom_map.index_of(atom)}"
    manager = Bdd([names[atom] for atom in atoms])
    left_node = _compile_opaque(manager, names, left)
    right_node = _compile_opaque(manager, names, right)
    difference = manager.disj(
        manager.conj(left_node, manager.neg(right_node)),
        manager.conj(manager.neg(left_node), right_node),
    )
    if difference == ZERO:
        return True
    if not any(isinstance(atom, Eq) for atom in atoms):
        # Purely propositional: a non-⊥ reduced BDD has a real model.
        return False
    index_of = {name: atom_map.index_of(atom) for atom, name in names.items()}
    return _find_theory_path(manager, difference, index_of, atom_map) is None


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def equivalent_conditions(
    left: Formula, right: Formula, engine: str = DEFAULT_ENGINE
) -> bool:
    """Decide condition equivalence over the countably infinite domain.

    *engine* selects the prover: ``"sat"`` (skeleton DPLL + theory
    closure), ``"bdd"`` (shared-manager XOR + theory-checked paths), or
    ``"both"`` (run both and raise on disagreement — the cross-validating
    mode the property tests and the semantic plan verifier lean on).
    """
    if left is right:
        return True
    if engine == "sat":
        return _sat_equivalent(left, right)
    if engine == "bdd":
        return _bdd_equivalent(left, right)
    if engine == "both":
        sat_verdict = _sat_equivalent(left, right)
        bdd_verdict = _bdd_equivalent(left, right)
        if sat_verdict != bdd_verdict:
            raise ConditionError(
                "equivalence engines disagree: "
                f"sat={sat_verdict} bdd={bdd_verdict} "
                f"on {left!r} vs {right!r}"
            )
        return sat_verdict
    raise ConditionError(
        f"unknown equivalence engine {engine!r}; expected one of {ENGINES}"
    )


def is_tautology(formula: Formula, engine: str = DEFAULT_ENGINE) -> bool:
    """Decide whether *formula* holds under every infinite-domain valuation."""
    return equivalent_conditions(formula, TOP, engine=engine)


def is_contradiction(formula: Formula, engine: str = DEFAULT_ENGINE) -> bool:
    """Decide whether *formula* holds under no infinite-domain valuation."""
    return equivalent_conditions(formula, BOTTOM, engine=engine)
