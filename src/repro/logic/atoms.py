"""Atoms for c-table conditions: equality atoms and boolean variables.

Terms are either :class:`Var` (a named variable ranging over the domain
``D``) or :class:`Const` (an element of ``D``).  The single relational
atom is :class:`Eq`; disequalities are expressed as negated equalities via
:func:`ne`, which keeps the atom language minimal while matching the
paper's conditions (for instance Example 2's ``x = y ∧ z ≠ 2``).

Boolean c-tables (Section 3 of the paper) use :class:`BoolVar` atoms:
two-valued variables that may appear only in conditions, never as
attribute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Union, cast

from repro.errors import ConditionError
from repro.logic.syntax import Formula, Not, hashcons, neg


@dataclass(frozen=True)
class Var:
    """A domain variable, identified by name."""

    name: str

    __slots__ = ("name",)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A domain constant wrapping any hashable Python value."""

    value: Hashable

    __slots__ = ("value",)

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


def as_term(value: object) -> Term:
    """Coerce *value* into a :class:`Term`.

    Strings are ambiguous (variable name or string constant?), so only
    :class:`Var`/:class:`Const` instances pass through unchanged; anything
    else is wrapped as a constant.  Table builders that accept bare strings
    as variables perform their own coercion before reaching this point.
    """
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


@dataclass(frozen=True, eq=False)
class Eq(Formula):
    """Equality between two terms.

    Instances are normalized so that the two orders of the same pair of
    terms compare equal: terms are stored sorted by their repr.  Trivial
    equalities between identical terms are *not* folded here (the smart
    constructor :func:`eq` does that) so the raw dataclass stays dumb.
    """

    left: Term
    right: Term

    __slots__ = ("left", "right")

    def _fields(self) -> tuple:
        return (self.left, self.right)

    def _variables(self) -> FrozenSet[str]:
        names = set()
        if isinstance(self.left, Var):
            names.add(self.left.name)
        if isinstance(self.right, Var):
            names.add(self.right.name)
        return frozenset(names)

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True, eq=False)
class BoolVar(Formula):
    """A propositional variable used by boolean c-tables."""

    name: str

    __slots__ = ("name",)

    def _fields(self) -> tuple:
        return (self.name,)

    def _variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


def _ordered(left: Term, right: Term) -> "tuple[Term, Term]":
    return (left, right) if repr(left) <= repr(right) else (right, left)


def eq(left: object, right: object) -> Formula:
    """Build an equality atom between two terms with normalization.

    Identical terms fold to ``true``; distinct constants fold to
    ``false``; otherwise the atom is stored with a canonical term order so
    that ``eq(x, y) == eq(y, x)``.
    """
    left_term, right_term = as_term(left), as_term(right)
    if left_term == right_term:
        from repro.logic.syntax import TOP

        return TOP
    if isinstance(left_term, Const) and isinstance(right_term, Const):
        from repro.logic.syntax import BOTTOM, TOP

        return TOP if left_term.value == right_term.value else BOTTOM
    first, second = _ordered(left_term, right_term)
    return hashcons(Eq, first, second)


def ne(left: object, right: object) -> Formula:
    """Build a disequality, represented as a negated equality atom."""
    return neg(eq(left, right))


def boolvar(name: str) -> BoolVar:
    """Build a boolean variable atom through the interning table.

    Unlike the raw ``BoolVar(name)`` constructor (structural equality
    only), this returns the canonical node even when called from
    concurrent threads — table embeddings use it so conditions built
    during a threaded ``Session.register`` keep the identity invariant.
    """
    return cast(BoolVar, hashcons(BoolVar, name))


def atom_terms(atom: Formula) -> "tuple[Term, ...]":
    """Return the terms of an equality atom; raise for other formulas."""
    if isinstance(atom, Eq):
        return (atom.left, atom.right)
    raise ConditionError(f"not an equality atom: {atom!r}")


def is_boolean_condition(formula: Formula) -> bool:
    """Return True when every atom in *formula* is a :class:`BoolVar`.

    This is the well-formedness requirement for boolean c-table
    conditions.
    """
    from repro.logic.syntax import is_atom, walk

    return all(
        isinstance(node, BoolVar)
        for node in walk(formula)
        if is_atom(node)
    )


def is_equality_condition(formula: Formula) -> bool:
    """Return True when every atom in *formula* is an :class:`Eq` atom."""
    from repro.logic.syntax import is_atom, walk

    return all(isinstance(node, Eq) for node in walk(formula) if is_atom(node))
