"""Boolean and equality logic substrate.

c-table conditions (Imieliński–Lipski) are boolean combinations of
equalities between variables and constants; boolean c-tables use
propositional variables instead.  This package provides everything the
rest of the library needs to manipulate such conditions:

- :mod:`repro.logic.syntax` / :mod:`repro.logic.atoms` — immutable formula
  ASTs with smart constructors,
- :mod:`repro.logic.evaluation` — total and partial evaluation under
  valuations,
- :mod:`repro.logic.simplify` — negation normal form and algebraic
  simplification,
- :mod:`repro.logic.cnf` — clause-form conversion,
- :mod:`repro.logic.sat` — a DPLL SAT solver,
- :mod:`repro.logic.models` — satisfying-valuation enumeration over
  finite variable domains,
- :mod:`repro.logic.equality_sat` — small-model-property decision
  procedures for equality logic over an infinite domain,
- :mod:`repro.logic.bdd` — ordered binary decision diagrams with
  weighted model counting,
- :mod:`repro.logic.counting` — Shannon-expansion probability
  computation for formulas over multi-valued distributed variables.
"""

from repro.logic.atoms import BoolVar, Const, Eq, Term, Var, eq, ne
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    neg,
    BOTTOM,
    TOP,
)
from repro.logic.evaluation import evaluate, partial_evaluate, substitute
from repro.logic.simplify import nnf, simplify
from repro.logic.sat import Solver, is_satisfiable_clauses, solve_clauses
from repro.logic.models import enumerate_models, count_models
from repro.logic.equality_sat import (
    constants_of,
    equivalent_infinite,
    is_satisfiable_finite,
    is_satisfiable_infinite,
    is_valid_infinite,
    witness_domain,
)
from repro.logic.bdd import Bdd
from repro.logic.counting import probability

__all__ = [
    "And",
    "Bdd",
    "BoolVar",
    "Bottom",
    "BOTTOM",
    "Const",
    "Eq",
    "Formula",
    "Not",
    "Or",
    "Solver",
    "Term",
    "Top",
    "TOP",
    "Var",
    "conj",
    "constants_of",
    "count_models",
    "disj",
    "enumerate_models",
    "eq",
    "equivalent_infinite",
    "evaluate",
    "is_satisfiable_clauses",
    "is_satisfiable_finite",
    "is_satisfiable_infinite",
    "is_valid_infinite",
    "ne",
    "neg",
    "nnf",
    "partial_evaluate",
    "probability",
    "simplify",
    "solve_clauses",
    "substitute",
    "witness_domain",
]
