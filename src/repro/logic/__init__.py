"""Boolean and equality logic substrate.

c-table conditions (Imieliński–Lipski) are boolean combinations of
equalities between variables and constants; boolean c-tables use
propositional variables instead.  This package provides everything the
rest of the library needs to manipulate such conditions:

- :mod:`repro.logic.syntax` / :mod:`repro.logic.atoms` — immutable formula
  ASTs with smart constructors,
- :mod:`repro.logic.evaluation` — total and partial evaluation under
  valuations,
- :mod:`repro.logic.simplify` — negation normal form and algebraic
  simplification,
- :mod:`repro.logic.cnf` — clause-form conversion,
- :mod:`repro.logic.sat` — a DPLL SAT solver,
- :mod:`repro.logic.models` — satisfying-valuation enumeration over
  finite variable domains,
- :mod:`repro.logic.equality_sat` — small-model-property decision
  procedures for equality logic over an infinite domain,
- :mod:`repro.logic.bdd` — ordered binary decision diagrams with
  weighted model counting,
- :mod:`repro.logic.equivalence` — SAT- and BDD-backed condition
  equivalence (no world enumeration), cross-validated engines,
- :mod:`repro.logic.counting` — Shannon-expansion probability
  computation for formulas over multi-valued distributed variables.

Interning invariants
--------------------

Formula nodes are **hash-consed**: constructing a node with the same
class and structurally equal fields returns the *same object*.  The
resulting invariants, relied on across the library:

1. **Identity implies structural equality**, and for positionally
   constructed nodes the converse holds too — ``conj(a, b) is
   conj(a, b)`` — so equality checks short-circuit on ``is`` and
   dictionary keys dedupe for free.
2. **The smart constructors are the canonical entry points.**
   :func:`conj`, :func:`disj`, :func:`neg`, and :func:`eq` perform the
   always-safe normalizations (flattening, constant folding,
   deduplication, complement detection, double negation, term ordering)
   *and* intern; raw dataclass construction also interns but skips
   normalization, and is reserved for internal use.
3. **Nodes are immutable and analyses are cached per node**:
   ``atoms()``, ``variables()``, and the sorted-variable tuple are
   computed once; :func:`~repro.logic.evaluation.evaluate` and
   :func:`~repro.logic.evaluation.partial_evaluate` memoize on
   ``(node, relevant valuation slice)``; :func:`simplify`/:func:`nnf`
   visit each distinct sub-formula once.
4. **Interning is transparent.**  No public API changed signature or
   semantics; the intern table holds nodes weakly, so formulas are
   garbage-collected normally.
"""

from repro.logic.atoms import BoolVar, Const, Eq, Term, Var, eq, ne
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    interning_stats,
    neg,
    BOTTOM,
    TOP,
)
from repro.logic.evaluation import (
    clear_evaluation_caches,
    evaluate,
    evaluation_cache_stats,
    partial_evaluate,
    set_evaluation_cache,
    substitute,
)
from repro.logic.simplify import nnf, simplify
from repro.logic.sat import Solver, is_satisfiable_clauses, solve_clauses
from repro.logic.models import enumerate_models, count_models
from repro.logic.equality_sat import (
    constants_of,
    equivalent_infinite,
    is_satisfiable_finite,
    is_satisfiable_infinite,
    is_valid_infinite,
    witness_domain,
)
from repro.logic.bdd import Bdd
from repro.logic.counting import probability
from repro.logic.equivalence import (
    distinguishing_assignment,
    equivalent_conditions,
    is_contradiction,
    is_tautology,
    xor_condition,
)

__all__ = [
    "And",
    "Bdd",
    "BoolVar",
    "Bottom",
    "BOTTOM",
    "Const",
    "Eq",
    "Formula",
    "Not",
    "Or",
    "Solver",
    "Term",
    "Top",
    "TOP",
    "Var",
    "clear_evaluation_caches",
    "conj",
    "constants_of",
    "count_models",
    "disj",
    "distinguishing_assignment",
    "equivalent_conditions",
    "evaluation_cache_stats",
    "interning_stats",
    "set_evaluation_cache",
    "enumerate_models",
    "eq",
    "equivalent_infinite",
    "evaluate",
    "is_contradiction",
    "is_satisfiable_clauses",
    "is_satisfiable_finite",
    "is_satisfiable_infinite",
    "is_tautology",
    "is_valid_infinite",
    "ne",
    "neg",
    "nnf",
    "partial_evaluate",
    "probability",
    "simplify",
    "solve_clauses",
    "substitute",
    "witness_domain",
    "xor_condition",
]
