"""Clause-form (CNF) conversion for condition formulas.

Two converters are provided:

- :func:`to_cnf_clauses` — the classical distributive conversion, exact
  but potentially exponential; suitable for the small conditions produced
  by hand-written c-tables.
- :func:`tseitin_clauses` — the linear-size Tseitin transformation, which
  introduces fresh definition variables.  Equisatisfiable rather than
  equivalent, which is all the SAT interface needs.

Both emit clauses over *integer literals*: each atom is mapped to a
positive integer through an :class:`AtomMap`; a negative literal is the
negation of the corresponding atom.  This is the interface expected by
:mod:`repro.logic.sat`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.errors import ConditionError
from repro.logic.simplify import nnf
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    is_atom,
)

Clause = FrozenSet[int]


class AtomMap:
    """A bijection between atoms and positive integer SAT variables."""

    def __init__(self) -> None:
        self._by_atom: Dict[Formula, int] = {}
        self._by_index: Dict[int, Formula] = {}

    def index_of(self, atom: Formula) -> int:
        """Return the SAT variable for *atom*, allocating one if new."""
        index = self._by_atom.get(atom)
        if index is None:
            index = len(self._by_atom) + 1
            self._by_atom[atom] = index
            self._by_index[index] = atom
        return index

    def atom_of(self, index: int) -> Formula:
        """Return the atom registered under SAT variable *index*."""
        return self._by_index[index]

    def fresh(self) -> int:
        """Allocate a definition variable not tied to any atom."""
        index = len(self._by_atom) + 1
        # Reserve the slot with a unique placeholder so numbering advances.
        placeholder = ("__tseitin__", index)
        self._by_atom[placeholder] = index  # type: ignore[index]
        return index

    def __len__(self) -> int:
        return len(self._by_atom)

    def atoms(self) -> List[Formula]:
        """Return all registered genuine atoms (placeholders excluded)."""
        return [atom for atom in self._by_atom if isinstance(atom, Formula)]


def _literal(formula: Formula, atom_map: AtomMap) -> int:
    if isinstance(formula, Not):
        if not is_atom(formula.child):
            raise ConditionError("negation above non-atom in NNF literal")
        return -atom_map.index_of(formula.child)
    if is_atom(formula):
        return atom_map.index_of(formula)
    raise ConditionError(f"not a literal: {formula!r}")


def to_cnf_clauses(
    formula: Formula, atom_map: AtomMap | None = None
) -> Tuple[List[Clause], AtomMap]:
    """Convert *formula* to an equivalent clause list by distribution.

    Returns the clause list and the atom map.  ``true`` becomes the empty
    clause list; ``false`` becomes a single empty clause.
    """
    atom_map = atom_map if atom_map is not None else AtomMap()
    normal = nnf(formula)
    clause_sets = _cnf(normal, atom_map)
    return clause_sets, atom_map


def _cnf(formula: Formula, atom_map: AtomMap) -> List[Clause]:
    if isinstance(formula, Top):
        return []
    if isinstance(formula, Bottom):
        return [frozenset()]
    if is_atom(formula) or isinstance(formula, Not):
        return [frozenset({_literal(formula, atom_map)})]
    if isinstance(formula, And):
        clauses: List[Clause] = []
        for child in formula.children:
            clauses.extend(_cnf(child, atom_map))
        return clauses
    if isinstance(formula, Or):
        # Distribute: cross product of the children's clause lists.
        product: List[Clause] = [frozenset()]
        for child in formula.children:
            child_clauses = _cnf(child, atom_map)
            product = [
                existing | addition
                for existing in product
                for addition in child_clauses
            ]
            if not product:
                return []
        return product
    raise ConditionError(f"cannot convert {formula!r} to CNF")


def tseitin_clauses(
    formula: Formula, atom_map: AtomMap | None = None
) -> Tuple[List[Clause], AtomMap, int]:
    """Convert *formula* to equisatisfiable clauses via Tseitin encoding.

    Returns ``(clauses, atom_map, root_literal)``; the clause list asserts
    the root literal, so satisfiability of the clauses coincides with
    satisfiability of the formula's boolean skeleton.
    """
    atom_map = atom_map if atom_map is not None else AtomMap()
    clauses: List[Clause] = []
    root = _tseitin(nnf(formula), atom_map, clauses)
    clauses.append(frozenset({root}))
    return clauses, atom_map, root


def _tseitin(formula: Formula, atom_map: AtomMap, clauses: List[Clause]) -> int:
    if isinstance(formula, Top):
        fresh = atom_map.fresh()
        clauses.append(frozenset({fresh}))
        return fresh
    if isinstance(formula, Bottom):
        fresh = atom_map.fresh()
        clauses.append(frozenset({-fresh}))
        return fresh
    if is_atom(formula) or isinstance(formula, Not):
        return _literal(formula, atom_map)
    child_literals = [
        _tseitin(child, atom_map, clauses) for child in formula.children
    ]
    definition = atom_map.fresh()
    if isinstance(formula, And):
        # definition <-> AND(children)
        for literal in child_literals:
            clauses.append(frozenset({-definition, literal}))
        clauses.append(frozenset({definition, *(-lit for lit in child_literals)}))
        return definition
    # Or
    for literal in child_literals:
        clauses.append(frozenset({-literal, definition}))
    clauses.append(frozenset({-definition, *child_literals}))
    return definition
