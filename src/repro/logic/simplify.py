"""Negation normal form and algebraic simplification of conditions.

The smart constructors in :mod:`repro.logic.syntax` already perform the
cheap normalizations; this module adds the recursive passes used when
condition size matters (the c-table algebra composes conditions at every
operator, so projection-heavy query plans benefit from periodic
simplification; benchmark E08 measures the effect).
"""

from __future__ import annotations

from repro.logic.atoms import BoolVar, Eq
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    is_atom,
    neg,
)


def nnf(formula: Formula) -> Formula:
    """Rewrite *formula* into negation normal form.

    Negations are pushed down to the atoms using De Morgan's laws; the
    result contains ``Not`` only directly above atoms.  Interning makes
    shared sub-formulas a single node, so a per-call memo turns the pass
    into a single visit per distinct sub-formula.
    """
    return _nnf(formula, {})


def _nnf(formula: Formula, memo: dict) -> Formula:
    if isinstance(formula, (Top, Bottom)) or is_atom(formula):
        return formula
    cached = memo.get(formula)
    if cached is not None:
        return cached
    if isinstance(formula, And):
        result = conj(*(_nnf(child, memo) for child in formula.children))
    elif isinstance(formula, Or):
        result = disj(*(_nnf(child, memo) for child in formula.children))
    else:
        # formula is a negation: dispatch on what is underneath.
        child = formula.child
        if is_atom(child):
            result = formula
        elif isinstance(child, Not):
            result = _nnf(child.child, memo)
        elif isinstance(child, And):
            result = disj(*(_nnf(neg(grand), memo) for grand in child.children))
        elif isinstance(child, Or):
            result = conj(*(_nnf(neg(grand), memo) for grand in child.children))
        else:
            result = neg(_nnf(child, memo))
    memo[formula] = result
    return result


def simplify(formula: Formula) -> Formula:
    """Recursively simplify *formula*.

    Converts to NNF, then applies absorption (``a & (a | b) -> a`` and its
    dual) and re-runs the smart constructors bottom-up so that folds
    cascade.  This is a heuristic size reduction, not a canonical form;
    equivalence checking belongs to :mod:`repro.logic.equality_sat`.
    """
    return _absorb(nnf(formula), {})


def _absorb(formula: Formula, memo: dict) -> Formula:
    if isinstance(formula, (Top, Bottom)) or is_atom(formula):
        return formula
    cached = memo.get(formula)
    if cached is not None:
        return cached
    result = _absorb_uncached(formula, memo)
    memo[formula] = result
    return result


def _absorb_uncached(formula: Formula, memo: dict) -> Formula:
    if isinstance(formula, Not):
        return neg(_absorb(formula.child, memo))
    children = [_absorb(child, memo) for child in formula.children]
    if isinstance(formula, And):
        # a & (a | b)  ->  a: drop any disjunction containing another child.
        kept = []
        child_set = set(children)
        for child in children:
            if isinstance(child, Or) and any(
                grand in child_set for grand in child.children
            ):
                continue
            kept.append(child)
        return conj(*kept)
    # Or: a | (a & b) -> a.
    kept = []
    child_set = set(children)
    for child in children:
        if isinstance(child, And) and any(
            grand in child_set for grand in child.children
        ):
            continue
        kept.append(child)
    return disj(*kept)


def formula_size(formula: Formula) -> int:
    """Return the node count of *formula* (atoms, constants, connectives)."""
    if isinstance(formula, (Top, Bottom)) or is_atom(formula):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.child)
    return 1 + sum(formula_size(child) for child in formula.children)


def is_boolean_skeleton_literal(formula: Formula) -> bool:
    """Return True for an atom or a negated atom (an NNF literal)."""
    if isinstance(formula, (Eq, BoolVar)):
        return True
    return isinstance(formula, Not) and isinstance(formula.child, (Eq, BoolVar))
