"""Ordered binary decision diagrams with weighted model counting.

The probability of a boolean lineage formula under independent variable
probabilities — the computation at the heart of probabilistic c-table
query answering (Section 8 of the paper, and the tuple-probability
problem of Fuhr–Rölleke, Zimányi, and ProbView) — is linear in the size
of a BDD for the formula.  This module provides a small, classical,
hash-consed OBDD package:

- reduced, ordered, shared nodes (unique table),
- ``apply`` with memoization for conjunction/disjunction/negation,
- compilation from formula ASTs over :class:`~repro.logic.atoms.BoolVar`
  atoms,
- model counting and weighted model counting (probability evaluation).

Variable order is supplied by the caller; benchmark E18 measures how much
order matters versus naive enumeration.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConditionError
from repro.logic.atoms import BoolVar
from repro.logic.syntax import And, Bottom, Formula, Not, Or, Top

# Terminal node ids.
ZERO = 0
ONE = 1


class Bdd:
    """A shared BDD manager over a fixed variable order.

    Node ids are integers; 0 and 1 are the terminals.  Internal nodes are
    triples ``(level, low, high)`` interned in a unique table, where
    ``level`` indexes into the manager's variable order, ``low`` is the
    cofactor for the variable set to False and ``high`` for True.
    """

    def __init__(self, order: Sequence[str]) -> None:
        if len(set(order)) != len(order):
            raise ConditionError("BDD variable order contains duplicates")
        self._order: List[str] = list(order)
        self._level: Dict[str, int] = {
            name: index for index, name in enumerate(order)
        }
        self._nodes: List[Tuple[int, int, int]] = [
            (-1, -1, -1),  # placeholder for terminal 0
            (-1, -1, -1),  # placeholder for terminal 1
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def order(self) -> List[str]:
        """Return a copy of the variable order."""
        return list(self._order)

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """Return the BDD for a single variable."""
        level = self._level.get(name)
        if level is None:
            raise ConditionError(f"variable {name!r} is not in the BDD order")
        return self._make(level, ZERO, ONE)

    def true(self) -> int:
        """Return the terminal for ``true``."""
        return ONE

    def false(self) -> int:
        """Return the terminal for ``false``."""
        return ZERO

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def neg(self, node: int) -> int:
        """Return the complement of *node*."""
        cached = self._not_cache.get(node)
        if cached is not None:
            return cached
        if node == ZERO:
            result = ONE
        elif node == ONE:
            result = ZERO
        else:
            level, low, high = self._nodes[node]
            result = self._make(level, self.neg(low), self.neg(high))
        self._not_cache[node] = result
        return result

    def _apply(
        self, name: str, op: Callable[[int, int], Optional[int]], u: int, v: int
    ) -> int:
        key = (name, u, v)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        terminal = op(u, v)
        if terminal is not None:
            result = terminal
        else:
            u_level = self._nodes[u][0] if u > ONE else len(self._order)
            v_level = self._nodes[v][0] if v > ONE else len(self._order)
            level = min(u_level, v_level)
            u_low, u_high = (
                (self._nodes[u][1], self._nodes[u][2])
                if u_level == level
                else (u, u)
            )
            v_low, v_high = (
                (self._nodes[v][1], self._nodes[v][2])
                if v_level == level
                else (v, v)
            )
            result = self._make(
                level,
                self._apply(name, op, u_low, v_low),
                self._apply(name, op, u_high, v_high),
            )
        self._apply_cache[key] = result
        return result

    def conj(self, u: int, v: int) -> int:
        """Return the conjunction of two BDDs."""

        def op(a: int, b: int) -> Optional[int]:
            if a == ZERO or b == ZERO:
                return ZERO
            if a == ONE:
                return b
            if b == ONE:
                return a
            if a == b:
                return a
            return None

        return self._apply("and", op, u, v)

    def disj(self, u: int, v: int) -> int:
        """Return the disjunction of two BDDs."""

        def op(a: int, b: int) -> Optional[int]:
            if a == ONE or b == ONE:
                return ONE
            if a == ZERO:
                return b
            if b == ZERO:
                return a
            if a == b:
                return a
            return None

        return self._apply("or", op, u, v)

    # ------------------------------------------------------------------
    # Compilation from formulas
    # ------------------------------------------------------------------
    def from_formula(self, formula: Formula) -> int:
        """Compile a boolean-variable formula into a BDD node."""
        if isinstance(formula, Top):
            return ONE
        if isinstance(formula, Bottom):
            return ZERO
        if isinstance(formula, BoolVar):
            return self.var(formula.name)
        if isinstance(formula, Not):
            return self.neg(self.from_formula(formula.child))
        if isinstance(formula, And):
            node = ONE
            for child in formula.children:
                node = self.conj(node, self.from_formula(child))
                if node == ZERO:
                    return ZERO
            return node
        if isinstance(formula, Or):
            node = ZERO
            for child in formula.children:
                node = self.disj(node, self.from_formula(child))
                if node == ONE:
                    return ONE
            return node
        raise ConditionError(
            f"cannot compile non-boolean atom {formula!r} into a BDD; "
            "use repro.logic.counting.probability for equality conditions"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def restrict(self, node: int, name: str, value: bool) -> int:
        """Return the cofactor of *node* with variable *name* fixed."""
        level = self._level.get(name)
        if level is None:
            raise ConditionError(f"variable {name!r} is not in the BDD order")
        cache: Dict[int, int] = {}

        def go(current: int) -> int:
            if current <= ONE:
                return current
            cached = cache.get(current)
            if cached is not None:
                return cached
            node_level, low, high = self._nodes[current]
            if node_level > level:
                result = current
            elif node_level == level:
                result = high if value else low
            else:
                result = self._make(node_level, go(low), go(high))
            cache[current] = result
            return result

        return go(node)

    def size(self, node: int) -> int:
        """Return the number of distinct internal nodes reachable."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= ONE or current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return len(seen)

    def count_models(self, node: int) -> int:
        """Count assignments over the full order satisfying *node*."""
        total_levels = len(self._order)
        cache: Dict[int, int] = {}

        def go(current: int, level: int) -> int:
            if current == ZERO:
                return 0
            if current == ONE:
                return 2 ** (total_levels - level)
            key = current
            if key in cache:
                below = cache[key]
            else:
                node_level, low, high = self._nodes[current]
                below = go(low, node_level + 1) + go(high, node_level + 1)
                cache[key] = below
            node_level = self._nodes[current][0]
            return below * 2 ** (node_level - level)

        return go(node, 0)

    def probability(
        self, node: int, weights: Mapping[str, Fraction]
    ) -> Fraction:
        """Return P[node] when each variable is independently true.

        *weights* maps every variable in the order to its probability of
        being true; exact :class:`~fractions.Fraction` arithmetic keeps the
        theorem checks in the tests free of rounding concerns.
        """
        missing = [name for name in self._order if name not in weights]
        if missing:
            raise ConditionError(
                f"missing probabilities for variables: {missing}"
            )
        cache: Dict[int, Fraction] = {ZERO: Fraction(0), ONE: Fraction(1)}

        def go(current: int) -> Fraction:
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            weight = Fraction(weights[self._order[level]])
            result = (1 - weight) * go(low) + weight * go(high)
            cache[current] = result
            return result

        return go(node)

    def any_model(self, node: int) -> Optional[Dict[str, bool]]:
        """Return one satisfying assignment, or None for ``false``."""
        if node == ZERO:
            return None
        assignment: Dict[str, bool] = {}
        current = node
        while current != ONE:
            level, low, high = self._nodes[current]
            name = self._order[level]
            if low != ZERO:
                assignment[name] = False
                current = low
            else:
                assignment[name] = True
                current = high
        return assignment


def formula_to_bdd(
    formula: Formula, order: Optional[Sequence[str]] = None
) -> "Tuple[Bdd, int]":
    """Convenience: build a manager (sorted order by default) and compile.

    Returns the ``(manager, node)`` pair.
    """
    names = sorted(formula.variables()) if order is None else list(order)
    manager = Bdd(names)
    return manager, manager.from_formula(formula)
