"""Knowledge compilation: conditions → d-DNNF circuits via trace-recorded DPLL.

The probability terminals of the pc-table stack (Definition 13, Theorem 9:
"compute q̄(T), then read probabilities off conditions") reduce to weighted
model counting of condition formulas.  Shannon expansion and valuation
enumeration in :mod:`repro.logic.counting` are exponential in the number
of variables; this module compiles a condition **once** into a circuit in
*deterministic, decomposable negation normal form* (d-DNNF), on which
weighted model counting is a single linear-time pass
(:mod:`repro.prob.wmc`).

Pipeline
--------

1. **Booleanize** (:func:`booleanize`): a condition over multi-valued
   pc-table variables is translated into propositional logic over
   :class:`_Indicator` atoms — the one-hot encoding pc-tables already
   imply.  A variable with a two-value support uses a single proposition
   (``x = v₀`` / its negation); larger supports get one indicator per
   outcome plus exactly-one clauses.  Fixed (singleton-support) variables
   fold away entirely.
2. **Clausify**: the boolean formula goes through the existing Tseitin
   transformation (:func:`repro.logic.cnf.tseitin_clauses`).  The full
   biconditional encoding matters here: definition variables are
   *functionally determined* by the atom variables, so the CNF has
   exactly one model per model of the boolean formula and counting the
   CNF counts the formula.
3. **Compile** (:func:`compile_cnf`): an exhaustive DPLL whose trace is
   recorded as a circuit.  Unit propagation contributes AND-conjoined
   literal nodes (their variables provably vanish from the residual, so
   the AND is decomposable); connected components of the residual clause
   set compile independently (decomposable AND); branching on a variable
   contributes a two-child OR whose children disagree on that variable
   (deterministic OR).  Residual components are cached by their clause
   set, so isomorphic subproblems — ubiquitous in the chain/ring lineage
   shapes relational plans produce — compile once.  Pure-literal
   elimination, which :mod:`repro.logic.sat` uses, is deliberately
   **absent**: it preserves satisfiability but not model counts.

The resulting trace is *not smooth* (an OR child may mention fewer
variables than its sibling); :meth:`DDNNF.weighted_count` repairs this on
the fly with gap factors ``w(v) + w(¬v)`` per missing variable, which is
exact for arbitrary weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.errors import ConditionError
from repro.logic.atoms import BoolVar, Const, Eq, Var
from repro.logic.cnf import Clause, tseitin_clauses
from repro.obs.metrics import counter
from repro.obs.names import DDNNF_COMPILE_TOTAL, WMC_COUNT_TOTAL
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    hashcons,
    neg,
)

#: ``supports[x]`` is the tuple of outcomes variable ``x`` can take with
#: positive probability, in a deterministic (repr-sorted) order.
Supports = Mapping[str, Tuple[Hashable, ...]]


@dataclass(frozen=True, eq=False)
class _Indicator(Formula):
    """Propositional atom asserting that pc-table variable *name* = *value*.

    Interned like every other atom (:func:`indicator`), so booleanized
    conditions share structure with each other and with the cache keys of
    the engine's circuit cache.
    """

    name: str
    value: Hashable

    __slots__ = ("name", "value")

    def _fields(self) -> tuple:
        return (self.name, self.value)

    def _variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"[{self.name}={self.value!r}]"


def indicator(name: str, value: Hashable) -> Formula:
    """Return the canonical indicator atom for ``name = value``."""
    return hashcons(_Indicator, name, value)


def indicator_fields(atom: Formula) -> Optional[Tuple[str, Hashable]]:
    """Return ``(variable, value)`` for an indicator atom, else ``None``.

    The weighted-model-counting layer uses this to recognize which CNF
    variables encode pc-table outcomes (and must be weighted from the
    distributions) versus Tseitin definitions (weighted ``(1, 1)``).
    """
    if isinstance(atom, _Indicator):
        return (atom.name, atom.value)
    return None


# ---------------------------------------------------------------------------
# Booleanization: multi-valued conditions → propositional formulas
# ---------------------------------------------------------------------------


def _takes(name: str, value: Hashable, supports: Supports) -> Formula:
    """Translate the assertion ``name = value`` under *supports*.

    Singleton supports fold to a constant; two-value supports use one
    proposition and its negation (no exactly-one clauses needed, and the
    weight pair ``(p(v₀), p(v₁))`` sums to 1 so smoothing gaps are free);
    larger supports use the one-hot indicator for *value*.
    """
    try:
        support = supports[name]
    except KeyError:
        raise ConditionError(
            f"no distribution covers condition variable {name!r}"
        ) from None
    if value not in support:
        return BOTTOM
    if len(support) == 1:
        return TOP
    if len(support) == 2:
        base = indicator(name, support[0])
        return base if value == support[0] else neg(base)
    return indicator(name, value)


def _support_of(name: str, supports: Supports) -> Tuple[Hashable, ...]:
    try:
        return supports[name]
    except KeyError:
        raise ConditionError(
            f"no distribution covers condition variable {name!r}"
        ) from None


def booleanize(formula: Formula, supports: Supports) -> Formula:
    """Translate *formula* into propositional logic over indicator atoms.

    Equalities between a variable and a constant become ``_takes``;
    equalities between two variables expand over the intersection of
    their supports; a :class:`BoolVar` is the disjunction of its truthy
    outcomes (matching the truthiness semantics of
    :func:`repro.logic.evaluation.evaluate`).  The translation is exact:
    a valuation drawn from the supports satisfies *formula* iff its
    indicator image satisfies the result.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return neg(booleanize(formula.child, supports))
    if isinstance(formula, And):
        return conj(*(booleanize(child, supports) for child in formula.children))
    if isinstance(formula, Or):
        return disj(*(booleanize(child, supports) for child in formula.children))
    if isinstance(formula, BoolVar):
        return disj(
            *(
                _takes(formula.name, value, supports)
                for value in _support_of(formula.name, supports)
                if bool(value)
            )
        )
    if isinstance(formula, Eq):
        left, right = formula.left, formula.right
        if isinstance(left, Const) and isinstance(right, Var):
            left, right = right, left
        if isinstance(left, Var) and isinstance(right, Const):
            return _takes(left.name, right.value, supports)
        if isinstance(left, Var) and isinstance(right, Var):
            right_support = set(_support_of(right.name, supports))
            return disj(
                *(
                    conj(
                        _takes(left.name, value, supports),
                        _takes(right.name, value, supports),
                    )
                    for value in _support_of(left.name, supports)
                    if value in right_support
                )
            )
        # Const = Const only reaches here through raw construction; the
        # smart constructor folds it.
        left_const = cast(Const, left)
        right_const = cast(Const, right)
        return TOP if left_const.value == right_const.value else BOTTOM
    raise ConditionError(f"cannot booleanize atom {formula!r}")


# ---------------------------------------------------------------------------
# d-DNNF circuit nodes
# ---------------------------------------------------------------------------


class DNode:
    """Base class of d-DNNF circuit nodes.

    ``scope`` is the set of CNF variables the subcircuit depends on —
    the smoothing pass in :meth:`DDNNF.weighted_count` compares child
    scopes against their parents to find the variables it must repair.
    """

    __slots__ = ("scope",)

    scope: FrozenSet[int]


class DTrue(DNode):
    """The constant-true circuit (one model over an empty scope)."""

    __slots__ = ()

    def __init__(self) -> None:
        self.scope = frozenset()

    def __repr__(self) -> str:
        return "dtrue"


class DFalse(DNode):
    """The constant-false circuit (zero models)."""

    __slots__ = ()

    def __init__(self) -> None:
        self.scope = frozenset()

    def __repr__(self) -> str:
        return "dfalse"


D_TRUE = DTrue()
D_FALSE = DFalse()


class DLit(DNode):
    """A literal node: CNF variable ``abs(literal)`` with its sign."""

    __slots__ = ("literal",)

    def __init__(self, literal: int) -> None:
        self.literal = literal
        self.scope = frozenset({abs(literal)})

    def __repr__(self) -> str:
        return f"lit({self.literal})"


class DAnd(DNode):
    """Decomposable conjunction: children have pairwise disjoint scopes."""

    __slots__ = ("children",)

    def __init__(self, children: Tuple[DNode, ...]) -> None:
        self.children = children
        self.scope = frozenset().union(*(child.scope for child in children))

    def __repr__(self) -> str:
        return f"and({len(self.children)})"


class DOr(DNode):
    """Deterministic disjunction: children are mutually exclusive.

    Built only from the two branches of a DPLL decision, which disagree
    on the decision variable, so determinism holds by construction.
    """

    __slots__ = ("children",)

    def __init__(self, children: Tuple[DNode, ...]) -> None:
        self.children = children
        self.scope = frozenset().union(*(child.scope for child in children))

    def __repr__(self) -> str:
        return f"or({len(self.children)})"


def _dand(children: Sequence[DNode]) -> DNode:
    """AND-combine *children*, flattening and folding constants."""
    flat: List[DNode] = []
    for child in children:
        if isinstance(child, DFalse):
            return D_FALSE
        if isinstance(child, DTrue):
            continue
        if isinstance(child, DAnd):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return D_TRUE
    if len(flat) == 1:
        return flat[0]
    return DAnd(tuple(flat))


# ---------------------------------------------------------------------------
# The compiler: exhaustive DPLL with a recorded trace
# ---------------------------------------------------------------------------


def _propagate(
    clauses: FrozenSet[Clause],
) -> Tuple[Optional[FrozenSet[Clause]], List[int]]:
    """Run unit propagation to fixpoint.

    Returns ``(residual, implied_literals)``; residual is ``None`` on
    conflict.  Every implied variable is eliminated from the residual,
    which is what makes the caller's AND of literal nodes decomposable.
    """
    current: Set[Clause] = set(clauses)
    implied: List[int] = []
    if frozenset() in current:
        return None, implied
    while True:
        unit = next((clause for clause in current if len(clause) == 1), None)
        if unit is None:
            return frozenset(current), implied
        literal = next(iter(unit))
        implied.append(literal)
        reduced: Set[Clause] = set()
        for clause in current:
            if literal in clause:
                continue
            if -literal in clause:
                clause = clause - {-literal}
                if not clause:
                    return None, implied
            reduced.add(clause)
        current = reduced


def _components(clauses: FrozenSet[Clause]) -> List[FrozenSet[Clause]]:
    """Partition *clauses* into connected components (shared variables)."""
    remaining = list(clauses)
    by_variable: Dict[int, List[int]] = {}
    for position, clause in enumerate(remaining):
        for literal in clause:
            by_variable.setdefault(abs(literal), []).append(position)
    seen: Set[int] = set()
    components: List[FrozenSet[Clause]] = []
    for start in range(len(remaining)):
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        member_positions: List[int] = []
        while stack:
            position = stack.pop()
            member_positions.append(position)
            for literal in remaining[position]:
                for neighbor in by_variable[abs(literal)]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        components.append(frozenset(remaining[p] for p in member_positions))
    return components


def _branch_variable(clauses: FrozenSet[Clause]) -> int:
    """Pick the lowest-index variable occurring in the residual.

    The static order matters more than any dynamic score here: CNF
    variables are numbered in formula order by Tseitin clausification,
    so min-index branching sweeps the condition structurally — and
    residuals left behind by different branches of the sweep *coincide*
    whenever the formula has bounded interaction width (chains, rings,
    lineages of localized queries).  The residual-keyed cache then turns
    the trace into a transfer-matrix pass: linear in the sweep, not
    ``2^variables``.  A dynamic most-frequent-variable score was
    measurably catastrophic on exactly the shapes this compiler exists
    for — it jumps around the formula, every jump fragments the ring
    into differently-keyed arc residuals, and the cache never hits
    (>100s for the 60-variable ring of benchmark E37 vs ~0.1s with the
    static order).
    """
    return min(abs(literal) for clause in clauses for literal in clause)


def _compile(
    clauses: FrozenSet[Clause], cache: Dict[FrozenSet[Clause], DNode]
) -> DNode:
    residual, implied = _propagate(clauses)
    if residual is None:
        return D_FALSE
    prefix: List[DNode] = [DLit(literal) for literal in implied]
    if not residual:
        return _dand(prefix)
    node = cache.get(residual)
    if node is None:
        components = _components(residual)
        if len(components) > 1:
            node = _dand([_compile(component, cache) for component in components])
        else:
            variable = _branch_variable(residual)
            positive = _compile(
                residual | {frozenset({variable})}, cache
            )
            negative = _compile(
                residual | {frozenset({-variable})}, cache
            )
            branches = tuple(
                branch
                for branch in (positive, negative)
                if not isinstance(branch, DFalse)
            )
            if not branches:
                node = D_FALSE
            elif len(branches) == 1:
                node = branches[0]
            else:
                node = DOr(branches)
        cache[residual] = node
    if isinstance(node, DFalse):
        return D_FALSE
    return _dand(prefix + [node])


def compile_cnf(clauses: Iterable[Clause], num_vars: int) -> "DDNNF":
    """Compile a CNF into a d-DNNF circuit counting over *num_vars* variables."""
    counter(DDNNF_COMPILE_TOTAL)
    cache: Dict[FrozenSet[Clause], DNode] = {}
    root = _compile(frozenset(clauses), cache)
    return DDNNF(root, num_vars)


# ---------------------------------------------------------------------------
# The compiled artifact
# ---------------------------------------------------------------------------


class DDNNF:
    """A compiled circuit plus the variable universe it counts over.

    Model counts and weighted counts are taken over **all** ``num_vars``
    CNF variables: a variable outside the circuit's scope is free, and
    smoothing multiplies in its gap factor ``w(v) + w(¬v)`` (which is
    ``2`` for unweighted counting).  This matches
    :meth:`repro.logic.bdd.Bdd.count_models`, which also counts over its
    full variable order.
    """

    __slots__ = ("root", "num_vars")

    def __init__(self, root: DNode, num_vars: int) -> None:
        self.root = root
        self.num_vars = num_vars

    def size(self) -> int:
        """Return the number of distinct nodes in the circuit DAG."""
        seen: Set[int] = set()
        stack: List[DNode] = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, (DAnd, DOr)):
                stack.extend(node.children)
        return len(seen)

    def model_count(self) -> int:
        """Count satisfying assignments over all ``num_vars`` variables."""
        one = Fraction(1)
        weights = {v: one for v in range(1, self.num_vars + 1)}
        count = self.weighted_count(weights, weights)
        return int(count)

    def weighted_count(
        self,
        pos: Mapping[int, Fraction],
        neg: Mapping[int, Fraction],
    ) -> Fraction:
        """Exact weighted model count with on-the-fly smoothing.

        *pos*/*neg* map every CNF variable to the weight of its positive
        and negative literal.  The count is over complete assignments to
        all ``num_vars`` variables; a variable missing from a branch's
        scope (the trace is not smooth) contributes its gap factor
        ``pos[v] + neg[v]`` exactly once per assignment family, which is
        correct for arbitrary weights — not only probability pairs that
        sum to 1.
        """
        counter(WMC_COUNT_TOTAL)
        total: Dict[int, Fraction] = {
            v: pos[v] + neg[v] for v in range(1, self.num_vars + 1)
        }
        memo: Dict[int, Fraction] = {}

        def value(node: DNode) -> Fraction:
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            result: Fraction
            if isinstance(node, DTrue):
                result = Fraction(1)
            elif isinstance(node, DFalse):
                result = Fraction(0)
            elif isinstance(node, DLit):
                variable = abs(node.literal)
                result = pos[variable] if node.literal > 0 else neg[variable]
            elif isinstance(node, DAnd):
                result = Fraction(1)
                for child in node.children:
                    result *= value(child)
            elif isinstance(node, DOr):
                result = Fraction(0)
                for child in node.children:
                    term = value(child)
                    for variable in node.scope - child.scope:
                        term *= total[variable]
                    result += term
            else:  # pragma: no cover - closed node hierarchy
                raise ConditionError(f"unknown circuit node {node!r}")
            memo[id(node)] = result
            return result

        count = value(self.root)
        for variable in range(1, self.num_vars + 1):
            if variable not in self.root.scope:
                count *= total[variable]
        return count


class CompiledCircuit:
    """A condition compiled end to end: circuit + encoding metadata.

    ``var_atom`` maps each CNF variable that encodes a genuine atom
    (indicator or boolean proposition) back to that atom; Tseitin
    definition variables are absent from it.  :mod:`repro.prob.wmc`
    uses the map to assign literal weights from the distributions.
    """

    __slots__ = ("circuit", "var_atom", "supports")

    def __init__(
        self,
        circuit: DDNNF,
        var_atom: Dict[int, Formula],
        supports: Dict[str, Tuple[Hashable, ...]],
    ) -> None:
        self.circuit = circuit
        self.var_atom = var_atom
        self.supports = supports


def compile_formula(formula: Formula) -> CompiledCircuit:
    """Compile a pure-boolean condition, one CNF variable per atom.

    Every atom is treated as an independent two-valued proposition —
    the reading under which d-DNNF model counts must agree with
    :meth:`repro.logic.bdd.Bdd.count_models` over the same variables.
    The counting universe is anchored to *every* atom of the formula:
    Tseitin clausification may simplify an atom away entirely (e.g. in
    ``~(e & ~(c | e))``, which is valid), and an eliminated atom must
    still count as a free variable — smoothing multiplies its gap
    factor in, which is ``2`` for model counts and ``1`` for
    probability weights.
    """
    clauses, atom_map, _root = tseitin_clauses(formula)
    for atom in sorted(formula.atoms(), key=repr):
        atom_map.index_of(atom)  # allocate atoms simplification removed
    var_atom = {
        atom_map.index_of(atom): atom for atom in atom_map.atoms()
    }
    circuit = compile_cnf(clauses, len(atom_map))
    return CompiledCircuit(circuit, var_atom, {})


def compile_condition(formula: Formula, supports: Supports) -> CompiledCircuit:
    """Compile a (possibly multi-valued) condition under *supports*.

    The condition is booleanized, Tseitin-clausified, extended with
    exactly-one clauses for every referenced one-hot group, and compiled
    to d-DNNF.  The returned metadata carries enough structure for
    :mod:`repro.prob.wmc` to weight literals from the distributions.
    """
    boolean = booleanize(formula, supports)
    clauses, atom_map, _root = tseitin_clauses(boolean)
    used_supports: Dict[str, Tuple[Hashable, ...]] = {}
    for atom in sorted(boolean.atoms(), key=repr):
        if isinstance(atom, _Indicator):
            used_supports[atom.name] = tuple(supports[atom.name])
    for name, support in used_supports.items():
        if len(support) <= 2:
            continue
        group = [
            atom_map.index_of(indicator(name, value)) for value in support
        ]
        clauses.append(frozenset(group))
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                clauses.append(frozenset({-group[i], -group[j]}))
    var_atom = {
        atom_map.index_of(atom): atom for atom in atom_map.atoms()
    }
    circuit = compile_cnf(clauses, len(atom_map))
    return CompiledCircuit(circuit, var_atom, used_supports)
