"""A DPLL SAT solver over integer-literal clauses.

The solver implements the classic Davis–Putnam–Logemann–Loveland
procedure with unit propagation, pure-literal elimination, and a
most-frequent-variable branching heuristic.  It is deliberately simple
and dependency-free: conditions in this library rarely exceed a few
hundred atoms, and the small-model equality procedure in
:mod:`repro.logic.equality_sat` bounds the instances further.

The clause format matches :mod:`repro.logic.cnf`: a clause is a frozenset
of non-zero integers, where ``-v`` is the negation of variable ``v``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.obs.metrics import counter
from repro.obs.names import (
    DPLL_RECURSIONS_TOTAL,
    SAT_ENUMERATE_TOTAL,
    SAT_SOLVE_TOTAL,
)

Clause = FrozenSet[int]
Assignment = Dict[int, bool]


class Solver:
    """A reusable DPLL solver instance.

    The class is stateless between calls; it exists so callers can hold a
    configured solver (e.g. with a custom branching heuristic) and to make
    room for future incremental interfaces.
    """

    def solve(self, clauses: Iterable[Clause]) -> Optional[Assignment]:
        """Return a satisfying assignment, or None when unsatisfiable.

        The returned assignment covers every variable occurring in the
        clauses (unconstrained variables default to False).
        """
        counter(SAT_SOLVE_TOTAL)
        clause_list = [frozenset(clause) for clause in clauses]
        variables = {abs(lit) for clause in clause_list for lit in clause}
        assignment = _dpll(clause_list, {})
        if assignment is None:
            return None
        for variable in variables:
            assignment.setdefault(variable, False)
        return assignment

    def enumerate(self, clauses: Iterable[Clause]) -> Iterator[Assignment]:
        """Yield every satisfying total assignment (over mentioned vars).

        Enumeration proceeds by solving, then blocking the found model and
        re-solving; fine for the small counts the tests need.
        """
        counter(SAT_ENUMERATE_TOTAL)
        clause_list: List[Clause] = [frozenset(clause) for clause in clauses]
        variables = sorted(
            {abs(lit) for clause in clause_list for lit in clause}
        )
        while True:
            model = self.solve(clause_list)
            if model is None:
                return
            yield dict(model)
            blocking = frozenset(
                -variable if model[variable] else variable
                for variable in variables
            )
            if not blocking:
                return
            clause_list.append(blocking)


def _unit_propagate(
    clauses: List[Clause], assignment: Assignment
) -> Optional[List[Clause]]:
    """Apply an assignment and propagate unit clauses; None on conflict."""
    changed = True
    current = clauses
    while changed:
        changed = False
        next_clauses: List[Clause] = []
        for clause in current:
            resolved = False
            remaining: List[int] = []
            for literal in clause:
                variable, wanted = abs(literal), literal > 0
                if variable in assignment:
                    if assignment[variable] == wanted:
                        resolved = True
                        break
                else:
                    remaining.append(literal)
            if resolved:
                continue
            if not remaining:
                return None
            if len(remaining) == 1:
                literal = remaining[0]
                assignment[abs(literal)] = literal > 0
                changed = True
            else:
                next_clauses.append(frozenset(remaining))
        current = next_clauses
    return current


def _pure_literals(clauses: List[Clause]) -> Dict[int, bool]:
    polarity: Dict[int, set] = {}
    for clause in clauses:
        for literal in clause:
            polarity.setdefault(abs(literal), set()).add(literal > 0)
    return {
        variable: signs.pop()
        for variable, signs in polarity.items()
        if len(signs) == 1
    }


def _choose_variable(clauses: List[Clause]) -> int:
    counts = Counter(abs(literal) for clause in clauses for literal in clause)
    return counts.most_common(1)[0][0]


def _dpll(clauses: List[Clause], assignment: Assignment) -> Optional[Assignment]:
    counter(DPLL_RECURSIONS_TOTAL)
    assignment = dict(assignment)
    simplified = _unit_propagate(list(clauses), assignment)
    if simplified is None:
        return None
    pure = _pure_literals(simplified)
    if pure:
        assignment.update(pure)
        simplified = [
            clause
            for clause in simplified
            if not any(
                abs(literal) in pure and pure[abs(literal)] == (literal > 0)
                for literal in clause
            )
        ]
    if not simplified:
        return assignment
    variable = _choose_variable(simplified)
    for choice in (True, False):
        attempt = dict(assignment)
        attempt[variable] = choice
        result = _dpll(simplified, attempt)
        if result is not None:
            return result
    return None


def solve_clauses(clauses: Iterable[Clause]) -> Optional[Assignment]:
    """Module-level convenience wrapper around :meth:`Solver.solve`."""
    return Solver().solve(clauses)


def is_satisfiable_clauses(clauses: Iterable[Clause]) -> bool:
    """Return True when the clause set has at least one model."""
    return solve_clauses(clauses) is not None
