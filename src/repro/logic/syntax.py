"""Immutable, hash-consed formula ASTs for c-table conditions.

The grammar is the classical propositional one, over an open-ended set of
atoms (equality atoms and boolean variables live in
:mod:`repro.logic.atoms`)::

    phi ::= true | false | atom | NOT phi | AND(phi...) | OR(phi...)

Formulas are immutable, hashable values.  The smart constructors
:func:`conj`, :func:`disj` and :func:`neg` perform the cheap, always-safe
normalizations (flattening nested connectives, folding ``true``/``false``,
deduplicating children, and double-negation elimination) so that formulas
built by the c-table algebra stay small without a separate rewrite pass.

Interning (hash-consing)
------------------------

Every operator of the lifted c-table algebra composes conditions, so the
same sub-formulas are rebuilt over and over along a query plan.  The
smart constructors therefore *intern* the nodes they produce in a global
weak table: building the same connective over the same children twice
returns the **same object**.  The invariants are:

- **identity implies structural equality** — and for nodes built through
  the smart constructors, structural equality implies identity too, so
  ``a == b`` short-circuits to a pointer comparison on the hot path;
- **hashes are computed once per node** and cached, so hashing a deep
  formula built bottom-up is O(1) amortized per construction;
- **analyses are cached per node**: :meth:`Formula.atoms`,
  :meth:`Formula.variables` and the sorted-variable tuple used by the
  evaluation cache are computed once and reused by every table, operator,
  and world enumeration that touches the node;
- the raw dataclass constructors (``Not(x)``, ``And((a, b))``, …) remain
  usable and produce nodes that compare *structurally* equal to interned
  ones — interning is a transparent optimization, never a semantic
  requirement.

Deliberately *not* done here: anything requiring satisfiability reasoning.
That lives in :mod:`repro.logic.simplify` and
:mod:`repro.logic.equality_sat`.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Tuple

#: Structural key ``(class, fields)`` -> live node.  Values are weakly
#: referenced so a long-running process does not accumulate every formula
#: it ever built; keys hold the children, which are themselves alive
#: while any parent is.
_INTERN_TABLE: "weakref.WeakValueDictionary" = (  # guarded-by: _INTERN_LOCK [writes]
    weakref.WeakValueDictionary()
)

#: Serializes the construct-and-insert miss path of :func:`hashcons`.
#: Without it, two threads racing to build the same formula could both
#: miss the table and each return a *different* object for one structural
#: formula — breaking the "structural equality implies identity"
#: invariant that the morsel-parallel executor (and every ``is``-based
#: memo) relies on.  Hits stay lock-free: once a canonical node is in the
#: table it is never replaced while referenced, so a stale read can only
#: return the canonical object.
#:
#: Scope: the guarantee covers nodes built through :func:`hashcons` (the
#: smart constructors, :func:`repro.logic.atoms.eq`/``boolvar``, …).
#: Raw dataclass construction (``BoolVar("b0")``, ``And((a, b))``)
#: bypasses the lock and keeps its documented weaker contract —
#: structural equality, identity best-effort — so threaded code that
#: needs identity must build through the smart constructors.
_INTERN_LOCK = threading.Lock()


class _Counters:
    """Hit/miss tallies owned by exactly one thread (no shared writes)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0


_COUNTERS_LOCK = threading.Lock()

#: Every thread's private counter object, for aggregation.  The interning
#: hot path increments only its own thread's object, so the counters stay
#: exact without taking a lock per formula construction (the previous
#: module-global ints lost increments under concurrent morsel workers).
#: Entries of finished threads are kept: their tallies remain part of the
#: process totals.
_ALL_COUNTERS: list = []  # guarded-by: _COUNTERS_LOCK


class _LocalCounters(threading.local):
    """Thread-local handle; registers each thread's counters globally."""

    def __init__(self) -> None:
        self.counters = _Counters()
        with _COUNTERS_LOCK:
            _ALL_COUNTERS.append(self.counters)


_LOCAL = _LocalCounters()


class Formula:
    """Base class of all condition formulas.

    Subclasses are frozen dataclasses (with ``eq=False``: equality and
    hashing are implemented here, with an identity fast path and a cached
    hash).  Two syntactically identical conditions compare equal and are
    a single dictionary key; conditions built via the smart constructors
    are additionally a single *object*.  Python operators are overloaded
    for readability: ``a & b``, ``a | b`` and ``~a`` build conjunction,
    disjunction and negation through the smart constructors.
    """

    __slots__ = (
        "_hash",
        "_atoms",
        "_vars",
        "_svars",
        "_ememo",
        "_pmemo",
        "__weakref__",
    )

    def __new__(cls, *fields: object, **kwfields: object) -> "Formula":
        # Hash-consing: positional construction of an already-known node
        # returns the canonical instance (its fields are then re-assigned
        # to equal values by the dataclass __init__, which is harmless).
        counters = _LOCAL.counters
        if not kwfields:
            node = _INTERN_TABLE.get((cls, fields))
            if node is not None:
                counters.hits += 1
                return node
        counters.misses += 1
        return object.__new__(cls)

    def __post_init__(self) -> None:
        # unguarded-ok: raw constructors keep the weaker best-effort
        # identity contract; setdefault is atomic, so the canonical node
        # is never displaced — a racing raw build just isn't it.
        _INTERN_TABLE.setdefault((self.__class__, self._fields()), self)

    def _fields(self) -> tuple:
        """Return the structural fields, matching the constructor args."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._fields() == other._fields()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((self.__class__, self._fields()))
            object.__setattr__(self, "_hash", value)
            return value

    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)

    def atoms(self) -> FrozenSet["Formula"]:
        """Return the set of atoms occurring in this formula (cached)."""
        try:
            return self._atoms
        except AttributeError:
            pass
        if isinstance(self, (Top, Bottom)):
            result: FrozenSet[Formula] = frozenset()
        elif isinstance(self, Not):
            result = self.child.atoms()
        elif isinstance(self, (And, Or)):
            result = frozenset().union(*(c.atoms() for c in self.children))
        else:
            result = frozenset({self})
        object.__setattr__(self, "_atoms", result)
        return result

    def variables(self) -> FrozenSet[str]:
        """Return the names of all variables in this formula (cached)."""
        try:
            return self._vars
        except AttributeError:
            pass
        if isinstance(self, (Top, Bottom)):
            result: FrozenSet[str] = frozenset()
        elif isinstance(self, Not):
            result = self.child.variables()
        elif isinstance(self, (And, Or)):
            result = frozenset().union(
                *(c.variables() for c in self.children)
            )
        else:
            collect = getattr(self, "_variables", None)
            result = collect() if collect is not None else frozenset()
        object.__setattr__(self, "_vars", result)
        return result

    def sorted_variables(self) -> Tuple[str, ...]:
        """Return the variable names sorted, cached per node.

        The evaluation cache keys on the values a valuation assigns to
        exactly these names, in exactly this order.
        """
        try:
            return self._svars
        except AttributeError:
            result = tuple(sorted(self.variables()))
            object.__setattr__(self, "_svars", result)
            return result


@dataclass(frozen=True, eq=False)
class Top(Formula):
    """The always-true condition (the paper's unconditioned tuples)."""

    __slots__ = ()

    def _fields(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, eq=False)
class Bottom(Formula):
    """The always-false condition (tuples that never appear)."""

    __slots__ = ()

    def _fields(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "false"


TOP = Top()
BOTTOM = Bottom()


@dataclass(frozen=True, eq=False)
class Not(Formula):
    """Negation of a sub-formula."""

    child: Formula

    __slots__ = ("child",)

    def _fields(self) -> tuple:
        return (self.child,)

    def __repr__(self) -> str:
        return f"~{self.child!r}" if is_atom(self.child) else f"~({self.child!r})"


@dataclass(frozen=True, eq=False)
class And(Formula):
    """Conjunction over a non-empty tuple of children.

    Construct through :func:`conj`; the raw constructor performs no
    normalization and is reserved for internal use.
    """

    children: Tuple[Formula, ...]

    __slots__ = ("children",)

    def _fields(self) -> tuple:
        return (self.children,)

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True, eq=False)
class Or(Formula):
    """Disjunction over a non-empty tuple of children.

    Construct through :func:`disj`.
    """

    children: Tuple[Formula, ...]

    __slots__ = ("children",)

    def _fields(self) -> tuple:
        return (self.children,)

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(c) for c in self.children) + ")"


def hashcons(cls: type, *fields: object) -> Formula:
    """Return the canonical node ``cls(*fields)``, creating it if needed.

    Plain positional construction is equivalent (``Formula.__new__``
    consults the intern table itself), but this entry point returns a hit
    without re-entering the dataclass ``__init__``, so the smart
    constructors pay only a dictionary probe on the hot path.

    The miss path re-checks under :data:`_INTERN_LOCK` before
    constructing, so concurrent builders of one structural formula all
    receive the same canonical object (morsel workers compose conditions
    concurrently).
    """
    counters = _LOCAL.counters
    node = _INTERN_TABLE.get((cls, fields))
    if node is not None:
        counters.hits += 1
        return node
    with _INTERN_LOCK:
        node = _INTERN_TABLE.get((cls, fields))
        if node is not None:
            counters.hits += 1
            return node
        return cls(*fields)


def interning_stats() -> dict:
    """Return live-size and hit/miss counters of the intern table.

    Hits/misses are summed over every thread's private counters, so the
    totals are exact even with concurrent morsel workers interning.
    """
    with _COUNTERS_LOCK:
        hits = sum(counters.hits for counters in _ALL_COUNTERS)
        misses = sum(counters.misses for counters in _ALL_COUNTERS)
    return {
        "live_nodes": len(_INTERN_TABLE),
        "hits": hits,
        "misses": misses,
    }


def is_interned(formula: Formula) -> bool:
    """True when *formula* is the canonical node for its structure.

    Nodes built through the smart constructors (or positional raw
    construction) are canonical; a node can fail this check only when it
    was built around the intern table — e.g. keyword-argument dataclass
    construction racing an existing canonical node.  The plan verifier
    uses this to certify the "structural equality ⇒ identity" invariant
    the morsel-parallel executor depends on.
    """
    return _INTERN_TABLE.get((formula.__class__, formula._fields())) is formula


def is_atom(formula: Formula) -> bool:
    """Return True when *formula* is an atom (not a connective/constant)."""
    return not isinstance(formula, (Top, Bottom, Not, And, Or))


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield every sub-formula of *formula*, including itself (pre-order).

    Children are visited left to right, so the order matches the formula
    as written (and as rendered by ``repr``).
    """
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Not):
            stack.append(node.child)
        elif isinstance(node, (And, Or)):
            stack.extend(reversed(node.children))


def _flatten(kind: type, formulas: Iterable[Formula]) -> Iterator[Formula]:
    for formula in formulas:
        if isinstance(formula, kind):
            yield from formula.children
        else:
            yield formula


def _complemented(seen: list, seen_set: set) -> bool:
    """True when *seen* contains some phi together with ~phi.

    Every complemented pair contains a ``Not`` whose child is also a
    sibling, so one set intersection finds all of them without allocating
    a negation per child.
    """
    negated = {f.child for f in seen if isinstance(f, Not)}
    return bool(negated) and not negated.isdisjoint(seen_set)


def conj(*formulas: Formula) -> Formula:
    """Build the conjunction of *formulas* with light normalization.

    Flattens nested conjunctions, drops ``true``, short-circuits on
    ``false``, deduplicates syntactically equal children, and detects the
    shallow contradiction ``phi & ~phi``.  An empty conjunction is ``true``.
    """
    seen: list = []
    seen_set: set = set()
    for formula in _flatten(And, formulas):
        if isinstance(formula, Bottom):
            return BOTTOM
        if isinstance(formula, Top) or formula in seen_set:
            continue
        seen.append(formula)
        seen_set.add(formula)
    if _complemented(seen, seen_set):
        return BOTTOM
    if not seen:
        return TOP
    if len(seen) == 1:
        return seen[0]
    return hashcons(And, tuple(seen))


def disj(*formulas: Formula) -> Formula:
    """Build the disjunction of *formulas* with light normalization.

    Dual of :func:`conj`; an empty disjunction is ``false``.
    """
    seen: list = []
    seen_set: set = set()
    for formula in _flatten(Or, formulas):
        if isinstance(formula, Top):
            return TOP
        if isinstance(formula, Bottom) or formula in seen_set:
            continue
        seen.append(formula)
        seen_set.add(formula)
    if _complemented(seen, seen_set):
        return TOP
    if not seen:
        return BOTTOM
    if len(seen) == 1:
        return seen[0]
    return hashcons(Or, tuple(seen))


def neg(formula: Formula) -> Formula:
    """Negate *formula*, eliminating double negation and constants."""
    if isinstance(formula, Top):
        return BOTTOM
    if isinstance(formula, Bottom):
        return TOP
    if isinstance(formula, Not):
        return formula.child
    return hashcons(Not, formula)
