"""Immutable formula ASTs for c-table conditions.

The grammar is the classical propositional one, over an open-ended set of
atoms (equality atoms and boolean variables live in
:mod:`repro.logic.atoms`)::

    phi ::= true | false | atom | NOT phi | AND(phi...) | OR(phi...)

Formulas are immutable, hashable values.  The smart constructors
:func:`conj`, :func:`disj` and :func:`neg` perform the cheap, always-safe
normalizations (flattening nested connectives, folding ``true``/``false``,
deduplicating children, and double-negation elimination) so that formulas
built by the c-table algebra stay small without a separate rewrite pass.

Deliberately *not* done here: anything requiring satisfiability reasoning.
That lives in :mod:`repro.logic.simplify` and
:mod:`repro.logic.equality_sat`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Tuple


class Formula:
    """Base class of all condition formulas.

    Subclasses are frozen dataclasses, so formulas compare and hash
    structurally; two syntactically identical conditions are a single
    dictionary key.  Python operators are overloaded for readability:
    ``a & b``, ``a | b`` and ``~a`` build conjunction, disjunction and
    negation through the smart constructors.
    """

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)

    def atoms(self) -> FrozenSet["Formula"]:
        """Return the set of atoms occurring in this formula."""
        out = set()
        for node in walk(self):
            if is_atom(node):
                out.add(node)
        return frozenset(out)

    def variables(self) -> FrozenSet[str]:
        """Return the names of all variables occurring in this formula."""
        out: set = set()
        for node in walk(self):
            collect = getattr(node, "_variables", None)
            if collect is not None:
                out.update(collect())
        return frozenset(out)


@dataclass(frozen=True)
class Top(Formula):
    """The always-true condition (the paper's unconditioned tuples)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    """The always-false condition (tuples that never appear)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "false"


TOP = Top()
BOTTOM = Bottom()


@dataclass(frozen=True)
class Not(Formula):
    """Negation of a sub-formula."""

    child: Formula

    __slots__ = ("child",)

    def __repr__(self) -> str:
        return f"~{self.child!r}" if is_atom(self.child) else f"~({self.child!r})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction over a non-empty tuple of children.

    Construct through :func:`conj`; the raw constructor performs no
    normalization and is reserved for internal use.
    """

    children: Tuple[Formula, ...]

    __slots__ = ("children",)

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction over a non-empty tuple of children.

    Construct through :func:`disj`.
    """

    children: Tuple[Formula, ...]

    __slots__ = ("children",)

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(c) for c in self.children) + ")"


def is_atom(formula: Formula) -> bool:
    """Return True when *formula* is an atom (not a connective/constant)."""
    return not isinstance(formula, (Top, Bottom, Not, And, Or))


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield every sub-formula of *formula*, including itself (pre-order)."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Not):
            stack.append(node.child)
        elif isinstance(node, (And, Or)):
            stack.extend(node.children)


def _flatten(kind: type, formulas: Iterable[Formula]) -> Iterator[Formula]:
    for formula in formulas:
        if isinstance(formula, kind):
            yield from formula.children
        else:
            yield formula


def conj(*formulas: Formula) -> Formula:
    """Build the conjunction of *formulas* with light normalization.

    Flattens nested conjunctions, drops ``true``, short-circuits on
    ``false``, deduplicates syntactically equal children, and detects the
    shallow contradiction ``phi & ~phi``.  An empty conjunction is ``true``.
    """
    seen: list = []
    seen_set: set = set()
    for formula in _flatten(And, formulas):
        if isinstance(formula, Bottom):
            return BOTTOM
        if isinstance(formula, Top) or formula in seen_set:
            continue
        seen.append(formula)
        seen_set.add(formula)
    for formula in seen:
        if neg(formula) in seen_set:
            return BOTTOM
    if not seen:
        return TOP
    if len(seen) == 1:
        return seen[0]
    return And(tuple(seen))


def disj(*formulas: Formula) -> Formula:
    """Build the disjunction of *formulas* with light normalization.

    Dual of :func:`conj`; an empty disjunction is ``false``.
    """
    seen: list = []
    seen_set: set = set()
    for formula in _flatten(Or, formulas):
        if isinstance(formula, Top):
            return TOP
        if isinstance(formula, Bottom) or formula in seen_set:
            continue
        seen.append(formula)
        seen_set.add(formula)
    for formula in seen:
        if neg(formula) in seen_set:
            return TOP
    if not seen:
        return BOTTOM
    if len(seen) == 1:
        return seen[0]
    return Or(tuple(seen))


def neg(formula: Formula) -> Formula:
    """Negate *formula*, eliminating double negation and constants."""
    if isinstance(formula, Top):
        return BOTTOM
    if isinstance(formula, Bottom):
        return TOP
    if isinstance(formula, Not):
        return formula.child
    return Not(formula)
