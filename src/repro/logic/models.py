"""Satisfying-valuation enumeration over finite variable domains.

Finite-domain c-tables (Definition 6 of the paper) pair each variable
with a finite ``dom(x) ⊂ D``; their possible-world semantics enumerates
all valuations.  :func:`enumerate_models` generates exactly the
valuations satisfying a condition, pruning assignments whose partial
evaluation already folds to ``false``; :func:`enumerate_valuations`
generates all of them regardless of any condition.

Boolean variables are just variables whose domain is ``(False, True)``,
so boolean c-tables reuse the same machinery.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Mapping, Sequence, Tuple

from repro.errors import DomainError
from repro.logic.evaluation import partial_evaluate
from repro.logic.syntax import BOTTOM, TOP, Formula

VariableDomains = Mapping[str, Sequence[Hashable]]


def check_domains(domains: VariableDomains) -> None:
    """Validate that every variable has a non-empty finite domain."""
    for name, values in domains.items():
        if len(values) == 0:
            raise DomainError(f"variable {name!r} has an empty domain")


def enumerate_valuations(
    domains: VariableDomains,
) -> Iterator[Dict[str, Hashable]]:
    """Yield every valuation of the given variable *domains*.

    The iteration order is the lexicographic product order over the
    variables sorted by name, making enumeration deterministic.
    """
    check_domains(domains)
    names = sorted(domains)
    values = [list(domains[name]) for name in names]

    def recurse(position: int, current: Dict[str, Hashable]):
        if position == len(names):
            yield dict(current)
            return
        name = names[position]
        for value in values[position]:
            current[name] = value
            yield from recurse(position + 1, current)
        del current[name]

    yield from recurse(0, {})


def enumerate_models(
    formula: Formula, domains: VariableDomains
) -> Iterator[Dict[str, Hashable]]:
    """Yield the valuations of *domains* satisfying *formula*.

    Variables mentioned by the formula but absent from *domains* raise
    :class:`~repro.errors.DomainError`.  Assignment proceeds variable by
    variable with partial evaluation, so unsatisfiable branches are cut
    without expanding the remaining product.
    """
    check_domains(domains)
    missing = formula.variables() - set(domains)
    if missing:
        raise DomainError(
            f"formula mentions variables without domains: {sorted(missing)}"
        )
    names = sorted(domains)

    def recurse(position: int, current: Dict[str, Hashable], remaining: Formula):
        if remaining is BOTTOM:
            return
        if position == len(names):
            if remaining is TOP:
                yield dict(current)
            return
        name = names[position]
        for value in domains[name]:
            current[name] = value
            narrowed = partial_evaluate(remaining, {name: value})
            yield from recurse(position + 1, current, narrowed)
        del current[name]

    yield from recurse(0, {}, partial_evaluate(formula, {}))


def count_models(formula: Formula, domains: VariableDomains) -> int:
    """Count the satisfying valuations of *formula* over *domains*."""
    return sum(1 for _ in enumerate_models(formula, domains))


def is_satisfiable_over(formula: Formula, domains: VariableDomains) -> bool:
    """Return True when some valuation over *domains* satisfies *formula*."""
    return next(enumerate_models(formula, domains), None) is not None


def domain_product_size(domains: VariableDomains) -> int:
    """Return the number of valuations of *domains* (the product size)."""
    size = 1
    for values in domains.values():
        size *= len(values)
    return size


def boolean_domains(names: Sequence[str]) -> Dict[str, Tuple[bool, bool]]:
    """Return the two-valued domain map for boolean variables *names*."""
    return {name: (False, True) for name in names}
