"""Evaluation and substitution for condition formulas.

A *valuation* maps variable names to values: domain values for
:class:`~repro.logic.atoms.Var` occurrences and booleans for
:class:`~repro.logic.atoms.BoolVar` atoms.  The paper's semantics of a
c-table applies a valuation to every tuple and keeps the tuple when its
condition evaluates to true; :func:`evaluate` is exactly that test.

:func:`partial_evaluate` substitutes only the variables a valuation
covers and folds what becomes decidable, which is the workhorse behind
pruned model enumeration and Shannon-expansion probability computation.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.errors import ValuationError
from repro.logic.atoms import BoolVar, Const, Eq, Term, Var
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    neg,
)

Valuation = Mapping[str, Hashable]


def _term_value(term: Term, valuation: Valuation, strict: bool):
    if isinstance(term, Const):
        return True, term.value
    if term.name in valuation:
        return True, valuation[term.name]
    if strict:
        raise ValuationError(f"valuation does not cover variable {term.name!r}")
    return False, None


def evaluate(formula: Formula, valuation: Valuation) -> bool:
    """Evaluate *formula* to a boolean under a total *valuation*.

    Raises :class:`~repro.errors.ValuationError` if the valuation misses a
    variable that the formula actually needs (short-circuiting may let
    incomplete valuations succeed, matching logical intuition: ``true | x``
    is true regardless of ``x``).
    """
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Eq):
        _, left = _term_value(formula.left, valuation, strict=True)
        _, right = _term_value(formula.right, valuation, strict=True)
        return left == right
    if isinstance(formula, BoolVar):
        if formula.name not in valuation:
            raise ValuationError(
                f"valuation does not cover boolean variable {formula.name!r}"
            )
        return bool(valuation[formula.name])
    if isinstance(formula, Not):
        return not evaluate(formula.child, valuation)
    if isinstance(formula, And):
        return all(evaluate(child, valuation) for child in formula.children)
    if isinstance(formula, Or):
        return any(evaluate(child, valuation) for child in formula.children)
    raise ValuationError(f"cannot evaluate unknown formula node {formula!r}")


def partial_evaluate(formula: Formula, valuation: Valuation) -> Formula:
    """Substitute the covered variables of *formula* and fold constants.

    The result contains no variable bound by *valuation*; if every
    variable was covered the result is ``TOP`` or ``BOTTOM``.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Eq):
        left_known, left = _term_value(formula.left, valuation, strict=False)
        right_known, right = _term_value(formula.right, valuation, strict=False)
        if left_known and right_known:
            return TOP if left == right else BOTTOM
        from repro.logic.atoms import eq

        new_left = Const(left) if left_known else formula.left
        new_right = Const(right) if right_known else formula.right
        return eq(new_left, new_right)
    if isinstance(formula, BoolVar):
        if formula.name in valuation:
            return TOP if valuation[formula.name] else BOTTOM
        return formula
    if isinstance(formula, Not):
        return neg(partial_evaluate(formula.child, valuation))
    if isinstance(formula, And):
        return conj(*(partial_evaluate(child, valuation) for child in formula.children))
    if isinstance(formula, Or):
        return disj(*(partial_evaluate(child, valuation) for child in formula.children))
    raise ValuationError(f"cannot evaluate unknown formula node {formula!r}")


def substitute(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Replace variables by *terms* (not values) throughout *formula*.

    Used by query translation, where a selection predicate over column
    indexes is instantiated with the terms of a symbolic tuple.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Eq):
        from repro.logic.atoms import eq

        left = mapping.get(formula.left.name, formula.left) if isinstance(
            formula.left, Var
        ) else formula.left
        right = mapping.get(formula.right.name, formula.right) if isinstance(
            formula.right, Var
        ) else formula.right
        return eq(left, right)
    if isinstance(formula, BoolVar):
        replacement = mapping.get(formula.name)
        if replacement is None:
            return formula
        if isinstance(replacement, Formula):
            return replacement
        raise ValuationError(
            f"boolean variable {formula.name!r} must be replaced by a formula"
        )
    if isinstance(formula, Not):
        return neg(substitute(formula.child, mapping))
    if isinstance(formula, And):
        return conj(*(substitute(child, mapping) for child in formula.children))
    if isinstance(formula, Or):
        return disj(*(substitute(child, mapping) for child in formula.children))
    raise ValuationError(f"cannot substitute in unknown formula node {formula!r}")
