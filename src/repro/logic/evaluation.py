"""Evaluation and substitution for condition formulas.

A *valuation* maps variable names to values: domain values for
:class:`~repro.logic.atoms.Var` occurrences and booleans for
:class:`~repro.logic.atoms.BoolVar` atoms.  The paper's semantics of a
c-table applies a valuation to every tuple and keeps the tuple when its
condition evaluates to true; :func:`evaluate` is exactly that test.

:func:`partial_evaluate` substitutes only the variables a valuation
covers and folds what becomes decidable, which is the workhorse behind
pruned model enumeration and Shannon-expansion probability computation.

Memoization
-----------

World enumeration (``CTable.mod()``/``possible_worlds()``) evaluates the
same row conditions under every admissible valuation, and those
conditions share sub-formulas aggressively thanks to the interning layer
in :mod:`repro.logic.syntax`.  Both :func:`evaluate` and
:func:`partial_evaluate` therefore memoize connective nodes in a global
cache keyed on ``(node, relevant valuation slice)`` — the values the
valuation assigns to exactly the node's variables.  Two valuations that
agree on a sub-formula's variables share one cache entry, so each shared
sub-formula is evaluated once per distinct restriction instead of once
per world.  The caches are bounded (flushed wholesale when full) and can
be disabled with :func:`set_evaluation_cache` — benchmark
``benchmarks/runner.py`` uses the toggle to time the seed behavior.
"""

from __future__ import annotations

import weakref
from typing import Callable, Hashable, Mapping, Tuple, TypeVar

from repro.errors import ValuationError
from repro.logic.atoms import BoolVar, Const, Eq, Term, Var
from repro.obs.metrics import CacheStats
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    neg,
)

Valuation = Mapping[str, Hashable]

_T = TypeVar("_T")

#: Sentinel marking a variable the valuation does not cover.
_MISSING = object()

#: Hard bound on each per-node memo; when exceeded, that node's memo is
#: flushed whole (the entries are cheap to recompute and a FIFO/LRU
#: policy is not worth the bookkeeping on this hot path).
_CACHE_LIMIT = 1 << 12

#: Nodes that currently hold a memo, so the caches can be cleared.
_memoized_nodes: "weakref.WeakSet" = weakref.WeakSet()
_cache_enabled = True

#: Unified hit/miss accounting for the memo caches, in the same
#: `CacheStats` shape as the engine's plan/result/circuit caches.
#: Evictions count entries dropped by wholesale memo flushes at
#: ``_CACHE_LIMIT``; invalidations count entries dropped by
#: :func:`clear_evaluation_caches`.
_stats = CacheStats()


def set_evaluation_cache(enabled: bool) -> None:
    """Enable or disable the evaluate/partial_evaluate memo caches.

    Disabling also clears them; results are identical either way — the
    toggle exists so benchmarks can measure the seed (uncached) behavior.
    """
    global _cache_enabled
    _cache_enabled = bool(enabled)
    clear_evaluation_caches()


def clear_evaluation_caches() -> None:
    """Drop every memoized evaluation result."""
    dropped = 0
    for node in list(_memoized_nodes):
        for slot in ("_ememo", "_pmemo"):
            try:
                memo = getattr(node, slot)
            except AttributeError:
                continue
            dropped += len(memo)
            memo.clear()
    _memoized_nodes.clear()
    if dropped:
        _stats.invalidated(dropped)


def evaluation_cache_stats() -> dict:
    """Sizes plus unified hit/miss counters of the evaluation memo caches.

    The counter keys (``hits``/``misses``/``evictions``/``invalidations``)
    match the other engine caches, so ``Engine.metrics_snapshot()`` can
    present all four caches uniformly.
    """
    evaluate_entries = 0
    partial_entries = 0
    for node in _memoized_nodes:
        try:
            evaluate_entries += len(node._ememo)
        except AttributeError:
            pass
        try:
            partial_entries += len(node._pmemo)
        except AttributeError:
            pass
    stats: dict = dict(_stats.as_dict())
    stats["enabled"] = _cache_enabled
    stats["evaluate_entries"] = evaluate_entries
    stats["partial_evaluate_entries"] = partial_entries
    return stats


def _node_memo(formula: Formula, slot: str) -> dict:
    """Return the formula's memo dict for *slot*, creating it lazily.

    The memo lives on the (immutable, interned) node itself: the cache
    key is then just the valuation slice, with no repeated hashing of
    the formula, and dropping the node drops its memo.
    """
    try:
        return getattr(formula, slot)
    except AttributeError:
        memo: dict = {}
        object.__setattr__(formula, slot, memo)
        _memoized_nodes.add(formula)
        return memo


def _memoized(
    formula: Formula,
    slot: str,
    compute: "Callable[[Formula, Valuation], _T]",
    valuation: Valuation,
) -> _T:
    """Memoize ``compute(formula, valuation)`` on the node's *slot* dict,
    keyed by the values the valuation assigns to the node's variables."""
    memo = _node_memo(formula, slot)
    key = tuple(
        valuation.get(name, _MISSING)
        for name in formula.sorted_variables()
    )
    cached = memo.get(key)
    if cached is not None:
        _stats.hit()
        return cached
    _stats.miss()
    result = compute(formula, valuation)
    if len(memo) >= _CACHE_LIMIT:
        _stats.evicted(len(memo))
        memo.clear()
    memo[key] = result
    return result


def _term_value(
    term: Term, valuation: Valuation, strict: bool
) -> "Tuple[bool, Hashable]":
    if isinstance(term, Const):
        return True, term.value
    if term.name in valuation:
        return True, valuation[term.name]
    if strict:
        raise ValuationError(f"valuation does not cover variable {term.name!r}")
    return False, None


def evaluate(formula: Formula, valuation: Valuation) -> bool:
    """Evaluate *formula* to a boolean under a total *valuation*.

    Raises :class:`~repro.errors.ValuationError` if the valuation misses a
    variable that the formula actually needs (short-circuiting may let
    incomplete valuations succeed, matching logical intuition: ``true | x``
    is true regardless of ``x``).
    """
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Eq):
        _, left = _term_value(formula.left, valuation, strict=True)
        _, right = _term_value(formula.right, valuation, strict=True)
        return left == right
    if isinstance(formula, BoolVar):
        if formula.name not in valuation:
            raise ValuationError(
                f"valuation does not cover boolean variable {formula.name!r}"
            )
        return bool(valuation[formula.name])
    if isinstance(formula, (Not, And, Or)):
        if not _cache_enabled:
            return _evaluate_connective(formula, valuation)
        return _memoized(formula, "_ememo", _evaluate_connective, valuation)
    raise ValuationError(f"cannot evaluate unknown formula node {formula!r}")


def _evaluate_connective(formula: Formula, valuation: Valuation) -> bool:
    if isinstance(formula, Not):
        return not evaluate(formula.child, valuation)
    if isinstance(formula, And):
        return all(evaluate(child, valuation) for child in formula.children)
    return any(evaluate(child, valuation) for child in formula.children)


def partial_evaluate(formula: Formula, valuation: Valuation) -> Formula:
    """Substitute the covered variables of *formula* and fold constants.

    The result contains no variable bound by *valuation*; if every
    variable was covered the result is ``TOP`` or ``BOTTOM``.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Eq):
        left_known, left = _term_value(formula.left, valuation, strict=False)
        right_known, right = _term_value(formula.right, valuation, strict=False)
        if left_known and right_known:
            return TOP if left == right else BOTTOM
        from repro.logic.atoms import eq

        new_left = Const(left) if left_known else formula.left
        new_right = Const(right) if right_known else formula.right
        return eq(new_left, new_right)
    if isinstance(formula, BoolVar):
        if formula.name in valuation:
            return TOP if valuation[formula.name] else BOTTOM
        return formula
    if isinstance(formula, (Not, And, Or)):
        if not _cache_enabled:
            return _partial_evaluate_connective(formula, valuation)
        return _memoized(
            formula, "_pmemo", _partial_evaluate_connective, valuation
        )
    raise ValuationError(f"cannot evaluate unknown formula node {formula!r}")


def _partial_evaluate_connective(
    formula: Formula, valuation: Valuation
) -> Formula:
    if isinstance(formula, Not):
        return neg(partial_evaluate(formula.child, valuation))
    if isinstance(formula, And):
        return conj(*(partial_evaluate(child, valuation) for child in formula.children))
    return disj(*(partial_evaluate(child, valuation) for child in formula.children))


def substitute(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Replace variables by *terms* (not values) throughout *formula*.

    Used by query translation, where a selection predicate over column
    indexes is instantiated with the terms of a symbolic tuple.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Eq):
        from repro.logic.atoms import eq

        left = mapping.get(formula.left.name, formula.left) if isinstance(
            formula.left, Var
        ) else formula.left
        right = mapping.get(formula.right.name, formula.right) if isinstance(
            formula.right, Var
        ) else formula.right
        return eq(left, right)
    if isinstance(formula, BoolVar):
        replacement = mapping.get(formula.name)
        if replacement is None:
            return formula
        if isinstance(replacement, Formula):
            return replacement
        raise ValuationError(
            f"boolean variable {formula.name!r} must be replaced by a formula"
        )
    if isinstance(formula, Not):
        return neg(substitute(formula.child, mapping))
    if isinstance(formula, And):
        return conj(*(substitute(child, mapping) for child in formula.children))
    if isinstance(formula, Or):
        return disj(*(substitute(child, mapping) for child in formula.children))
    raise ValuationError(f"cannot substitute in unknown formula node {formula!r}")
