"""Domains of values.

The paper uses a fixed countably infinite domain ``D`` for the
incompleteness results and a finite ``D`` for the probabilistic ones
(Section 6's finiteness assumption).  We model both:

- :class:`Domain` — an explicit finite domain, e.g. ``Domain(range(5))``;
  supports membership, iteration, and sizing.  Used directly for
  finite-domain tables, ?-tables, or-set tables, and everything
  probabilistic.
- :class:`InfiniteDomain` — the countably infinite domain, supporting
  membership (everything hashable belongs) and the generation of finite
  *witness slices* used to decide infinite-domain questions via the
  small-model property (see :mod:`repro.logic.equality_sat`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Sequence

from repro.errors import DomainError


class Domain:
    """An explicit finite domain of hashable values.

    Values are kept in first-seen order with duplicates removed, so
    iteration is deterministic — important for reproducible possible-world
    enumeration.
    """

    def __init__(self, values: Iterable[Hashable]) -> None:
        seen = set()
        ordered: List[Hashable] = []
        for value in values:
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        if not ordered:
            raise DomainError("a finite domain must contain at least one value")
        self._values: List[Hashable] = ordered
        self._set = seen

    def __contains__(self, value: Hashable) -> bool:
        return value in self._set

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._set == other._set

    def __hash__(self) -> int:
        return hash(frozenset(self._set))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:6])
        suffix = ", ..." if len(self._values) > 6 else ""
        return f"Domain({{{preview}{suffix}}})"

    @property
    def values(self) -> List[Hashable]:
        """Return the domain's values in deterministic order (a copy)."""
        return list(self._values)

    def union(self, other: "Domain") -> "Domain":
        """Return the union of two finite domains."""
        return Domain(list(self._values) + list(other._values))

    def restrict(self, size: int) -> "Domain":
        """Return the sub-domain of the first *size* values."""
        if size < 1 or size > len(self._values):
            raise DomainError(
                f"cannot restrict a domain of size {len(self._values)} to {size}"
            )
        return Domain(self._values[:size])


class InfiniteDomain:
    """The countably infinite domain ``D`` of the paper.

    Membership is universal over hashable values.  Finite questions are
    answered through witness slices: :meth:`slice` returns a finite
    :class:`Domain` of the requested size whose values are canonical
    integers, optionally extended with caller-supplied constants (witness
    slices must contain every constant mentioned by the tables and
    queries under study — see DESIGN.md, Substitutions).
    """

    def __contains__(self, value: Hashable) -> bool:
        try:
            hash(value)
        except TypeError:
            return False
        return True

    def __repr__(self) -> str:
        return "InfiniteDomain()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InfiniteDomain)

    def __hash__(self) -> int:
        return hash(InfiniteDomain)

    def slice(
        self, size: int, constants: Sequence[Hashable] = ()
    ) -> Domain:
        """Return a finite witness slice of at least *size* fresh values.

        The slice contains the given *constants* plus consecutive integers
        chosen to avoid colliding with integer constants.
        """
        if size < 0:
            raise DomainError("witness slice size must be non-negative")
        values: List[Hashable] = list(constants)
        taken = {value for value in values if isinstance(value, int)}
        candidate = 0
        fresh: List[Hashable] = []
        while len(fresh) < size:
            if candidate not in taken:
                fresh.append(candidate)
            candidate += 1
        values.extend(fresh)
        if not values:
            raise DomainError("witness slice would be empty")
        return Domain(values)


def domain_of_values(*value_groups: Iterable[Hashable]) -> Domain:
    """Build the smallest finite domain covering every given value group."""
    collected: List[Hashable] = []
    for group in value_groups:
        collected.extend(group)
    return Domain(collected)
