"""The universe ``N`` of all instances over a finite domain.

Over an infinite domain, ``N := { I ⊆ D^n | I finite }`` is infinite —
the zero-information database the paper shows c-tables *cannot*
represent.  Over a finite domain (the probabilistic Section 6, and
Proposition 4's finite checks) it is genuinely finite, with
``2^(|D|^n)`` members, and this module enumerates it lazily.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List

from repro.errors import DomainError
from repro.core.domain import Domain
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase


def all_tuples(domain: Domain, arity: int) -> List[Row]:
    """Return every *arity*-tuple over *domain* in deterministic order."""
    if arity < 0:
        raise DomainError(f"arity must be non-negative, got {arity}")
    return [tuple(combo) for combo in itertools.product(domain.values, repeat=arity)]


def universe_size(domain: Domain, arity: int) -> int:
    """Return ``|N| = 2^(|D|^arity)`` without materializing it."""
    return 2 ** (len(domain) ** arity)


def all_instances(domain: Domain, arity: int) -> Iterator[Instance]:
    """Yield every instance over *domain* with the given *arity*.

    The empty instance comes first, then instances in order of increasing
    subset bitmask over the deterministic tuple order — the iteration is
    fully reproducible.

    Beware of scale: the count is doubly exponential in practice; callers
    keep ``|D|^arity`` small (Proposition 4's check uses slices like
    ``|D| = 3, arity = 1``).
    """
    tuples = all_tuples(domain, arity)
    for mask in range(2 ** len(tuples)):
        rows = [row for index, row in enumerate(tuples) if mask >> index & 1]
        yield Instance(rows, arity=arity)


def universe(domain: Domain, arity: int) -> IDatabase:
    """Return ``N`` over the finite *domain* as an incomplete database.

    This is the "zero information" i-database of Section 2, materialized
    for a finite slice.
    """
    return IDatabase(all_instances(domain, arity), arity=arity)


def instances_up_to_cardinality(
    domain: Domain, arity: int, max_cardinality: int
) -> Iterator[Instance]:
    """Yield every instance with at most *max_cardinality* tuples.

    The paper notes the "minimal information" databases representable by
    c-tables are exactly those of all instances of cardinality up to m
    (Codd tables with m rows); this generator materializes them for
    finite slices.
    """
    tuples = all_tuples(domain, arity)
    for size in range(min(max_cardinality, len(tuples)) + 1):
        for combo in itertools.combinations(tuples, size):
            yield Instance(combo, arity=arity)
