"""Incomplete databases: sets of possible instances (Definition 1).

An :class:`IDatabase` materializes a *finite* set of possible worlds.
Incomplete databases over an infinite domain are generally infinite sets;
those are handled semantically through representation systems and witness
slices (:mod:`repro.worlds.compare`), while this class is the concrete
object used for finite systems, for Mod over finite domains, and for the
outcome sets of probabilistic databases.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional

from repro.errors import ArityError
from repro.core.instance import Instance


class IDatabase:
    """A finite set of same-arity possible instances.

    Immutable and hashable; supports the set operations the completeness
    and closure proofs need, plus certain/possible tuple queries
    (re-exported with more context in :mod:`repro.worlds.answers`).
    """

    __slots__ = ("_instances", "_arity")

    def __init__(
        self, instances: Iterable[Instance], arity: Optional[int] = None
    ) -> None:
        frozen = frozenset(instances)
        if frozen:
            arities = {instance.arity for instance in frozen}
            if len(arities) != 1:
                raise ArityError(
                    f"mixed arities in incomplete database: {sorted(arities)}"
                )
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise ArityError(
                    f"declared arity {arity} does not match instances of "
                    f"arity {inferred}"
                )
            arity = inferred
        elif arity is None:
            raise ArityError("empty incomplete database needs an explicit arity")
        self._instances: FrozenSet[Instance] = frozen
        self._arity = arity

    @property
    def arity(self) -> int:
        """Return the shared arity of all possible instances."""
        return self._arity

    @property
    def instances(self) -> FrozenSet[Instance]:
        """Return the underlying frozenset of instances."""
        return self._instances

    def __contains__(self, instance: Instance) -> bool:
        return instance in self._instances

    def __iter__(self) -> Iterator[Instance]:
        return iter(sorted(self._instances, key=repr))

    def __len__(self) -> int:
        return len(self._instances)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IDatabase):
            return NotImplemented
        return self._arity == other._arity and self._instances == other._instances

    def __hash__(self) -> int:
        return hash((self._arity, self._instances))

    def __repr__(self) -> str:
        if len(self._instances) <= 4:
            body = ", ".join(repr(instance) for instance in self)
        else:
            first = ", ".join(repr(instance) for instance in list(self)[:3])
            body = f"{first}, ... {len(self._instances)} instances"
        return f"IDatabase[{self._arity}]{{{body}}}"

    # ------------------------------------------------------------------
    # Information-content queries
    # ------------------------------------------------------------------
    def certain_tuples(self) -> FrozenSet:
        """Return the tuples present in *every* possible instance."""
        iterator = iter(self._instances)
        first = next(iterator, None)
        if first is None:
            return frozenset()
        certain = set(first.rows)
        for instance in iterator:
            certain &= instance.rows
        return frozenset(certain)

    def possible_tuples(self) -> FrozenSet:
        """Return the tuples present in *some* possible instance."""
        possible = set()
        for instance in self._instances:
            possible |= instance.rows
        return frozenset(possible)

    def is_complete_information(self) -> bool:
        """True when the database is a single conventional instance."""
        return len(self._instances) == 1

    def max_cardinality(self) -> int:
        """Return the size of the largest possible instance."""
        return max((len(instance) for instance in self._instances), default=0)

    def values(self) -> FrozenSet:
        """Return the combined active domain of all instances."""
        out = set()
        for instance in self._instances:
            out |= instance.values()
        return frozenset(out)

    def map_instances(self, transform) -> "IDatabase":
        """Return the image of the database under an instance transform.

        This is the incompleteness analogue of Definition 10's image
        space: ``q(I) = { q(I) | I ∈ I }``.
        """
        return IDatabase(
            (transform(instance) for instance in self._instances),
        )

    def union_worlds(self, other: "IDatabase") -> "IDatabase":
        """Return the set union of the two world-sets (not per-world union)."""
        if self._arity != other._arity:
            raise ArityError(
                f"arity mismatch: {self._arity} vs {other._arity}"
            )
        return IDatabase(self._instances | other._instances, arity=self._arity)
