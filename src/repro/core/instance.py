"""Conventional relational instances.

An :class:`Instance` is a finite ``n``-ary relation over the domain: an
immutable, hashable set of equal-length tuples.  Hashability matters
because incomplete databases are *sets of instances* and probabilistic
databases assign probabilities to instances, so instances serve as
dictionary keys throughout the library.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple

from repro.errors import ArityError

Row = Tuple[Hashable, ...]


class Instance:
    """A finite relation: an immutable set of same-arity tuples.

    The arity of an empty relation is ambiguous from its contents, so it
    must be supplied explicitly when no tuples are given.
    """

    __slots__ = ("_rows", "_arity")

    def __init__(
        self, rows: Iterable[Iterable[Hashable]] = (), arity: Optional[int] = None
    ) -> None:
        frozen = frozenset(tuple(row) for row in rows)
        if frozen:
            arities = {len(row) for row in frozen}
            if len(arities) != 1:
                raise ArityError(f"mixed arities in instance: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise ArityError(
                    f"declared arity {arity} does not match tuples of arity {inferred}"
                )
            arity = inferred
        elif arity is None:
            raise ArityError("empty instance needs an explicit arity")
        if arity < 0:
            raise ArityError(f"arity must be non-negative, got {arity}")
        self._rows: FrozenSet[Row] = frozen
        self._arity = arity

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Return the relation's arity."""
        return self._arity

    @property
    def rows(self) -> FrozenSet[Row]:
        """Return the underlying frozenset of tuples."""
        return self._rows

    def __contains__(self, row: Iterable[Hashable]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=repr))

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._arity == other._arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._arity, self._rows))

    def __repr__(self) -> str:
        body = ", ".join(repr(row) for row in self)
        return f"Instance[{self._arity}]{{{body}}}"

    # ------------------------------------------------------------------
    # Set operations (used by the RA evaluator)
    # ------------------------------------------------------------------
    def _check_same_arity(self, other: "Instance") -> None:
        if self._arity != other._arity:
            raise ArityError(
                f"arity mismatch: {self._arity} vs {other._arity}"
            )

    def union(self, other: "Instance") -> "Instance":
        """Return the set union of two same-arity instances."""
        self._check_same_arity(other)
        return Instance(self._rows | other._rows, arity=self._arity)

    def difference(self, other: "Instance") -> "Instance":
        """Return the set difference of two same-arity instances."""
        self._check_same_arity(other)
        return Instance(self._rows - other._rows, arity=self._arity)

    def intersection(self, other: "Instance") -> "Instance":
        """Return the set intersection of two same-arity instances."""
        self._check_same_arity(other)
        return Instance(self._rows & other._rows, arity=self._arity)

    def cross(self, other: "Instance") -> "Instance":
        """Return the cross product (tuple concatenation)."""
        rows = {
            left + right for left in self._rows for right in other._rows
        }
        return Instance(rows, arity=self._arity + other._arity)

    def is_subset(self, other: "Instance") -> bool:
        """Return True when every tuple of self belongs to *other*."""
        self._check_same_arity(other)
        return self._rows <= other._rows

    def values(self) -> FrozenSet[Hashable]:
        """Return the active domain: every value occurring in some tuple."""
        return frozenset(value for row in self._rows for value in row)


def check_tuple(row: Iterable[Hashable], arity: int) -> Row:
    """Validate a single tuple against *arity* and return it normalized."""
    normalized = tuple(row)
    if len(normalized) != arity:
        raise ArityError(
            f"tuple {normalized!r} has arity {len(normalized)}, expected {arity}"
        )
    return normalized


def relation(*rows: Iterable[Hashable], arity: Optional[int] = None) -> Instance:
    """Convenience constructor: ``relation((1, 2), (3, 4))``."""
    return Instance(rows, arity=arity)
