"""Relational substrate: domains, instances, incomplete databases.

The paper fixes a countably infinite domain ``D`` and works with finite
``n``-ary relations over it; an *incomplete database* is a set of such
instances.  This package provides those objects plus the universe ``N``
of all instances over finite domain slices (needed by Proposition 4 and
the probabilistic Section 6, which assumes ``D`` finite).
"""

from repro.core.domain import Domain, InfiniteDomain, domain_of_values
from repro.core.instance import Instance, check_tuple, relation
from repro.core.idatabase import IDatabase
from repro.core.universe import all_instances, all_tuples, universe_size

__all__ = [
    "Domain",
    "IDatabase",
    "InfiniteDomain",
    "Instance",
    "all_instances",
    "all_tuples",
    "check_tuple",
    "domain_of_values",
    "relation",
    "universe_size",
]
