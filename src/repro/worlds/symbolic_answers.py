"""Certain and possible answers computed symbolically, without Mod.

Enumerating ``Mod(T)`` is exponential in the variable count; the c-table
algebra makes it unnecessary.  For a query ``q`` and c-table ``T``:

- a constant tuple ``t`` is a **certain answer** iff its *membership
  condition* in ``q̄(T)`` — the disjunction over answer rows of
  "condition holds and the row's terms equal ``t``" — is *valid*
  (true under every valuation),
- ``t`` is a **possible answer** iff that condition is *satisfiable*.

Validity/satisfiability over the infinite domain are decided by the
small-model procedures of :mod:`repro.logic.equality_sat`; for
finite-domain tables the variable domains are used directly.

Candidate generation: a certain tuple survives into worlds where every
variable takes a fresh value, so its entries must be constants of the
answer table; the candidate pool is the product of per-column constants
(guarded by ``max_candidates``).  Possible answers over an infinite
domain form an infinite set in general (rows with variable entries
denote tuple *patterns*); :func:`possible_answer_symbolic` therefore
returns the constant possible answers, which is what applications
display — the full description *is* the answer c-table.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Sequence, Set, Tuple

from repro.errors import UnsupportedOperationError
from repro.core.instance import Instance, Row
from repro.logic.atoms import Const, Var, eq
from repro.logic.models import is_satisfiable_over
from repro.logic.syntax import BOTTOM, Formula, conj, disj, neg
from repro.algebra.ast import Query
from repro.tables.ctable import CTable


def membership_condition(table: CTable, row: Row) -> Formula:
    """The condition under which constant tuple *row* belongs to ν(T)."""
    row = tuple(row)
    branches = []
    for crow in table.rows:
        matches = conj(
            *(
                eq(term, Const(value))
                for term, value in zip(crow.values, row)
            )
        )
        branches.append(conj(crow.condition, matches))
    return conj(table.global_condition, disj(*branches))


def _is_valid(table: CTable, condition: Formula) -> bool:
    if table.domains is not None:
        # Valid over the finite domains iff the negation has no model.
        relevant = {
            name: table.domains[name] for name in condition.variables()
        }
        if not relevant:
            from repro.logic.evaluation import partial_evaluate
            from repro.logic.syntax import TOP

            return partial_evaluate(condition, {}) == TOP
        return not is_satisfiable_over(neg(condition), relevant)
    from repro.logic.equality_sat import is_valid_infinite

    return is_valid_infinite(condition)


def _is_satisfiable(table: CTable, condition: Formula) -> bool:
    if table.domains is not None:
        relevant = {
            name: table.domains[name] for name in condition.variables()
        }
        if not relevant:
            from repro.logic.evaluation import partial_evaluate
            from repro.logic.syntax import TOP

            return partial_evaluate(condition, {}) == TOP
        return is_satisfiable_over(condition, relevant)
    from repro.logic.equality_sat import is_satisfiable_infinite

    return is_satisfiable_infinite(condition)


def _column_constants(table: CTable) -> List[List[Hashable]]:
    """Constants appearing per column, plus condition constants everywhere.

    A variable entry can only produce a *certain* constant when its
    condition forces it to equal some constant, and condition constants
    are the only candidates — so the pool below is complete.
    """
    from repro.logic.equality_sat import constants_of

    condition_constants: Set[Hashable] = set(
        constants_of(table.global_condition)
    )
    for row in table.rows:
        condition_constants |= constants_of(row.condition)
    columns: List[Set[Hashable]] = [set() for _ in range(table.arity)]
    for row in table.rows:
        for index, term in enumerate(row.values):
            if isinstance(term, Const):
                columns[index].add(term.value)
            else:
                columns[index] |= condition_constants
    return [sorted(values, key=repr) for values in columns]


def _candidates(
    table: CTable, max_candidates: int
) -> Iterator[Row]:
    import itertools

    columns = _column_constants(table)
    total = 1
    for values in columns:
        total *= len(values)
    if total > max_candidates:
        raise UnsupportedOperationError(
            f"candidate pool of size {total} exceeds max_candidates="
            f"{max_candidates}; raise the bound or use enumeration"
        )
    yield from itertools.product(*columns)


def certain_from_answer(
    answered: CTable, max_candidates: int = 100_000
) -> Instance:
    """Certain tuples of an *already evaluated* answer table ``q̄(T)``.

    The candidate/validity machinery without the query evaluation — this
    is what :class:`~repro.engine.Dataset` terminals call, so certain and
    possible answers share one evaluation of ``q̄(T)``.
    """
    rows = [
        candidate
        for candidate in _candidates(answered, max_candidates)
        if _is_valid(answered, membership_condition(answered, candidate))
    ]
    return Instance(rows, arity=answered.arity)


def possible_from_answer(
    answered: CTable, max_candidates: int = 100_000
) -> Instance:
    """Constant possible tuples of an already evaluated answer table."""
    rows = [
        candidate
        for candidate in _candidates(answered, max_candidates)
        if _is_satisfiable(
            answered, membership_condition(answered, candidate)
        )
    ]
    return Instance(rows, arity=answered.arity)


def certain_answer_symbolic(
    query: Query,
    table: CTable,
    max_candidates: int = 100_000,
    optimize: bool = False,
) -> Instance:
    """Certain answers of *query* over ``Mod(table)``, via validity.

    Exact over infinite and finite domains alike; never materializes a
    single possible world.  ``optimize=True`` evaluates ``q̄`` through
    the plan optimizer — the answer table is ``Mod``-equal, so the same
    tuples are certain.  (Shim over the default engine; a
    :class:`~repro.engine.Session` additionally caches the plan and the
    answer table across calls.)
    """
    from repro.engine import default_engine

    answered = default_engine().execute_single(
        query, table, simplify_conditions=False, optimize=optimize
    )
    return certain_from_answer(answered, max_candidates)


def possible_answer_symbolic(
    query: Query,
    table: CTable,
    max_candidates: int = 100_000,
    optimize: bool = False,
) -> Instance:
    """Constant possible answers of *query*, via satisfiability.

    Tuples built from the answer table's constants that occur in *some*
    world.  Rows with variable entries additionally denote infinitely
    many fresh-valued possible tuples; those patterns are visible in
    ``apply_query_to_ctable(query, table)`` directly.
    """
    from repro.engine import default_engine

    answered = default_engine().execute_single(
        query, table, simplify_conditions=False, optimize=optimize
    )
    return possible_from_answer(answered, max_candidates)
