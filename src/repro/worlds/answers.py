"""Certain and possible answers over incomplete databases.

Given an incomplete database ``I`` and a query ``q``:

- the *certain answer* is ``⋂ { q(I) | I ∈ I }`` — tuples returned in
  every possible world,
- the *possible answer* is ``⋃ { q(I) | I ∈ I }`` — tuples returned in
  some world.

The paper contrasts its representation-based semantics with the certain-
answer semantics used by [18]'s Corollary 3.1 (remark after Theorem 2);
having both implemented lets the tests exhibit the difference.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import NoWorldsError
from repro.core.domain import Domain
from repro.core.instance import Instance
from repro.core.idatabase import IDatabase
from repro.algebra.ast import Query
from repro.algebra.evaluate import apply_query
from repro.tables.base import Table


def certain_answer(query: Query, idb: IDatabase) -> Instance:
    """Return the tuples of ``q(I)`` common to all worlds ``I ∈ I``.

    The intersection is computed incrementally: ``Mod`` is exponential
    in the variable count, so materializing every world's answer first
    (as the seed did) is the memory hot spot.  One world's answer is
    held at a time, and once the running intersection is empty no
    further world can change it, so the enumeration stops early.

    Raises :class:`~repro.errors.NoWorldsError` when the incomplete
    database has no worlds at all (e.g. a table whose global condition is
    unsatisfiable): the intersection over zero worlds is vacuously "all
    tuples", not the empty answer.
    """
    rows = None
    for instance in idb:
        answer = apply_query(query, instance)
        if rows is None:
            rows = set(answer.rows)
        else:
            rows &= answer.rows
        if not rows:
            return Instance((), arity=query.arity)
    if rows is None:
        raise NoWorldsError(
            "certain answer over an empty set of possible worlds is "
            "undefined (vacuously every tuple); the representation admits "
            "no world at all"
        )
    return Instance(rows, arity=query.arity)


def possible_answer(query: Query, idb: IDatabase) -> Instance:
    """Return the tuples of ``q(I)`` occurring in some world ``I ∈ I``."""
    rows = set()
    for instance in idb:
        rows |= apply_query(query, instance).rows
    return Instance(rows, arity=query.arity)


def _mod_of(table: Table, domain: Optional[Union[Domain, Sequence]]) -> IDatabase:
    if domain is not None:
        return table.mod_over(domain)
    return table.mod()


def certain_answer_table(
    query: Query,
    table: Table,
    domain: Optional[Union[Domain, Sequence]] = None,
) -> Instance:
    """Certain answer of *query* over ``Mod(table)``.

    For tables over the infinite domain, pass the witness *domain* to
    restrict to (see :func:`repro.worlds.compare.witness_domain_for`).
    """
    return certain_answer(query, _mod_of(table, domain))


def possible_answer_table(
    query: Query,
    table: Table,
    domain: Optional[Union[Domain, Sequence]] = None,
) -> Instance:
    """Possible answer of *query* over ``Mod(table)``."""
    return possible_answer(query, _mod_of(table, domain))
