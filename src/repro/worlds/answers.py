"""Certain and possible answers over incomplete databases.

Given an incomplete database ``I`` and a query ``q``:

- the *certain answer* is ``⋂ { q(I) | I ∈ I }`` — tuples returned in
  every possible world,
- the *possible answer* is ``⋃ { q(I) | I ∈ I }`` — tuples returned in
  some world.

The paper contrasts its representation-based semantics with the certain-
answer semantics used by [18]'s Corollary 3.1 (remark after Theorem 2);
having both implemented lets the tests exhibit the difference.

The two answers are deliberately *asymmetric* over an empty ``Mod``
(e.g. an unsatisfiable global condition): the intersection over zero
sets is vacuously "every tuple", which no finite instance represents, so
:func:`certain_answer` raises :class:`~repro.errors.NoWorldsError` —
while the union over zero sets *is* well-defined as ∅, so
:func:`possible_answer` returns the empty instance.  The asymmetry is
pinned by the test suite.

The table-level variants route through the default
:class:`~repro.engine.Engine`: by Theorem 4, ``Mod(q̄(T)) = q(Mod(T))``,
so they evaluate ``q̄(T)`` once and enumerate worlds of the (usually much
smaller) answer table instead of re-running the query in every world.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import NoWorldsError
from repro.core.domain import Domain
from repro.core.instance import Instance
from repro.core.idatabase import IDatabase
from repro.algebra.ast import Query
from repro.algebra.evaluate import apply_query
from repro.tables.base import Table


def intersect_worlds(answers, arity: int) -> Instance:
    """Intersect an iterable of per-world answer instances.

    The intersection is computed incrementally: ``Mod`` is exponential
    in the variable count, so materializing every world's answer first
    (as the seed did) is the memory hot spot.  One world's answer is
    held at a time, and once the running intersection is empty no
    further world can change it, so the enumeration stops early.

    Raises :class:`~repro.errors.NoWorldsError` over zero worlds: the
    intersection over zero sets is vacuously "all tuples", not the
    empty answer.  This is the single implementation behind
    :func:`certain_answer` and the engine's ``Dataset.certain``.
    """
    rows = None
    for instance in answers:
        if rows is None:
            rows = set(instance.rows)
        else:
            rows &= instance.rows
        if not rows:
            return Instance((), arity=arity)
    if rows is None:
        raise NoWorldsError(
            "certain answer over an empty set of possible worlds is "
            "undefined (vacuously every tuple); the representation admits "
            "no world at all"
        )
    return Instance(rows, arity=arity)


def union_worlds(answers, arity: int) -> Instance:
    """Union an iterable of per-world answer instances.

    Well-defined (as ∅) over zero worlds — the single implementation
    behind :func:`possible_answer` and the engine's
    ``Dataset.possible``.
    """
    rows = set()
    for instance in answers:
        rows |= instance.rows
    return Instance(rows, arity=arity)


def certain_answer(query: Query, idb: IDatabase) -> Instance:
    """Return the tuples of ``q(I)`` common to all worlds ``I ∈ I``.

    Raises :class:`~repro.errors.NoWorldsError` when the incomplete
    database has no worlds at all (e.g. a table whose global condition is
    unsatisfiable): the intersection over zero worlds is vacuously "all
    tuples", not the empty answer.  Contrast :func:`possible_answer`,
    which *is* well-defined (as ∅) over zero worlds.
    """
    return intersect_worlds(
        (apply_query(query, instance) for instance in idb), query.arity
    )


def possible_answer(query: Query, idb: IDatabase) -> Instance:
    """Return the tuples of ``q(I)`` occurring in some world ``I ∈ I``.

    Over an *empty* set of worlds this returns the empty instance rather
    than raising: the union over zero sets is ∅, a perfectly well-defined
    answer — deliberately asymmetric with :func:`certain_answer`, whose
    intersection over zero worlds is vacuously "every tuple" and
    therefore raises :class:`~repro.errors.NoWorldsError`.
    """
    return union_worlds(
        (apply_query(query, instance) for instance in idb), query.arity
    )


def certain_answer_table(
    query: Query,
    table: Table,
    domain: Optional[Union[Domain, Sequence]] = None,
) -> Instance:
    """Certain answer of *query* over ``Mod(table)``.

    For tables over the infinite domain, pass the witness *domain* to
    restrict to (see :func:`repro.worlds.compare.witness_domain_for`).
    Raises :class:`~repro.errors.NoWorldsError` when ``Mod(table)`` is
    empty (see :func:`certain_answer`).
    """
    if not query.relation_names():
        # A query over constants alone never scans the table, so the
        # engine-evaluated answer would not inherit its global
        # condition/domains — but the semantics still quantify over
        # Mod(table): enumerate the input's worlds directly.
        return certain_answer(query, mod_of(table, domain))
    answered = _answered_table(query, table)
    return intersect_worlds(mod_of(answered, domain), answered.arity)


def possible_answer_table(
    query: Query,
    table: Table,
    domain: Optional[Union[Domain, Sequence]] = None,
) -> Instance:
    """Possible answer of *query* over ``Mod(table)``.

    Returns the empty instance when ``Mod(table)`` is empty (the union
    over zero worlds is ∅ — see :func:`possible_answer`).
    """
    if not query.relation_names():
        # See certain_answer_table: quantify over the input's worlds.
        return possible_answer(query, mod_of(table, domain))
    answered = _answered_table(query, table)
    return union_worlds(mod_of(answered, domain), answered.arity)


def _answered_table(query: Query, table: Table):
    """Evaluate ``q̄`` on the (coerced) table via the default engine.

    By Theorem 4, ``Mod(q̄(T)) = q(Mod(T))``, so the worlds of the
    answer table — usually far smaller than the input's — are exactly
    the per-world answers.  ``optimize=False`` matches the historical
    defaults of the other legacy shims; multi-relation queries get
    ``apply_query_to_ctable``'s diagnostic from the engine's
    single-table binding.
    """
    from repro.engine import default_engine
    from repro.tables.convert import ctable_of

    return default_engine().execute_single(
        query, ctable_of(table), simplify_conditions=False, optimize=False
    )


def mod_of(table: Table, domain: Optional[Union[Domain, Sequence]]) -> IDatabase:
    """``Mod(table)``, restricted to *domain* when one is given.

    Shared by the table-level answer functions here and the engine's
    ``Dataset`` worlds-method terminals.
    """
    if domain is not None:
        return table.mod_over(domain)
    return table.mod()
