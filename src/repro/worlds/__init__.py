"""Possible-worlds tooling: answers and semantic comparisons.

- :mod:`repro.worlds.answers` — certain and possible answers of queries
  over incomplete databases and tables,
- :mod:`repro.worlds.compare` — equality of incomplete databases and of
  table Mod-semantics, including infinite-domain comparisons via witness
  slices (the small-model reduction DESIGN.md documents).
"""

from repro.worlds.answers import (
    certain_answer,
    certain_answer_table,
    possible_answer,
    possible_answer_table,
)
from repro.worlds.symbolic_answers import (
    certain_answer_symbolic,
    possible_answer_symbolic,
)
from repro.worlds.compare import (
    closure_holds,
    ctables_equivalent,
    ctables_equivalent_symbolic,
    lemma1_holds,
    mod_equal_over,
    witness_domain_for,
    worlds_signature,
)

__all__ = [
    "certain_answer",
    "certain_answer_symbolic",
    "certain_answer_table",
    "closure_holds",
    "ctables_equivalent",
    "ctables_equivalent_symbolic",
    "lemma1_holds",
    "mod_equal_over",
    "possible_answer",
    "possible_answer_symbolic",
    "possible_answer_table",
    "witness_domain_for",
    "worlds_signature",
]
