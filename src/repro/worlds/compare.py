"""Semantic comparisons of tables and incomplete databases.

Over the infinite domain, ``Mod(T)`` is infinite, so equality of two
tables' semantics cannot be checked by enumeration of ``D``.  We use the
small-model property (see :mod:`repro.logic.equality_sat`): the
instances in ``Mod(T)`` are images of valuations, valuations matter only
through (a) which variables are equal to each other, (b) which variables
equal which constants — and every such pattern over the union of the two
tables' variables and constants is realized inside a finite *witness
domain* containing all the constants plus one fresh value per variable.
Comparing ``Mod`` restricted to that domain therefore decides full
equality.  :func:`witness_domain_for` builds the domain;
:func:`mod_equal_over` does the comparison.

Enumerating the witness domain is still exponential in the number of
variables, so it cannot scale past a handful of variables.
:func:`ctables_equivalent_symbolic` avoids enumeration entirely: it
groups rows by term tuple and proves per-tuple *condition* equivalence
with the SAT/BDD engines of :mod:`repro.logic.equivalence` — a
certificate of ``Mod``-equality whose cost scales with condition size,
not ``2^variables``.  :func:`ctables_equivalent` dispatches between the
two automatically: symbolic first, enumeration (with collapse-style
canonical world hashing, :func:`worlds_signature`) only to settle
negative symbolic answers within a small variable budget.

For closure (Theorem 4), :func:`lemma1_holds` checks the per-valuation
identity ``ν(q̄(T)) = q(ν(T))``, which is stronger than Mod-level
equality and cheaper to test; :func:`closure_holds` checks the Mod-level
consequence.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.domain import Domain
from repro.core.idatabase import IDatabase
from repro.core.instance import Instance
from repro.errors import UnsupportedOperationError
from repro.logic.atoms import Term, is_boolean_condition, is_equality_condition
from repro.logic.equality_sat import fresh_values
from repro.logic.equivalence import DEFAULT_ENGINE, equivalent_conditions
from repro.logic.syntax import BOTTOM, Formula, conj, disj
from repro.algebra.ast import Query
from repro.algebra.evaluate import apply_query
from repro.ctalgebra.translate import apply_query_to_ctable
from repro.tables.ctable import CTable

#: Above this many combined variables, :func:`ctables_equivalent` stops
#: settling negative symbolic answers by enumeration and trusts the
#: (conservative) symbolic verdict — enumeration is ``Θ(|domain|^vars)``.
#: Its probability twin is ``PROB_VARIABLE_BUDGET`` in
#: :mod:`repro.logic.counting`, where ``strategy="auto"`` switches from
#: Shannon expansion to compiled d-DNNF + weighted model counting the
#: same way — together they close ROADMAP item 1's "kill the
#: exponential" on both the equivalence and the probability side.
SYMBOLIC_VARIABLE_BUDGET = 8


def witness_domain_for(
    *tables: CTable,
    extra: int = 0,
    constants: Sequence[Hashable] = (),
) -> Domain:
    """Return a finite domain deciding Mod-level questions for *tables*.

    Contains every constant of every table (plus caller-supplied
    *constants*, e.g. those of a query under study), and one fresh value
    per variable across all tables, plus *extra* more.
    """
    all_constants = set(constants)
    variables = set()
    for table in tables:
        all_constants |= table.constants()
        variables |= table.variables()
    # Never produce an empty domain: a degenerate table with no
    # constants and no variables still needs one value to range over.
    fresh = fresh_values(max(1, len(variables) + extra))
    return Domain(sorted(all_constants, key=repr) + list(fresh))


def mod_equal_over(
    left: CTable,
    right: CTable,
    domain: Optional[Union[Domain, Sequence]] = None,
) -> bool:
    """Compare ``Mod(left)`` and ``Mod(right)`` over a common domain.

    With ``domain=None`` a joint witness domain is computed, making the
    comparison decide genuine infinite-domain equality.
    """
    if domain is None:
        domain = witness_domain_for(left, right)
    return left.mod_over(domain) == right.mod_over(domain)


def world_signature(instance: Instance) -> Tuple[int, FrozenSet]:
    """Return a canonical hashable key identifying one possible world.

    Collapse-style canonicalization (after ``collapse()`` in the
    folseparators model dedup): two valuations producing the same ground
    relation map to the same key, so enumerated worlds dedup by set
    membership without materializing :class:`IDatabase` objects.
    """
    return (instance.arity, instance.rows)


def worlds_signature(
    table: CTable, domain: Union[Domain, Sequence]
) -> FrozenSet[Tuple[int, FrozenSet]]:
    """Return the set of canonical world keys of ``Mod(table)`` over *domain*."""
    return frozenset(
        world_signature(world) for world in table.possible_worlds(domain)
    )


def _symbolic_eligible(table: CTable) -> bool:
    """True when symbolic condition equivalence matches Mod semantics.

    Two shapes qualify: infinite-domain tables whose conditions are pure
    equality logic (the paper's c-tables — decided by the small-model
    theory closure), and boolean c-tables (two-valued variables — plain
    propositional logic).  Finite-domain tables and infinite-domain
    tables mixing ``BoolVar`` atoms into domain-valued valuations keep
    the enumeration semantics.
    """
    if table.is_boolean():
        return True
    if table.domains is not None:
        return False
    return is_equality_condition(table.global_condition) and all(
        is_equality_condition(row.condition) for row in table.rows
    )


def _membership_conditions(table: CTable) -> Dict[Tuple[Term, ...], Formula]:
    """Group rows by term tuple; value = disjunction of the rows' conditions."""
    grouped: Dict[Tuple[Term, ...], List[Formula]] = {}
    for row in table.rows:
        grouped.setdefault(row.values, []).append(row.condition)
    return {values: disj(*conditions) for values, conditions in grouped.items()}


def ctables_equivalent_symbolic(
    left: CTable,
    right: CTable,
    engine: str = DEFAULT_ENGINE,
    *,
    strict: bool = True,
) -> bool:
    """Certify ``Mod(left) = Mod(right)`` by per-tuple condition equivalence.

    Rows are grouped by term tuple under the combined variable set; the
    tables are accepted when the global conditions are equivalent and,
    for every term tuple, the disjunctions of its row conditions (each
    taken under its table's global condition) are equivalent — a tuple
    present on one side only must have unsatisfiable membership.  Under
    every valuation the two tables then activate the same term tuples,
    so their ``Mod`` sets coincide over any domain: ``True`` is a proof.

    ``False`` is conservative: tables that disagree tuple-by-tuple can
    still enumerate to equal world sets (e.g. ``{t: b}`` vs ``{t: ¬b}``
    both describe "``t`` or nothing").  :func:`ctables_equivalent`
    settles such answers by enumeration when the variable budget allows.

    Cost scales with the number of distinct tuples and condition sizes —
    never with ``2^variables`` — which is what lifts the table-size caps
    in the differential harness (see the 100-variable pair in benchmark
    E34, far beyond any enumerable witness domain).

    With ``strict=False`` the Mod-semantics eligibility check is skipped
    and every ``BoolVar`` is interpreted as a two-valued proposition —
    the reading the semantic plan verifier wants for its abstract tables,
    where boolean variables *are* symbolic row-presence flags rather
    than domain-valued c-table variables.
    """
    if left.arity != right.arity:
        return False
    if strict:
        for table in (left, right):
            if not _symbolic_eligible(table):
                raise UnsupportedOperationError(
                    "symbolic equivalence needs pure-equality or boolean "
                    f"conditions over an unrestricted domain; got {table!r}"
                )
    left_global = left.global_condition
    right_global = right.global_condition
    if not equivalent_conditions(left_global, right_global, engine=engine):
        return False
    left_by_tuple = _membership_conditions(left)
    right_by_tuple = _membership_conditions(right)
    for values in left_by_tuple.keys() | right_by_tuple.keys():
        in_left = conj(left_global, left_by_tuple.get(values, BOTTOM))
        in_right = conj(right_global, right_by_tuple.get(values, BOTTOM))
        if not equivalent_conditions(in_left, in_right, engine=engine):
            return False
    return True


def ctables_equivalent(
    left: CTable,
    right: CTable,
    extra: int = 0,
    *,
    enumerate: Optional[bool] = None,
    engine: str = DEFAULT_ENGINE,
    variable_budget: int = SYMBOLIC_VARIABLE_BUDGET,
) -> bool:
    """Decide ``Mod(left) = Mod(right)`` over the infinite domain.

    By default the symbolic certificate is tried first and settles the
    question whenever it answers ``True``; a (conservative) ``False`` is
    re-checked by witness-domain enumeration only while the combined
    variable count stays within *variable_budget* — above it the
    symbolic verdict stands, because enumeration is exponential in the
    variables.  ``enumerate=True`` forces the enumeration engine
    (flagged outside oracle modules by lint EXP001); ``enumerate=False``
    forces the pure symbolic path.
    """
    if enumerate is True:
        return _enumerated_equivalent(left, right, extra)
    symbolic_ok = _symbolic_eligible(left) and _symbolic_eligible(right)
    if enumerate is False:
        return ctables_equivalent_symbolic(left, right, engine=engine)
    if not symbolic_ok:
        return _enumerated_equivalent(left, right, extra)
    if left.arity == right.arity and ctables_equivalent_symbolic(
        left, right, engine=engine
    ):
        return True
    if len(left.variables() | right.variables()) <= variable_budget:
        return _enumerated_equivalent(left, right, extra)
    return False


def _enumerated_equivalent(left: CTable, right: CTable, extra: int = 0) -> bool:
    """Witness-domain enumeration with canonical world-signature dedup."""
    if left.arity != right.arity:
        return False
    if left.is_boolean() and right.is_boolean():
        # Boolean conditions see domain values only through truthiness,
        # and the infinite domain realizes both truthiness classes, so
        # ``{False, True}`` is the exact witness domain.  The
        # equality-logic witness below (constants + fresh values) can
        # happen to be all-truthy, which would silently fix every
        # ``BoolVar`` to ⊤.
        domain: Union[Domain, Sequence] = (False, True)
    else:
        domain = witness_domain_for(left, right, extra=extra)
    return worlds_signature(left, domain) == worlds_signature(right, domain)


def lemma1_holds(
    query: Query,
    table: CTable,
    valuation: Mapping[str, Hashable],
    optimize: bool = False,
) -> bool:
    """Check Lemma 1 at one valuation: ``ν(q̄(T)) = q(ν(T))``.

    With ``optimize=True`` the identity is checked for the *optimized*
    plan — every rewrite is classically sound, so it must hold there
    too; the planner property tests rely on this.
    """
    translated = apply_query_to_ctable(query, table, optimize=optimize)
    left = translated.apply_valuation(valuation)
    right = apply_query(query, table.apply_valuation(valuation))
    return left == right


def closure_holds(
    query: Query,
    table: CTable,
    domain: Optional[Union[Domain, Sequence]] = None,
    optimize: bool = False,
) -> bool:
    """Check Theorem 4 at Mod level: ``Mod(q̄(T)) = q(Mod(T))``.

    The right-hand side is computed naively (per-world query evaluation),
    the left-hand side through the c-table algebra; with ``domain=None``
    the joint witness domain (including the query's constants) is used.
    """
    if domain is None:
        query_constants = [
            value
            for row_source in query.walk()
            for value in _query_node_constants(row_source)
        ]
        domain = witness_domain_for(table, constants=query_constants)
    translated = apply_query_to_ctable(query, table, optimize=optimize)
    via_algebra = translated.mod_over(domain)
    naive = IDatabase(
        (
            apply_query(query, instance)
            for instance in table.mod_over(domain)
        ),
        arity=query.arity,
    )
    return via_algebra == naive


def _query_node_constants(node) -> Sequence[Hashable]:
    """Collect constants appearing in a query node (ConstRel or Select)."""
    from repro.algebra.ast import ConstRel, Select
    from repro.logic.equality_sat import constants_of

    if isinstance(node, ConstRel):
        return [value for row in node.instance for value in row]
    if isinstance(node, Select):
        return sorted(constants_of(node.predicate), key=repr)
    return []
