"""Semantic comparisons of tables and incomplete databases.

Over the infinite domain, ``Mod(T)`` is infinite, so equality of two
tables' semantics cannot be checked by enumeration of ``D``.  We use the
small-model property (see :mod:`repro.logic.equality_sat`): the
instances in ``Mod(T)`` are images of valuations, valuations matter only
through (a) which variables are equal to each other, (b) which variables
equal which constants — and every such pattern over the union of the two
tables' variables and constants is realized inside a finite *witness
domain* containing all the constants plus one fresh value per variable.
Comparing ``Mod`` restricted to that domain therefore decides full
equality.  :func:`witness_domain_for` builds the domain;
:func:`mod_equal_over` does the comparison.

For closure (Theorem 4), :func:`lemma1_holds` checks the per-valuation
identity ``ν(q̄(T)) = q(ν(T))``, which is stronger than Mod-level
equality and cheaper to test; :func:`closure_holds` checks the Mod-level
consequence.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Sequence, Union

from repro.core.domain import Domain
from repro.core.idatabase import IDatabase
from repro.logic.equality_sat import fresh_values
from repro.algebra.ast import Query
from repro.algebra.evaluate import apply_query
from repro.ctalgebra.translate import apply_query_to_ctable
from repro.tables.ctable import CTable


def witness_domain_for(
    *tables: CTable,
    extra: int = 0,
    constants: Sequence[Hashable] = (),
) -> Domain:
    """Return a finite domain deciding Mod-level questions for *tables*.

    Contains every constant of every table (plus caller-supplied
    *constants*, e.g. those of a query under study), and one fresh value
    per variable across all tables, plus *extra* more.
    """
    all_constants = set(constants)
    variables = set()
    for table in tables:
        all_constants |= table.constants()
        variables |= table.variables()
    # Never produce an empty domain: a degenerate table with no
    # constants and no variables still needs one value to range over.
    fresh = fresh_values(max(1, len(variables) + extra))
    return Domain(sorted(all_constants, key=repr) + list(fresh))


def mod_equal_over(
    left: CTable,
    right: CTable,
    domain: Optional[Union[Domain, Sequence]] = None,
) -> bool:
    """Compare ``Mod(left)`` and ``Mod(right)`` over a common domain.

    With ``domain=None`` a joint witness domain is computed, making the
    comparison decide genuine infinite-domain equality.
    """
    if domain is None:
        domain = witness_domain_for(left, right)
    return left.mod_over(domain) == right.mod_over(domain)


def ctables_equivalent(left: CTable, right: CTable, extra: int = 0) -> bool:
    """Decide ``Mod(left) = Mod(right)`` over the infinite domain."""
    return mod_equal_over(
        left, right, witness_domain_for(left, right, extra=extra)
    )


def lemma1_holds(
    query: Query,
    table: CTable,
    valuation: Mapping[str, Hashable],
    optimize: bool = False,
) -> bool:
    """Check Lemma 1 at one valuation: ``ν(q̄(T)) = q(ν(T))``.

    With ``optimize=True`` the identity is checked for the *optimized*
    plan — every rewrite is classically sound, so it must hold there
    too; the planner property tests rely on this.
    """
    translated = apply_query_to_ctable(query, table, optimize=optimize)
    left = translated.apply_valuation(valuation)
    right = apply_query(query, table.apply_valuation(valuation))
    return left == right


def closure_holds(
    query: Query,
    table: CTable,
    domain: Optional[Union[Domain, Sequence]] = None,
    optimize: bool = False,
) -> bool:
    """Check Theorem 4 at Mod level: ``Mod(q̄(T)) = q(Mod(T))``.

    The right-hand side is computed naively (per-world query evaluation),
    the left-hand side through the c-table algebra; with ``domain=None``
    the joint witness domain (including the query's constants) is used.
    """
    if domain is None:
        query_constants = [
            value
            for row_source in query.walk()
            for value in _query_node_constants(row_source)
        ]
        domain = witness_domain_for(table, constants=query_constants)
    translated = apply_query_to_ctable(query, table, optimize=optimize)
    via_algebra = translated.mod_over(domain)
    naive = IDatabase(
        (
            apply_query(query, instance)
            for instance in table.mod_over(domain)
        ),
        arity=query.arity,
    )
    return via_algebra == naive


def _query_node_constants(node) -> Sequence[Hashable]:
    """Collect constants appearing in a query node (ConstRel or Select)."""
    from repro.algebra.ast import ConstRel, Select
    from repro.logic.equality_sat import constants_of

    if isinstance(node, ConstRel):
        return [value for row in node.instance for value in row]
    if isinstance(node, Select):
        return sorted(constants_of(node.predicate), key=repr)
    return []
