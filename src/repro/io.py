"""JSON serialization for conditions, c-tables and pc-tables.

The paper's motivating systems (Orchestra, SHARQ) ship representation
tables between sites, which needs a wire format.  This module provides
a stable JSON encoding for the core objects:

- terms and condition formulas (:func:`formula_to_json` /
  :func:`formula_from_json`),
- c-tables with domains and global conditions (:func:`ctable_to_json` /
  :func:`ctable_from_json`),
- pc-tables with their distributions (:func:`pctable_to_json` /
  :func:`pctable_from_json`) — probabilities travel as exact
  numerator/denominator pairs, never floats.

Only JSON-representable constants (strings, ints, bools, floats, None)
are supported; anything else raises at encode time rather than
producing an unreadable document.  Round-tripping is identity on all
supported tables (property-tested).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Hashable, List

from repro.errors import ReproError
from repro.logic.atoms import BoolVar, Const, Eq, Term, Var, boolvar
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    disj,
    neg,
)
from repro.tables.ctable import BooleanCTable, CRow, CTable


class SerializationError(ReproError):
    """A value or structure has no JSON representation (or vice versa)."""


_JSON_SCALARS = (str, int, float, bool, type(None))


def _check_scalar(value: Hashable):
    if not isinstance(value, _JSON_SCALARS):
        raise SerializationError(
            f"constant {value!r} of type {type(value).__name__} has no "
            "JSON representation"
        )
    return value


# ----------------------------------------------------------------------
# Terms and formulas
# ----------------------------------------------------------------------

def term_to_json(term: Term) -> Dict[str, Any]:
    """Encode a Var/Const term."""
    if isinstance(term, Var):
        return {"var": term.name}
    if isinstance(term, Const):
        return {"const": _check_scalar(term.value)}
    raise SerializationError(f"unknown term {term!r}")


def term_from_json(data: Dict[str, Any]) -> Term:
    """Decode a term."""
    if "var" in data:
        return Var(data["var"])
    if "const" in data:
        return Const(data["const"])
    raise SerializationError(f"not a term: {data!r}")


def formula_to_json(formula: Formula) -> Any:
    """Encode a condition formula."""
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Eq):
        return {
            "eq": [term_to_json(formula.left), term_to_json(formula.right)]
        }
    if isinstance(formula, BoolVar):
        return {"bool": formula.name}
    if isinstance(formula, Not):
        return {"not": formula_to_json(formula.child)}
    if isinstance(formula, And):
        return {"and": [formula_to_json(c) for c in formula.children]}
    if isinstance(formula, Or):
        return {"or": [formula_to_json(c) for c in formula.children]}
    raise SerializationError(f"unknown formula node {formula!r}")


def formula_from_json(data: Any) -> Formula:
    """Decode a condition formula (re-normalizing via smart constructors)."""
    if data is True:
        return TOP
    if data is False:
        return BOTTOM
    if not isinstance(data, dict):
        raise SerializationError(f"not a formula: {data!r}")
    if "eq" in data:
        left, right = data["eq"]
        from repro.logic.atoms import eq as eq_

        return eq_(term_from_json(left), term_from_json(right))
    if "bool" in data:
        return boolvar(data["bool"])
    if "not" in data:
        return neg(formula_from_json(data["not"]))
    if "and" in data:
        return conj(*(formula_from_json(c) for c in data["and"]))
    if "or" in data:
        return disj(*(formula_from_json(c) for c in data["or"]))
    raise SerializationError(f"not a formula: {data!r}")


# ----------------------------------------------------------------------
# c-tables
# ----------------------------------------------------------------------

def ctable_to_json(table: CTable) -> Dict[str, Any]:
    """Encode a c-table (plain, finite-domain, or boolean)."""
    payload: Dict[str, Any] = {
        "kind": "boolean-c-table" if isinstance(table, BooleanCTable)
        else "c-table",
        "arity": table.arity,
        "rows": [
            {
                "values": [term_to_json(term) for term in row.values],
                "condition": formula_to_json(row.condition),
            }
            for row in table.rows
        ],
    }
    if table.global_condition != TOP:
        payload["global"] = formula_to_json(table.global_condition)
    if not isinstance(table, BooleanCTable) and table.domains is not None:
        payload["domains"] = {
            name: [_check_scalar(value) for value in values]
            for name, values in table.domains.items()
        }
    return payload


def ctable_from_json(data: Dict[str, Any]) -> CTable:
    """Decode a c-table."""
    rows = [
        CRow(
            tuple(term_from_json(term) for term in row["values"]),
            formula_from_json(row.get("condition", True)),
        )
        for row in data.get("rows", [])
    ]
    global_condition = formula_from_json(data.get("global", True))
    kind = data.get("kind", "c-table")
    if kind == "boolean-c-table":
        return BooleanCTable(
            rows, arity=data["arity"], global_condition=global_condition
        )
    if kind != "c-table":
        raise SerializationError(f"unknown table kind {kind!r}")
    domains = data.get("domains")
    if domains is not None:
        domains = {name: tuple(values) for name, values in domains.items()}
    return CTable(
        rows,
        arity=data["arity"],
        domains=domains,
        global_condition=global_condition,
    )


# ----------------------------------------------------------------------
# pc-tables
# ----------------------------------------------------------------------

def _fraction_to_json(value: Fraction) -> List[int]:
    value = Fraction(value)
    return [value.numerator, value.denominator]


def _fraction_from_json(data: Any) -> Fraction:
    if isinstance(data, list) and len(data) == 2:
        return Fraction(data[0], data[1])
    raise SerializationError(f"not a fraction pair: {data!r}")


def pctable_to_json(pctable) -> Dict[str, Any]:
    """Encode a pc-table (or boolean pc-table) with exact probabilities."""
    from repro.prob.pctable import BooleanPCTable, PCTable

    if not isinstance(pctable, PCTable):
        raise SerializationError(f"not a pc-table: {pctable!r}")
    return {
        "kind": "boolean-pc-table"
        if isinstance(pctable, BooleanPCTable)
        else "pc-table",
        "table": ctable_to_json(pctable.table.without_domains()),
        "distributions": {
            name: [
                [_check_scalar(value), _fraction_to_json(weight)]
                for value, weight in distribution.items()
            ]
            for name, distribution in pctable.distributions.items()
        },
    }


def pctable_from_json(data: Dict[str, Any]):
    """Decode a pc-table."""
    from repro.prob.pctable import BooleanPCTable, PCTable

    table = ctable_from_json(data["table"])
    distributions = {
        name: {
            value: _fraction_from_json(weight)
            for value, weight in pairs
        }
        for name, pairs in data.get("distributions", {}).items()
    }
    if data.get("kind") == "boolean-pc-table":
        if not isinstance(table, BooleanCTable):
            table = BooleanCTable(
                table.rows,
                arity=table.arity,
                global_condition=table.global_condition,
            )
        return BooleanPCTable(table, distributions)
    return PCTable(table, distributions)


# ----------------------------------------------------------------------
# Strings / files
# ----------------------------------------------------------------------

def dumps(table, indent: int = None) -> str:
    """Serialize a (p)c-table to a JSON string."""
    from repro.prob.pctable import PCTable

    if isinstance(table, PCTable):
        return json.dumps(pctable_to_json(table), indent=indent)
    if isinstance(table, CTable):
        return json.dumps(ctable_to_json(table), indent=indent)
    raise SerializationError(f"no JSON encoding for {type(table).__name__}")


def loads(text: str):
    """Deserialize a (p)c-table from a JSON string."""
    data = json.loads(text)
    if data.get("kind", "").endswith("pc-table"):
        return pctable_from_json(data)
    return ctable_from_json(data)
