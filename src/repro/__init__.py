"""repro — Models for Incomplete and Probabilistic Information.

A from-scratch reproduction of Green & Tannen (EDBT 2006): c-tables and
the weaker representation systems of Sarma et al., the c-table algebra,
RA-/finite-completeness and algebraic completion, probability spaces
over instances, and probabilistic c-tables with closed query answering.

Quickstart — the session API (plans cached, any representation system)::

    from repro import CTable, Engine, Var, eq

    x = Var("x")
    engine = Engine()
    session = engine.session(V=CTable([((1, x), eq(x, 2))]))
    answers = session.query("pi[2](V)")   # lazy Dataset
    answers.collect()                     # the answer c-table q̄(T)
    answers.certain()                     # all from ONE evaluation
    answers.possible()
    answers.lineage((1,))

or the flat per-call functions (shims over a default engine)::

    from repro import CTable, Var, eq, rel, proj, apply_query_to_ctable

    x = Var("x")
    table = CTable([((1, x), eq(x, 2))])
    answer = apply_query_to_ctable(proj(rel("V", 2), [1]), table)

See ``examples/quickstart.py``, ``examples/engine_session.py`` and the
README for the full tour.
"""

from repro.errors import (
    ArityError,
    ConditionError,
    DomainError,
    FragmentError,
    NoWorldsError,
    ProbabilityError,
    QueryError,
    ReproError,
    TableError,
    UnsupportedOperationError,
    ValuationError,
)
from repro.core import Domain, IDatabase, InfiniteDomain, Instance, relation
from repro.logic import (
    BOTTOM,
    TOP,
    BoolVar,
    Const,
    Eq,
    Formula,
    Var,
    conj,
    disj,
    eq,
    evaluate,
    ne,
    neg,
)
from repro.algebra import (
    ConstRel,
    Query,
    RelVar,
    apply_query,
    col_eq,
    col_eq_const,
    col_ne,
    col_ne_const,
    diff,
    evaluate_query,
    in_fragment,
    intersect,
    proj,
    prod,
    rel,
    sel,
    singleton,
    union,
)
from repro.tables import (
    BooleanCTable,
    CRow,
    CTable,
    CoddTable,
    OrSet,
    OrSetRow,
    OrSetTable,
    QRow,
    QTable,
    RAPropTable,
    RSetsTable,
    RXorEquivTable,
    VTable,
    ctable_of,
)
from repro.algebra.parser import format_query, parse_query
from repro.ctalgebra import (
    apply_query_to_ctable,
    explain,
    optimize_plan,
    plan_for_query,
    translate_query,
)
from repro.provenance import (
    ctable_lineage,
    ctable_lineage_matches_provenance,
    lineage_formula,
    why_provenance,
)
from repro.completion import (
    boolean_ctable_for,
    codd_spju_completion,
    ctable_to_query,
    general_finite_completion,
    orset_pj_completion,
    qtable_ra_completion,
    verify_ra_definability,
    vtable_sp_completion,
    zk_table,
)
from repro.tables.normalize import normalize
from repro.worlds import (
    certain_answer,
    certain_answer_symbolic,
    certain_answer_table,
    closure_holds,
    ctables_equivalent,
    ctables_equivalent_symbolic,
    lemma1_holds,
    possible_answer,
    possible_answer_symbolic,
    possible_answer_table,
)
from repro.prob import (
    BooleanPCTable,
    DependentPCTable,
    ConjunctiveQuery,
    FiniteProbSpace,
    PCTable,
    PDatabase,
    POrSetTable,
    PQTable,
    PossibilisticCTable,
    PossibilisticDatabase,
    ProbRelation,
    VariableNetwork,
    answer_pctable,
    boolean_pctable_for,
    is_hierarchical,
    lineage_of,
    safe_plan_probability,
    tuple_probability_lineage,
    tuple_probability_naive,
    verify_possibilistic_closure,
    verify_prob_closure,
)
from repro.engine import (
    Dataset,
    Engine,
    ExecutionConfig,
    PreparedQuery,
    Session,
    default_engine,
    set_default_engine,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ArityError", "ConditionError", "DomainError", "FragmentError",
    "NoWorldsError", "ProbabilityError", "QueryError", "ReproError",
    "TableError", "UnsupportedOperationError", "ValuationError",
    # core
    "Domain", "IDatabase", "InfiniteDomain", "Instance", "relation",
    # logic
    "BOTTOM", "TOP", "BoolVar", "Const", "Eq", "Formula", "Var",
    "conj", "disj", "eq", "evaluate", "ne", "neg",
    # algebra
    "ConstRel", "Query", "RelVar", "apply_query", "col_eq", "col_eq_const",
    "col_ne", "col_ne_const", "diff", "evaluate_query", "in_fragment",
    "intersect", "proj", "prod", "rel", "sel", "singleton", "union",
    # tables
    "BooleanCTable", "CRow", "CTable", "CoddTable", "OrSet", "OrSetRow",
    "OrSetTable", "QRow", "QTable", "RAPropTable", "RSetsTable",
    "RXorEquivTable", "VTable", "ctable_of",
    # c-table algebra
    "apply_query_to_ctable", "explain", "optimize_plan", "plan_for_query",
    "translate_query",
    # parser & provenance (§9 extensions)
    "format_query", "parse_query", "ctable_lineage",
    "ctable_lineage_matches_provenance", "lineage_formula",
    "why_provenance",
    # completion
    "boolean_ctable_for", "codd_spju_completion", "ctable_to_query",
    "general_finite_completion", "orset_pj_completion",
    "qtable_ra_completion", "verify_ra_definability",
    "vtable_sp_completion", "zk_table",
    # worlds
    "certain_answer", "certain_answer_symbolic",
    "certain_answer_table", "closure_holds", "normalize",
    "possible_answer_symbolic",
    "ctables_equivalent", "ctables_equivalent_symbolic",
    "lemma1_holds", "possible_answer",
    "possible_answer_table",
    # prob
    "BooleanPCTable", "ConjunctiveQuery", "FiniteProbSpace", "PCTable",
    "PDatabase", "POrSetTable", "PQTable", "ProbRelation",
    "answer_pctable", "boolean_pctable_for", "is_hierarchical",
    "lineage_of", "safe_plan_probability", "tuple_probability_lineage",
    "tuple_probability_naive", "verify_prob_closure",
    "DependentPCTable", "VariableNetwork", "PossibilisticCTable",
    "PossibilisticDatabase", "verify_possibilistic_closure",
    # engine / session facade
    "Dataset", "Engine", "ExecutionConfig", "PreparedQuery", "Session",
    "default_engine", "set_default_engine",
    "__version__",
]
