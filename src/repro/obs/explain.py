"""EXPLAIN ANALYZE rendering: estimated vs actual, per operator.

Mirrors the tree layout of
:func:`repro.physical.lower.explain_physical`, but annotates every
operator with the actuals a :class:`~repro.obs.trace.TraceCollector`
gathered during one real execution: rows out (vs the planner's
estimate), wall time, morsel count and worker attribution for
parallel operators, and a **drift** flag on operators whose actual
cardinality diverges from the estimate by at least
:data:`DRIFT_THRESHOLD` — the feedback signal adaptive re-lowering
will key on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span, TraceCollector, Tracer
    from repro.physical.operators import PhysicalOp

from repro.obs.names import SPAN_EXECUTE, SPAN_OPTIMIZE, SPAN_PLAN, SPAN_VERIFY

#: An operator's actual cardinality this many times above (or below) its
#: estimate is flagged as drifted.
DRIFT_THRESHOLD = 4.0


def estimate_drift(est_rows: Optional[float], actual_rows: int) -> Optional[float]:
    """The symmetric est-vs-actual divergence ratio (>= 1.0), or None
    without an estimate.  Both sides are floored at half a row so empty
    results and sub-row estimates don't divide by zero or explode."""
    if est_rows is None:
        return None
    estimated = max(est_rows, 0.5)
    actual = max(float(actual_rows), 0.5)
    return max(actual / estimated, estimated / actual)


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    return f"{seconds * 1e3:.2f}ms"


def _find_spans(root: "Span", name: str) -> List["Span"]:
    found: List["Span"] = []
    stack = [root]
    while stack:
        span = stack.pop()
        if span.name == name:
            found.append(span)
        stack.extend(reversed(span.children))
    return found


def _plan_line(tracer: "Tracer") -> str:
    plans = _find_spans(tracer.root, SPAN_PLAN)
    if not plans:
        return "plan: reused (already built on this prepared query)"
    plan = plans[0]
    if plan.attrs.get("cached"):
        return "plan: cache hit"
    parts = [f"built in {_ms(plan.seconds)}"]
    optimize = _find_spans(plan, SPAN_OPTIMIZE)
    if optimize:
        parts.append(f"optimize {_ms(optimize[0].seconds)}")
    verifies = _find_spans(plan, SPAN_VERIFY)
    if verifies:
        mode = verifies[0].attrs.get("mode", "?")
        total = sum(span.seconds or 0.0 for span in verifies)
        parts.append(f"verify[{mode}] {_ms(total)} over {len(verifies)} checks")
    return "plan: " + ", ".join(parts)


def render_analyze(
    physical: "PhysicalOp",
    collector: "TraceCollector",
    tracer: "Tracer",
    *,
    executor: str,
    num_workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
    result_cached: Optional[bool] = None,
    drift_threshold: float = DRIFT_THRESHOLD,
) -> str:
    """Render the analyzed physical tree with header provenance lines."""
    header = f"EXPLAIN ANALYZE  (executor={executor}"
    if num_workers is not None:
        header += f", workers={num_workers}"
    if morsel_size is not None:
        header += f", morsel_size={morsel_size}"
    header += ")"
    lines = [header, _plan_line(tracer)]
    if result_cached is not None:
        lines.append(
            "result cache: hit (analyze re-executed anyway)"
            if result_cached
            else "result cache: miss"
        )
    executes = _find_spans(tracer.root, SPAN_EXECUTE)
    if executes:
        lines.append(f"execute: {_ms(executes[0].seconds)}")
    lines.append("")

    def annotate(op: "PhysicalOp") -> str:
        record = collector.lookup(op)
        est = f"est≈{op.est_rows:.1f}" if op.est_rows is not None else "est=?"
        if record is None:
            return f"{op.label()}  {est}  act=?"
        label = f"{op.label()}  {est}  act={record.rows_out}"
        label += f"  time={_ms(record.seconds)}"
        if record.morsels:
            label += f"  morsels={record.morsels} workers={len(record.workers)}"
        elif op.par_decision is not None:
            label += f"  [{op.par_decision}]"
        drift = estimate_drift(op.est_rows, record.rows_out)
        if drift is not None and drift >= drift_threshold:
            label += f"  [drift {drift:.1f}x]"
        return label

    def render(op: "PhysicalOp", prefix: str, child_prefix: str) -> None:
        lines.append(prefix + annotate(op))
        children = op.children()
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            render(child, child_prefix + connector, child_prefix + extension)

    render(physical, "", "")
    return "\n".join(lines)


__all__ = ["DRIFT_THRESHOLD", "estimate_drift", "render_analyze"]
