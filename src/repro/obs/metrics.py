"""Thread-safe metrics: counters, gauges, histograms, and cache stats.

Two registries exist: a process-wide default (module subsystems —
optimizer, SAT solver, knowledge compiler — report here) and a
per-`Engine` instance for query-level metrics.  Both are plain
`MetricsRegistry` objects; `Engine.metrics_snapshot()` merges the two
views together with the unified cache statistics.

`CacheStats` is the single hit/miss/eviction/invalidation counter
bundle shared by every cache in the system (plan, result, circuit, and
the memoized evaluation cache).  It can wrap an externally owned lock
so a cache that already serialises its structure can reuse the same
lock for its counters — the counters are then updated under exactly
the lock named by the cache's ``# guarded-by:`` annotations.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Protocol, Tuple


class LockLike(Protocol):
    """Structural type for `threading.Lock`/`RLock` used as context managers."""

    def __enter__(self) -> bool: ...

    def __exit__(self, exc_type: object, exc: object, tb: object) -> object: ...


#: Canonicalised label set: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]
#: Accepted label values at call sites.
Labels = Mapping[str, object]

_EMPTY_LABELS: LabelKey = ()


def _label_key(labels: Optional[Labels]) -> LabelKey:
    if not labels:
        return _EMPTY_LABELS
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _label_text(key: LabelKey) -> str:
    return ",".join(f"{name}={value}" for name, value in key)


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    Mutated only by `MetricsRegistry` while holding the registry lock.
    """

    __slots__ = ("count", "maximum", "minimum", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "max": self.maximum,
            "min": self.minimum,
            "sum": self.total,
        }


class MetricsRegistry:
    """Thread-safe registry of labelled counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, float]] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}  # guarded-by: _lock

    def counter(
        self, name: str, amount: float = 1.0, labels: Optional[Labels] = None
    ) -> None:
        """Increment the counter ``name`` (monotonic) by ``amount``."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, labels: Optional[Labels] = None) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = value

    def histogram(
        self, name: str, value: float, labels: Optional[Labels] = None
    ) -> None:
        """Record one observation of ``value`` under histogram ``name``."""
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            summary = series.get(key)
            if summary is None:
                summary = Histogram()
                series[key] = summary
            summary.observe(value)

    def counter_value(self, name: str, labels: Optional[Labels] = None) -> float:
        """Current value of one counter series (0.0 when never incremented)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0.0)

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Deterministic nested dict of every series, sorted by name/labels."""
        with self._lock:
            counters = {
                name: dict(sorted(series.items()))
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: dict(sorted(series.items()))
                for name, series in sorted(self._gauges.items())
            }
            histograms = {
                name: {key: summary.as_dict() for key, summary in sorted(series.items())}
                for name, series in sorted(self._histograms.items())
            }
        return {
            "counters": {
                name: {_label_text(key): value for key, value in series.items()}
                for name, series in counters.items()
            },
            "gauges": {
                name: {_label_text(key): value for key, value in series.items()}
                for name, series in gauges.items()
            },
            "histograms": {
                name: {_label_text(key): summary for key, summary in series.items()}
                for name, series in histograms.items()
            },
        }

    def clear(self) -> None:
        """Drop every recorded series (test isolation hook)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class CacheStats:
    """Unified hit/miss/eviction/invalidation counters for one cache.

    When ``lock`` is given (re-entrant for callers that mutate while
    already holding it), the counters share the owning cache's lock;
    otherwise a private lock is created.
    """

    __slots__ = ("_evictions", "_hits", "_invalidations", "_lock", "_misses")

    def __init__(self, lock: Optional[LockLike] = None) -> None:
        self._lock = lock if lock is not None else threading.RLock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock

    def hit(self) -> None:
        with self._lock:
            self._hits += 1

    def miss(self) -> None:
        with self._lock:
            self._misses += 1

    def evicted(self, count: int = 1) -> None:
        with self._lock:
            self._evictions += count

    def invalidated(self, count: int = 1) -> None:
        with self._lock:
            self._invalidations += count

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "evictions": self._evictions,
                "hits": self._hits,
                "invalidations": self._invalidations,
                "misses": self._misses,
            }


# The process-wide default registry.  Module-level subsystems (optimizer,
# SAT solver, d-DNNF compiler) have no Engine handle, so they report here
# via the free functions below; `Engine.metrics_snapshot()` folds this
# registry into its "process" section.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry shared by module-level subsystems."""
    return _GLOBAL


def counter(name: str, amount: float = 1.0, labels: Optional[Labels] = None) -> None:
    """Increment a counter on the process-wide registry."""
    _GLOBAL.counter(name, amount, labels)


def gauge(name: str, value: float, labels: Optional[Labels] = None) -> None:
    """Set a gauge on the process-wide registry."""
    _GLOBAL.gauge(name, value, labels)


def histogram(name: str, value: float, labels: Optional[Labels] = None) -> None:
    """Record a histogram observation on the process-wide registry."""
    _GLOBAL.histogram(name, value, labels)


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------


def _prometheus_labels(label_text: str) -> str:
    if not label_text:
        return ""
    rendered = ",".join(
        f'{pair.split("=", 1)[0]}="{pair.split("=", 1)[1]}"'
        for pair in label_text.split(",")
    )
    return "{" + rendered + "}"


def _registry_lines(
    snapshot: Mapping[str, Mapping[str, Mapping[str, object]]], prefix: str
) -> Iterator[str]:
    for name, series in snapshot.get("counters", {}).items():
        yield f"# TYPE {prefix}{name} counter"
        for label_text, value in series.items():
            yield f"{prefix}{name}{_prometheus_labels(label_text)} {value}"
    for name, series in snapshot.get("gauges", {}).items():
        yield f"# TYPE {prefix}{name} gauge"
        for label_text, value in series.items():
            yield f"{prefix}{name}{_prometheus_labels(label_text)} {value}"
    for name, series in snapshot.get("histograms", {}).items():
        yield f"# TYPE {prefix}{name} summary"
        for label_text, summary in series.items():
            if not isinstance(summary, Mapping):
                continue
            labels = _prometheus_labels(label_text)
            yield f"{prefix}{name}_count{labels} {summary.get('count', 0.0)}"
            yield f"{prefix}{name}_sum{labels} {summary.get('sum', 0.0)}"


def render_prometheus(
    snapshot: Mapping[str, object], prefix: str = "repro_"
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Accepts either a bare `MetricsRegistry.snapshot()` dict or the
    nested `Engine.metrics_snapshot()` dict (detected by its ``caches``
    key, whose per-cache stats become ``<prefix>cache_<stat>{cache=...}``
    gauges).
    """
    lines: List[str] = []
    caches = snapshot.get("caches")
    if isinstance(caches, Mapping):
        stat_names = sorted(
            {
                stat
                for stats in caches.values()
                if isinstance(stats, Mapping)
                for stat, value in stats.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
        )
        for stat in stat_names:
            lines.append(f"# TYPE {prefix}cache_{stat} gauge")
            for cache_name in sorted(caches):
                stats = caches[cache_name]
                if isinstance(stats, Mapping) and stat in stats:
                    lines.append(
                        f'{prefix}cache_{stat}{{cache="{cache_name}"}} {stats[stat]}'
                    )
        for section in ("engine", "process"):
            registry = snapshot.get(section)
            if isinstance(registry, Mapping):
                lines.extend(_registry_lines(registry, prefix))
    else:
        lines.extend(_registry_lines(snapshot, prefix))  # type: ignore[arg-type]
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "CacheStats",
    "Histogram",
    "LabelKey",
    "Labels",
    "LockLike",
    "MetricsRegistry",
    "counter",
    "gauge",
    "global_metrics",
    "histogram",
    "render_prometheus",
]
