"""Registered metric and span names.

Every metric or span emitted anywhere in the engine must use a constant
defined here — lint OBS001 rejects bare string literals at
``counter(...)``/``gauge(...)``/``histogram(...)``/``span(...)`` call
sites.  Centralising the names keeps the export surface
(`Engine.metrics_snapshot()`, the Prometheus renderer, JSON trace dumps)
stable across refactors: renaming a constant here is a visible,
greppable API change instead of a silent drift of dashboard keys.

Naming conventions follow Prometheus practice: counters end in
``_total``, base units are seconds, and label names are lowercase.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Span names — the hierarchical per-query trace.
# ---------------------------------------------------------------------------

#: Root span wrapping one prepared-query execution.
SPAN_QUERY = "query"
#: Text -> Query AST (only present when the query was prepared from text).
SPAN_PARSE = "parse"
#: Logical planning: translate + optimize (plan-cache provenance attr).
SPAN_PLAN = "plan"
#: The optimizer fixpoint inside planning (rule fire counts are metrics).
SPAN_OPTIMIZE = "optimize"
#: One plan-verifier invocation (attrs: mode, stage).
SPAN_VERIFY = "verify"
#: Logical plan -> physical operator tree.
SPAN_LOWER = "lower"
#: Physical (or interpreted) execution of the plan.
SPAN_EXECUTE = "execute"
#: One incremental refresh of a maintained materialized view
#: (attrs: mode in {build, delta, fallback, noop}, batches).
SPAN_REFRESH = "refresh"

# ---------------------------------------------------------------------------
# Per-Engine metrics.
# ---------------------------------------------------------------------------

#: Counter, labels {executor, cached}: prepared-query executions.
QUERIES_TOTAL = "queries_total"
#: Histogram, labels {executor}: wall seconds per executed (uncached) query.
QUERY_SECONDS = "query_seconds"
#: Counter, labels {op in {insert, delete, update}}: mutation-API calls.
IVM_MUTATIONS_TOTAL = "ivm_mutations_total"
#: Counter, labels {sign in {insert, delete}}: rows carried by signed
#: delta batches produced by the mutation API.
IVM_DELTA_ROWS_TOTAL = "ivm_delta_rows_total"
#: Counter, labels {mode in {build, delta, fallback, noop}}: refreshes
#: of maintained materialized views.
IVM_REFRESH_TOTAL = "ivm_refresh_total"
#: Histogram, labels {mode}: wall seconds per view refresh.
IVM_REFRESH_SECONDS = "ivm_refresh_seconds"

# ---------------------------------------------------------------------------
# Process-wide metrics (module-level subsystems shared by every engine).
# ---------------------------------------------------------------------------

#: Counter, labels {rule, outcome in {fired, no_fire}}: optimizer rule
#: applications observed by the rewrite fixpoint.
OPTIMIZER_RULES_TOTAL = "optimizer_rule_applications_total"
#: Counter: top-level DPLL satisfiability checks (`Solver.solve`).
SAT_SOLVE_TOTAL = "solver_sat_solve_total"
#: Counter: model-enumeration sweeps (`Solver.enumerate`).
SAT_ENUMERATE_TOTAL = "solver_sat_enumerate_total"
#: Counter: DPLL search-tree nodes (recursive `_dpll` entries).
DPLL_RECURSIONS_TOTAL = "solver_dpll_recursions_total"
#: Counter: SAT-backed condition-equivalence proofs.
EQUIV_SAT_TOTAL = "solver_equivalence_sat_total"
#: Counter: BDD-backed condition-equivalence proofs.
EQUIV_BDD_TOTAL = "solver_equivalence_bdd_total"
#: Counter: CNF -> d-DNNF knowledge compilations.
DDNNF_COMPILE_TOTAL = "solver_ddnnf_compile_total"
#: Counter: weighted model counts evaluated on compiled circuits.
WMC_COUNT_TOTAL = "solver_wmc_count_total"

#: Every registered name, for validation and tests.
REGISTERED_NAMES = frozenset(
    {
        SPAN_QUERY,
        SPAN_PARSE,
        SPAN_PLAN,
        SPAN_OPTIMIZE,
        SPAN_VERIFY,
        SPAN_LOWER,
        SPAN_EXECUTE,
        SPAN_REFRESH,
        QUERIES_TOTAL,
        QUERY_SECONDS,
        IVM_MUTATIONS_TOTAL,
        IVM_DELTA_ROWS_TOTAL,
        IVM_REFRESH_TOTAL,
        IVM_REFRESH_SECONDS,
        OPTIMIZER_RULES_TOTAL,
        SAT_SOLVE_TOTAL,
        SAT_ENUMERATE_TOTAL,
        DPLL_RECURSIONS_TOTAL,
        EQUIV_SAT_TOTAL,
        EQUIV_BDD_TOTAL,
        DDNNF_COMPILE_TOTAL,
        WMC_COUNT_TOTAL,
    }
)

__all__ = [
    "DDNNF_COMPILE_TOTAL",
    "DPLL_RECURSIONS_TOTAL",
    "EQUIV_BDD_TOTAL",
    "EQUIV_SAT_TOTAL",
    "IVM_DELTA_ROWS_TOTAL",
    "IVM_MUTATIONS_TOTAL",
    "IVM_REFRESH_SECONDS",
    "IVM_REFRESH_TOTAL",
    "OPTIMIZER_RULES_TOTAL",
    "QUERIES_TOTAL",
    "QUERY_SECONDS",
    "REGISTERED_NAMES",
    "SAT_ENUMERATE_TOTAL",
    "SAT_SOLVE_TOTAL",
    "SPAN_EXECUTE",
    "SPAN_LOWER",
    "SPAN_OPTIMIZE",
    "SPAN_PARSE",
    "SPAN_PLAN",
    "SPAN_QUERY",
    "SPAN_REFRESH",
    "SPAN_VERIFY",
    "WMC_COUNT_TOTAL",
]
