"""Span-based per-query tracing and per-operator execution collection.

A `Tracer` records a hierarchical trace of one prepared-query
execution: parse -> plan (optimize, verify) -> lower -> execute.  The
executing code never holds a tracer reference — it asks
`current_tracer()` / `trace_span(...)`, which resolve through a
context variable so nested and concurrent queries each see their own
trace.

The disabled path is the common one and must cost almost nothing: a
module-level activation counter is checked first (one integer
comparison, no allocation) before the context variable is ever
consulted.  Per-operator actuals are cheaper still: physical execution
checks ``ctx.collector is None`` and takes the untouched fast path.

A `TraceCollector` accumulates per-physical-operator actuals (rows
in/out, batches, wall time, morsel counts, worker attribution) during
one execution.  Row counts and operator identities are deterministic
across the serial, vectorized, and parallel executors; timings and
worker names naturally vary and are excluded from determinism
guarantees.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Set

from repro.obs.names import SPAN_QUERY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.physical.operators import Batch, PhysicalOp

_ACTIVATION_LOCK = threading.Lock()
# Number of currently active tracers across all threads; the disabled
# fast path is a single read of this integer.
_ACTIVE_TRACERS = 0  # guarded-by: _ACTIVATION_LOCK [writes]

_CURRENT: ContextVar[Optional["Tracer"]] = ContextVar("repro_tracer", default=None)


def tracing_active() -> bool:
    """True when at least one tracer is active somewhere in the process."""
    return _ACTIVE_TRACERS > 0


def current_tracer() -> Optional["Tracer"]:
    """The tracer active in this context, or None (the cheap common case)."""
    if _ACTIVE_TRACERS == 0:
        return None
    return _CURRENT.get()


class Span:
    """One named, timed node in a trace tree."""

    __slots__ = ("attrs", "children", "name", "seconds")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.seconds: Optional[float] = None
        self.children: List["Span"] = []

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        """JSON-ready dict; ``timings=False`` yields the deterministic view."""
        out: Dict[str, Any] = {"name": self.name}
        if timings and self.seconds is not None:
            out["seconds"] = self.seconds
        if self.attrs:
            out["attrs"] = dict(sorted(self.attrs.items()))
        if self.children:
            out["children"] = [child.to_dict(timings) for child in self.children]
        return out


class Tracer:
    """Builds one trace tree.  Not thread-safe: spans are opened and
    closed on the query's scheduling thread only (cross-thread operator
    attribution goes through `TraceCollector` instead)."""

    __slots__ = ("_stack", "root")

    def __init__(self, **attrs: Any) -> None:
        self.root = Span(SPAN_QUERY, dict(attrs))
        self._stack: List[Span] = [self.root]

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a timed child span for the duration of the ``with`` body."""
        node = Span(name, dict(attrs))
        self._stack[-1].children.append(node)
        self._stack.append(node)
        started = perf_counter()
        try:
            yield node
        finally:
            node.seconds = perf_counter() - started
            self._stack.pop()

    def event(self, name: str, seconds: Optional[float] = None, **attrs: Any) -> Span:
        """Append a pre-measured (or instantaneous) leaf span."""
        node = Span(name, dict(attrs))
        node.seconds = seconds
        self._stack[-1].children.append(node)
        return node

    def count(self, key: str, amount: int = 1) -> None:
        """Bump an integer attribute on the innermost open span.

        The optimizer uses this to accumulate per-rule fire/no-fire
        counts onto the ``optimize`` span without threading the span
        through every rewrite function.
        """
        attrs = self._stack[-1].attrs
        attrs[key] = int(attrs.get(key, 0)) + amount

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as `current_tracer()` and time the root span."""
        global _ACTIVE_TRACERS
        token = _CURRENT.set(self)
        with _ACTIVATION_LOCK:
            _ACTIVE_TRACERS += 1
        started = perf_counter()
        try:
            yield self
        finally:
            self.root.seconds = perf_counter() - started
            with _ACTIVATION_LOCK:
                _ACTIVE_TRACERS -= 1
            _CURRENT.reset(token)

    def to_dict(self, timings: bool = True) -> Dict[str, Any]:
        return self.root.to_dict(timings)

    def to_json(self, timings: bool = True, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(timings), indent=indent, sort_keys=True)


@contextmanager
def trace_span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Open a span on the active tracer, or do nothing when tracing is off."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as node:
        yield node


class OperatorRecord:
    """Accumulated actuals for one physical operator instance.

    Mutated only through `TraceCollector` methods (under its lock).
    """

    __slots__ = (
        "batches",
        "calls",
        "label",
        "morsels",
        "rows_in",
        "rows_out",
        "seconds",
        "workers",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.calls = 0
        self.batches = 0
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0
        self.morsels = 0
        self.workers: Set[str] = set()

    def as_dict(self, timings: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "batches": self.batches,
            "calls": self.calls,
            "morsels": self.morsels,
            "operator": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }
        if timings:
            out["seconds"] = self.seconds
            out["workers"] = sorted(self.workers)
        return out


class TraceCollector:
    """Per-execution sink for operator actuals, keyed by operator identity."""

    __slots__ = ("_lock", "_records")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[int, OperatorRecord] = {}  # guarded-by: _lock

    def open(self, op: "PhysicalOp") -> OperatorRecord:
        """The record for ``op``, created on first use."""
        key = id(op)
        with self._lock:
            record = self._records.get(key)
            if record is None:
                record = OperatorRecord(op.label())
                self._records[key] = record
            return record

    def record(
        self,
        op: "PhysicalOp",
        inputs: tuple["Batch", ...],
        output: "Batch",
        seconds: float,
    ) -> None:
        """Account one completed `compute` call for ``op``."""
        rows_in = sum(len(batch) for batch in inputs)
        record = self.open(op)
        with self._lock:
            record.calls += 1
            record.batches += len(inputs)
            record.rows_in += rows_in
            record.rows_out += len(output)
            record.seconds += seconds

    def add_morsels(self, record: OperatorRecord, count: int) -> None:
        with self._lock:
            record.morsels += count

    def note_worker(self, record: OperatorRecord, worker: str) -> None:
        with self._lock:
            record.workers.add(worker)

    def lookup(self, op: "PhysicalOp") -> Optional[OperatorRecord]:
        with self._lock:
            return self._records.get(id(op))

    def summary(
        self, root: Optional["PhysicalOp"] = None, timings: bool = True
    ) -> List[Dict[str, Any]]:
        """Operator records as dicts — in pre-order of ``root`` when given
        (deterministic), else in first-touch order."""
        if root is None:
            with self._lock:
                return [rec.as_dict(timings) for rec in self._records.values()]
        out: List[Dict[str, Any]] = []
        stack: List["PhysicalOp"] = [root]
        while stack:
            op = stack.pop()
            record = self.lookup(op)
            if record is not None:
                out.append(record.as_dict(timings))
            stack.extend(reversed(op.children()))
        return out


__all__ = [
    "OperatorRecord",
    "Span",
    "TraceCollector",
    "Tracer",
    "current_tracer",
    "trace_span",
    "tracing_active",
]
