"""`repro.obs` — engine observability: metrics, tracing, EXPLAIN ANALYZE.

Three small layers, all dependency-free (stdlib only) so every other
subsystem may import them without cycles:

- :mod:`repro.obs.names` — the registered constant table of metric and
  span names (lint OBS001 rejects bare string literals at call sites);
- :mod:`repro.obs.metrics` — thread-safe `MetricsRegistry` (counters,
  gauges, histograms with labels; one process-wide default plus one per
  `Engine`), the unified `CacheStats` counter bundle every cache in the
  system reports through, and a Prometheus text renderer;
- :mod:`repro.obs.trace` — span-based `Tracer` (hierarchical per-query
  traces: parse → plan/optimize/verify → lower → execute) and
  `TraceCollector` (per-physical-operator actuals: rows, batches,
  morsels, worker attribution), both with a no-op fast path costing one
  integer comparison when disabled;
- :mod:`repro.obs.explain` — the EXPLAIN ANALYZE renderer joining the
  planner's estimates with the collector's actuals, flagging ≥4×
  estimate drift per operator.

Enable per-query tracing with ``ExecutionConfig(trace=True)`` or
``REPRO_TRACE=1``; read the result back via ``Engine.last_trace()``
(JSON-ready dict).  ``Engine.metrics_snapshot()`` returns the stable
merged view; ``render_prometheus`` turns it into text exposition.
"""

from repro.obs.explain import DRIFT_THRESHOLD, estimate_drift, render_analyze
from repro.obs.metrics import (
    CacheStats,
    MetricsRegistry,
    global_metrics,
    render_prometheus,
)
from repro.obs.trace import (
    OperatorRecord,
    Span,
    TraceCollector,
    Tracer,
    current_tracer,
    trace_span,
    tracing_active,
)

__all__ = [
    "CacheStats",
    "DRIFT_THRESHOLD",
    "MetricsRegistry",
    "OperatorRecord",
    "Span",
    "TraceCollector",
    "Tracer",
    "current_tracer",
    "estimate_drift",
    "global_metrics",
    "render_analyze",
    "render_prometheus",
    "trace_span",
    "tracing_active",
]
