"""The (unnamed) relational algebra: AST, evaluation, fragments.

The paper uses the unnamed perspective with positional columns.  This
package defines the expression AST (:mod:`repro.algebra.ast`), the
selection-predicate language shared with c-table conditions
(:mod:`repro.algebra.predicates`), the evaluator over conventional
instances (:mod:`repro.algebra.evaluate`), and the fragment
classification (SP, PJ, SPJU, S⁺P, PU, S⁺PJ, RA) that the algebraic
completion theorems quantify over (:mod:`repro.algebra.fragments`).
"""

from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.algebra.predicates import (
    col,
    col_eq,
    col_eq_const,
    col_ne,
    col_ne_const,
    eval_predicate,
    instantiate_predicate,
    predicate_columns,
    predicate_is_positive,
)
from repro.algebra.evaluate import apply_query, evaluate_query
from repro.algebra.fragments import (
    FRAGMENT_PJ,
    FRAGMENT_PU,
    FRAGMENT_RA,
    FRAGMENT_SP,
    FRAGMENT_SPJU,
    FRAGMENT_SPLUS_P,
    FRAGMENT_SPLUS_PJ,
    Fragment,
    classify,
    in_fragment,
)
from repro.algebra.parser import format_query, parse_query
from repro.algebra.builders import (
    diff,
    intersect,
    proj,
    prod,
    rel,
    sel,
    singleton,
    union,
)

__all__ = [
    "ConstRel",
    "Difference",
    "FRAGMENT_PJ",
    "FRAGMENT_PU",
    "FRAGMENT_RA",
    "FRAGMENT_SP",
    "FRAGMENT_SPJU",
    "FRAGMENT_SPLUS_P",
    "FRAGMENT_SPLUS_PJ",
    "Fragment",
    "Intersection",
    "Product",
    "Project",
    "Query",
    "RelVar",
    "Select",
    "Union",
    "apply_query",
    "classify",
    "col",
    "col_eq",
    "col_eq_const",
    "col_ne",
    "col_ne_const",
    "diff",
    "eval_predicate",
    "format_query",
    "evaluate_query",
    "in_fragment",
    "instantiate_predicate",
    "parse_query",
    "intersect",
    "predicate_columns",
    "predicate_is_positive",
    "proj",
    "prod",
    "rel",
    "sel",
    "singleton",
    "union",
]
