"""Relational-algebra expression AST (unnamed perspective).

Operators follow the paper: projection ``π_ℓ``, selection ``σ_c``, cross
product ``×``, union ``∪``, difference ``−``, intersection ``∩``, input
relation names, and constant relations (the singletons ``{c}`` the
Theorem 1 construction multiplies together).  Column lists may repeat and
reorder indexes, exactly as ``π_{5,1,2}`` does in Example 4.

Expressions are immutable and hashable.  Arity checking happens at
construction where possible; expressions referencing input relation
names resolve arity through the name's declared arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import ArityError, QueryError
from repro.core.instance import Instance
from repro.logic.syntax import Formula
from repro.algebra.predicates import check_predicate


class Query:
    """Base class of relational-algebra expressions."""

    __slots__ = ()

    @property
    def arity(self) -> int:
        """Return the output arity of the expression."""
        raise NotImplementedError

    def children(self) -> Tuple["Query", ...]:
        """Return the immediate sub-expressions."""
        return ()

    def walk(self) -> Iterator["Query"]:
        """Yield every sub-expression including self (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def relation_names(self) -> Dict[str, int]:
        """Return the input relation names used, with their arities."""
        names: Dict[str, int] = {}
        for node in self.walk():
            if isinstance(node, RelVar):
                existing = names.get(node.name)
                if existing is not None and existing != node.rel_arity:
                    raise ArityError(
                        f"relation {node.name!r} used with arities "
                        f"{existing} and {node.rel_arity}"
                    )
                names[node.name] = node.rel_arity
        return names

    def size(self) -> int:
        """Return the number of operator nodes in the expression."""
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class RelVar(Query):
    """An input relation name with a declared arity."""

    name: str
    rel_arity: int

    __slots__ = ("name", "rel_arity")

    def __post_init__(self) -> None:
        if self.rel_arity < 0:
            raise ArityError(f"arity must be non-negative, got {self.rel_arity}")

    @property
    def arity(self) -> int:
        return self.rel_arity

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstRel(Query):
    """A constant relation, e.g. the singleton ``{(1,)}``."""

    instance: Instance

    __slots__ = ("instance",)

    @property
    def arity(self) -> int:
        return self.instance.arity

    def __repr__(self) -> str:
        rows = list(self.instance)
        if len(rows) == 1 and len(rows[0]) == 1:
            return f"{{{rows[0][0]!r}}}"
        return repr(self.instance)


@dataclass(frozen=True)
class Project(Query):
    """Projection onto a list of (possibly repeated) column indexes."""

    child: Query
    columns: Tuple[int, ...]

    __slots__ = ("child", "columns")

    def __post_init__(self) -> None:
        bad = [c for c in self.columns if c < 0 or c >= self.child.arity]
        if bad:
            raise QueryError(
                f"projection columns {bad} out of range for arity "
                f"{self.child.arity}"
            )

    @property
    def arity(self) -> int:
        return len(self.columns)

    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        cols = ",".join(str(c + 1) for c in self.columns)
        return f"π[{cols}]({self.child!r})"


@dataclass(frozen=True)
class Select(Query):
    """Selection by a predicate over the child's columns."""

    child: Query
    predicate: Formula

    __slots__ = ("child", "predicate")

    def __post_init__(self) -> None:
        check_predicate(self.predicate, self.child.arity)

    @property
    def arity(self) -> int:
        return self.child.arity

    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"σ[{self.predicate!r}]({self.child!r})"


@dataclass(frozen=True)
class Product(Query):
    """Cross product of two expressions."""

    left: Query
    right: Query

    __slots__ = ("left", "right")

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


class _SameArityBinary(Query):
    """Shared machinery for union/difference/intersection."""

    __slots__ = ()

    def _check(self) -> None:
        left: Query = self.left  # type: ignore[attr-defined]
        right: Query = self.right  # type: ignore[attr-defined]
        if left.arity != right.arity:
            raise ArityError(
                f"arity mismatch: {left.arity} vs {right.arity} in "
                f"{type(self).__name__}"
            )

    @property
    def arity(self) -> int:
        return self.left.arity  # type: ignore[attr-defined]

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class Union(_SameArityBinary):
    """Set union of two same-arity expressions."""

    left: Query
    right: Query

    __slots__ = ("left", "right")

    def __post_init__(self) -> None:
        self._check()

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True)
class Difference(_SameArityBinary):
    """Set difference of two same-arity expressions."""

    left: Query
    right: Query

    __slots__ = ("left", "right")

    def __post_init__(self) -> None:
        self._check()

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


@dataclass(frozen=True)
class Intersection(_SameArityBinary):
    """Set intersection of two same-arity expressions."""

    left: Query
    right: Query

    __slots__ = ("left", "right")

    def __post_init__(self) -> None:
        self._check()

    def __repr__(self) -> str:
        return f"({self.left!r} ∩ {self.right!r})"
