"""Relational-algebra fragments.

The algebraic-completion theorems quantify over *fragments* of RA named
by the operators they allow: the paper's SPJU, SP, PJ, S⁺P, PU and S⁺PJ.
Reading the letters:

- ``P`` — projection;
- ``J`` — join.  In the unnamed algebra a (natural/equi)join is a cross
  product followed by a *positive selection whose atoms equate columns*
  (no constants, no negation) — exactly what the paper's Theorem 6
  constructions use under the label PJ (e.g. ``π σ_{k+1=k+2} (S × T)``);
- ``S⁺`` — positive selection: equalities over columns *and constants*,
  combined with ∧/∨ but no negation (Theorem 6.4's ``σ_{2='i'}``);
- ``S`` — full selection, negation allowed (Theorem 5.2's ``ψᵢ``);
- ``U`` — union.  Difference and intersection appear only in full RA.

Selection strength is therefore a four-level scale
``none < join < positive < full``; :func:`classify` computes the profile
of an expression and :func:`in_fragment` checks membership.  The
completion constructions in :mod:`repro.completion` assert their outputs
stay inside the fragment the corresponding theorem promises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.algebra.predicates import (
    is_column_var,
    predicate_is_positive,
)
from repro.logic.atoms import Eq
from repro.logic.syntax import walk

_SELECTION_LEVELS = {"none": 0, "join": 1, "positive": 2, "full": 3}


@dataclass(frozen=True)
class Fragment:
    """An RA fragment: which operators are permitted.

    ``selection`` is one of ``"none"``, ``"join"``, ``"positive"``,
    ``"full"`` (each level includes the previous).  Constant relations
    and input relation names are always allowed — the paper's
    constructions use singleton constants freely in every fragment
    (e.g. Theorem 1's SPJU query).
    """

    name: str
    selection: str = "none"
    projection: bool = False
    product: bool = False
    union: bool = False
    difference: bool = False
    intersection: bool = False

    def allows(self, other: "FragmentUse") -> bool:
        """Return True when a usage profile fits inside this fragment."""
        if _SELECTION_LEVELS[other.selection] > _SELECTION_LEVELS[self.selection]:
            return False
        if other.projection and not self.projection:
            return False
        if other.product and not self.product:
            return False
        if other.union and not self.union:
            return False
        if other.difference and not self.difference:
            return False
        if other.intersection and not self.intersection:
            return False
        return True


@dataclass(frozen=True)
class FragmentUse:
    """The operator usage profile of a concrete expression."""

    selection: str
    projection: bool
    product: bool
    union: bool
    difference: bool
    intersection: bool


FRAGMENT_SP = Fragment("SP", selection="full", projection=True)
FRAGMENT_PJ = Fragment("PJ", selection="join", projection=True, product=True)
FRAGMENT_PU = Fragment("PU", projection=True, union=True)
FRAGMENT_SPJU = Fragment(
    "SPJU", selection="full", projection=True, product=True, union=True
)
FRAGMENT_SPLUS_P = Fragment("S+P", selection="positive", projection=True)
FRAGMENT_SPLUS_PJ = Fragment(
    "S+PJ", selection="positive", projection=True, product=True
)
FRAGMENT_RA = Fragment(
    "RA",
    selection="full",
    projection=True,
    product=True,
    union=True,
    difference=True,
    intersection=True,
)

NAMED_FRAGMENTS = {
    fragment.name: fragment
    for fragment in (
        FRAGMENT_SP,
        FRAGMENT_PJ,
        FRAGMENT_PU,
        FRAGMENT_SPJU,
        FRAGMENT_SPLUS_P,
        FRAGMENT_SPLUS_PJ,
        FRAGMENT_RA,
    )
}


def selection_level(predicate) -> str:
    """Classify a selection predicate: 'none', 'join', 'positive' or 'full'.

    'join' means positive with only column-to-column equality atoms;
    'positive' allows constants in the equalities; 'full' allows
    negation.
    """
    from repro.logic.syntax import Top

    if isinstance(predicate, Top):
        return "none"
    if not predicate_is_positive(predicate):
        return "full"
    for node in walk(predicate):
        if isinstance(node, Eq):
            if not (is_column_var(node.left) and is_column_var(node.right)):
                return "positive"
    return "join"


def classify(query: Query) -> FragmentUse:
    """Compute the usage profile of *query*."""
    selection = "none"
    projection = product = union = difference = intersection = False
    for node in query.walk():
        if isinstance(node, Select):
            level = selection_level(node.predicate)
            if _SELECTION_LEVELS[level] > _SELECTION_LEVELS[selection]:
                selection = level
        elif isinstance(node, Project):
            projection = True
        elif isinstance(node, Product):
            product = True
        elif isinstance(node, Union):
            union = True
        elif isinstance(node, Difference):
            difference = True
        elif isinstance(node, Intersection):
            intersection = True
        elif not isinstance(node, (RelVar, ConstRel)):
            raise TypeError(f"unknown query node {node!r}")
    return FragmentUse(
        selection=selection,
        projection=projection,
        product=product,
        union=union,
        difference=difference,
        intersection=intersection,
    )


def in_fragment(query: Query, fragment: Fragment) -> bool:
    """Return True when *query* uses only operators allowed by *fragment*."""
    return fragment.allows(classify(query))
