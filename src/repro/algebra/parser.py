"""A small text parser for relational-algebra expressions.

Accepts the paper's notation in ASCII form, so Example 4's query can be
written almost verbatim::

    parse_query(
        "pi[1,2,3]({1} x {2} x V)"
        " + pi[1,2,3](sigma[2=3 & 4!='2']({3} x V))"
        " + pi[5,1,2](sigma[3!='1' | 3!=4]({4} x {5} x V))",
        {"V": 3},
    )

Grammar (columns are 1-based, as in the paper; quoted or numeric
literals are constants)::

    query   := term (('+' | '-' | '&') term)*        union/difference/intersection
    term    := factor ('x' factor)*                   cross product
    factor  := 'pi' '[' cols ']' '(' query ')'
             | 'sigma' '[' pred ']' '(' query ')'
             | '{' literal (',' literal)* '}'         constant tuple
             | NAME                                   input relation
             | '(' query ')'
    pred    := disj;  disj := conj ('|' conj)*;  conj := atom ('&' atom)*
    atom    := operand ('=' | '!=') operand | '(' pred ')'
    operand := column number | quoted/numeric literal

Parsing is recursive descent over a hand-rolled tokenizer — no
dependencies, precise error positions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import QueryError, nearest_name
from repro.core.instance import Instance
from repro.logic.atoms import Const
from repro.logic.syntax import Formula, conj as conj_, disj as disj_, neg
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.algebra.predicates import col


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+)
  | (?P<string>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>!=|[=\[\](){},+\-&|x])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"pi", "sigma", "x"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} at column {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value in _KEYWORDS:
            kind = value
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str, relations: Mapping[str, int]) -> None:
        self._tokens = _tokenize(text)
        self._index = 0
        self._relations = dict(relations)

    # -- token utilities ------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise QueryError(
                f"expected {kind!r} at column {token.position}, "
                f"found {token.text!r}"
            )
        return self._advance()

    def _match(self, kind: str) -> Optional[_Token]:
        if self._peek().kind == kind:
            return self._advance()
        return None

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Query:
        query = self._query()
        token = self._peek()
        if token.kind != "eof":
            raise QueryError(
                f"trailing input at column {token.position}: {token.text!r}"
            )
        return query

    def _query(self) -> Query:
        left = self._term()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text == "+":
                self._advance()
                left = Union(left, self._term())
            elif token.kind == "op" and token.text == "-":
                self._advance()
                left = Difference(left, self._term())
            elif token.kind == "op" and token.text == "&":
                self._advance()
                left = Intersection(left, self._term())
            else:
                return left

    def _term(self) -> Query:
        left = self._factor()
        while self._peek().kind == "x":
            self._advance()
            left = Product(left, self._factor())
        return left

    def _factor(self) -> Query:
        token = self._peek()
        if token.kind == "pi":
            self._advance()
            self._expect_op("[")
            columns = self._column_list()
            self._expect_op("]")
            self._expect_op("(")
            child = self._query()
            self._expect_op(")")
            return Project(child, columns)
        if token.kind == "sigma":
            self._advance()
            self._expect_op("[")
            predicate = self._predicate()
            self._expect_op("]")
            self._expect_op("(")
            child = self._query()
            self._expect_op(")")
            return Select(child, predicate)
        if token.kind == "op" and token.text == "{":
            return self._constant()
        if token.kind == "op" and token.text == "(":
            self._advance()
            child = self._query()
            self._expect_op(")")
            return child
        if token.kind == "name":
            self._advance()
            arity = self._relations.get(token.text)
            if arity is None:
                hint = nearest_name(token.text, sorted(self._relations))
                raise QueryError(
                    f"unknown relation {token.text!r} at column "
                    f"{token.position}; declare its arity{hint}"
                )
            return RelVar(token.text, arity)
        raise QueryError(
            f"unexpected token {token.text!r} at column {token.position}"
        )

    def _expect_op(self, symbol: str) -> None:
        token = self._peek()
        if token.kind == "op" and token.text == symbol:
            self._advance()
            return
        raise QueryError(
            f"expected {symbol!r} at column {token.position}, "
            f"found {token.text!r}"
        )

    def _column_list(self) -> Tuple[int, ...]:
        columns = [self._column()]
        while self._peek().kind == "op" and self._peek().text == ",":
            self._advance()
            columns.append(self._column())
        return tuple(columns)

    def _column(self) -> int:
        token = self._expect("number")
        index = int(token.text)
        if index < 1:
            raise QueryError(
                f"columns are 1-based; got {index} at column {token.position}"
            )
        return index - 1

    def _constant(self) -> ConstRel:
        self._expect_op("{")
        values = [self._literal()]
        while self._peek().kind == "op" and self._peek().text == ",":
            self._advance()
            values.append(self._literal())
        self._expect_op("}")
        return ConstRel(Instance([tuple(values)]))

    def _literal(self):
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return int(token.text)
        if token.kind == "string":
            self._advance()
            return token.text[1:-1]
        raise QueryError(
            f"expected a literal at column {token.position}, "
            f"found {token.text!r}"
        )

    # -- predicates ---------------------------------------------------------
    def _predicate(self) -> Formula:
        return self._disjunction()

    def _disjunction(self) -> Formula:
        parts = [self._conjunction()]
        while self._peek().kind == "op" and self._peek().text == "|":
            self._advance()
            parts.append(self._conjunction())
        return disj_(*parts)

    def _conjunction(self) -> Formula:
        parts = [self._atom()]
        while self._peek().kind == "op" and self._peek().text == "&":
            self._advance()
            parts.append(self._atom())
        return conj_(*parts)

    def _atom(self) -> Formula:
        token = self._peek()
        if token.kind == "op" and token.text == "(":
            self._advance()
            inner = self._predicate()
            self._expect_op(")")
            return inner
        left = self._operand()
        operator = self._peek()
        if operator.kind == "op" and operator.text in ("=", "!="):
            self._advance()
        else:
            raise QueryError(
                f"expected '=' or '!=' at column {operator.position}"
            )
        right = self._operand()
        from repro.logic.atoms import eq

        atom = eq(left, right)
        return neg(atom) if operator.text == "!=" else atom

    def _operand(self):
        token = self._peek()
        if token.kind == "number":
            # Bare numbers are column references (the paper's style);
            # quote constants: sigma[4!='2'].
            self._advance()
            index = int(token.text)
            if index < 1:
                raise QueryError(
                    f"columns are 1-based; got {index} at column "
                    f"{token.position}"
                )
            return col(index - 1)
        if token.kind == "string":
            self._advance()
            return Const(token.text[1:-1])
        raise QueryError(
            f"expected a column or quoted constant at column "
            f"{token.position}, found {token.text!r}"
        )


def parse_query(text: str, relations: Mapping[str, int]) -> Query:
    """Parse *text* into a :class:`~repro.algebra.ast.Query`.

    *relations* declares the arity of each input relation name.  Columns
    are 1-based (matching the paper); constants inside selection
    predicates must be quoted (``sigma[4!='2']``) to distinguish them
    from column references.
    """
    return _Parser(text, relations).parse()


def format_query(query: Query) -> str:
    """Render a query back into parseable text (inverse of the parser)."""
    if isinstance(query, RelVar):
        return query.name
    if isinstance(query, ConstRel):
        rows = list(query.instance)
        if len(rows) != 1:
            raise QueryError(
                "only single-tuple constant relations have text syntax"
            )
        inner = ", ".join(_format_literal(value) for value in rows[0])
        return f"{{{inner}}}"
    if isinstance(query, Project):
        columns = ",".join(str(index + 1) for index in query.columns)
        return f"pi[{columns}]({format_query(query.child)})"
    if isinstance(query, Select):
        return (
            f"sigma[{_format_predicate(query.predicate)}]"
            f"({format_query(query.child)})"
        )
    if isinstance(query, Product):
        return f"{_maybe_paren(query.left)} x {_maybe_paren(query.right)}"
    if isinstance(query, Union):
        return f"{format_query(query.left)} + {format_query(query.right)}"
    if isinstance(query, Difference):
        return f"{format_query(query.left)} - {_maybe_paren(query.right)}"
    if isinstance(query, Intersection):
        return f"{_maybe_paren(query.left)} & {_maybe_paren(query.right)}"
    raise QueryError(f"cannot format query node {query!r}")


def _maybe_paren(query: Query) -> str:
    text = format_query(query)
    if isinstance(query, (Union, Difference, Intersection)):
        return f"({text})"
    return text


def _format_literal(value) -> str:
    if isinstance(value, int):
        return str(value)
    return f"'{value}'"


def _format_predicate(predicate: Formula) -> str:
    from repro.logic.atoms import Eq
    from repro.logic.syntax import And, Bottom, Not, Or, Top
    from repro.algebra.predicates import column_index, is_column_var

    def term_text(term) -> str:
        if is_column_var(term):
            return str(column_index(term) + 1)
        return _format_literal(term.value)

    if isinstance(predicate, Top):
        return "1=1"
    if isinstance(predicate, Bottom):
        return "1!=1"
    if isinstance(predicate, Eq):
        return f"{term_text(predicate.left)}={term_text(predicate.right)}"
    if isinstance(predicate, Not) and isinstance(predicate.child, Eq):
        child = predicate.child
        return f"{term_text(child.left)}!={term_text(child.right)}"
    if isinstance(predicate, And):
        return " & ".join(
            _format_atom_or_paren(child) for child in predicate.children
        )
    if isinstance(predicate, Or):
        return " | ".join(
            _format_atom_or_paren(child) for child in predicate.children
        )
    raise QueryError(f"cannot format predicate {predicate!r}")


def _format_atom_or_paren(predicate: Formula) -> str:
    from repro.logic.atoms import Eq
    from repro.logic.syntax import Not

    text = _format_predicate(predicate)
    if isinstance(predicate, Eq) or (
        isinstance(predicate, Not) and isinstance(predicate.child, Eq)
    ):
        return text
    return f"({text})"
