"""Evaluation of relational-algebra expressions over instances.

This is the classical semantics ``q(I)`` the paper takes for granted:
set-based, positional, over conventional finite instances.  It is the
baseline the c-table algebra is verified against (Lemma 1: for every
valuation, ``ν(q̄(T)) = q(ν(T))``) and the engine behind naive
possible-worlds evaluation (benchmark E08's baseline).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import QueryError
from repro.core.instance import Instance
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.algebra.predicates import eval_predicate


def evaluate_query(query: Query, env: Mapping[str, Instance]) -> Instance:
    """Evaluate *query* with input relations bound by *env*.

    Raises :class:`~repro.errors.QueryError` when a referenced relation is
    missing or bound at the wrong arity.
    """
    if isinstance(query, RelVar):
        instance = env.get(query.name)
        if instance is None:
            raise QueryError(f"no relation bound for name {query.name!r}")
        if instance.arity != query.rel_arity:
            raise QueryError(
                f"relation {query.name!r} bound at arity {instance.arity}, "
                f"expected {query.rel_arity}"
            )
        return instance
    if isinstance(query, ConstRel):
        return query.instance
    if isinstance(query, Project):
        child = evaluate_query(query.child, env)
        rows = {
            tuple(row[index] for index in query.columns) for row in child.rows
        }
        return Instance(rows, arity=len(query.columns))
    if isinstance(query, Select):
        child = evaluate_query(query.child, env)
        rows = {
            row for row in child.rows if eval_predicate(query.predicate, row)
        }
        return Instance(rows, arity=child.arity)
    if isinstance(query, Product):
        return evaluate_query(query.left, env).cross(
            evaluate_query(query.right, env)
        )
    if isinstance(query, Union):
        return evaluate_query(query.left, env).union(
            evaluate_query(query.right, env)
        )
    if isinstance(query, Difference):
        return evaluate_query(query.left, env).difference(
            evaluate_query(query.right, env)
        )
    if isinstance(query, Intersection):
        return evaluate_query(query.left, env).intersection(
            evaluate_query(query.right, env)
        )
    raise QueryError(f"unknown query node {query!r}")


def apply_query(query: Query, instance: Instance) -> Instance:
    """Evaluate a single-input query on *instance*.

    The query must reference exactly one relation name (of matching
    arity); constant-only queries are also accepted.
    """
    names = query.relation_names()
    if len(names) > 1:
        raise QueryError(
            f"apply_query expects a single input relation, found {sorted(names)}"
        )
    if not names:
        return evaluate_query(query, {})
    (name, arity), = names.items()
    if arity != instance.arity:
        raise QueryError(
            f"query expects arity {arity}, instance has arity {instance.arity}"
        )
    return evaluate_query(query, {name: instance})
