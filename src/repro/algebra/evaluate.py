"""Evaluation of relational-algebra expressions over instances.

This is the classical semantics ``q(I)`` the paper takes for granted:
set-based, positional, over conventional finite instances.  It is the
baseline the c-table algebra is verified against (Lemma 1: for every
valuation, ``ν(q̄(T)) = q(ν(T))``) and the engine behind naive
possible-worlds evaluation (benchmark E08's baseline).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import QueryError
from repro.core.instance import Instance
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)
from repro.logic.syntax import TOP
from repro.algebra.predicates import eval_predicate, split_equijoin


def evaluate_query(query: Query, env: Mapping[str, Instance]) -> Instance:
    """Evaluate *query* with input relations bound by *env*.

    Raises :class:`~repro.errors.QueryError` when a referenced relation is
    missing or bound at the wrong arity.
    """
    if isinstance(query, RelVar):
        instance = env.get(query.name)
        if instance is None:
            raise QueryError(f"no relation bound for name {query.name!r}")
        if instance.arity != query.rel_arity:
            raise QueryError(
                f"relation {query.name!r} bound at arity {instance.arity}, "
                f"expected {query.rel_arity}"
            )
        return instance
    if isinstance(query, ConstRel):
        return query.instance
    if isinstance(query, Project):
        child = evaluate_query(query.child, env)
        rows = {
            tuple(row[index] for index in query.columns) for row in child.rows
        }
        return Instance(rows, arity=len(query.columns))
    if isinstance(query, Select):
        if isinstance(query.child, Product):
            joined = _hash_join(query, env)
            if joined is not None:
                return joined
        child = evaluate_query(query.child, env)
        rows = {
            row for row in child.rows if eval_predicate(query.predicate, row)
        }
        return Instance(rows, arity=child.arity)
    if isinstance(query, Product):
        return evaluate_query(query.left, env).cross(
            evaluate_query(query.right, env)
        )
    if isinstance(query, Union):
        return evaluate_query(query.left, env).union(
            evaluate_query(query.right, env)
        )
    if isinstance(query, Difference):
        return evaluate_query(query.left, env).difference(
            evaluate_query(query.right, env)
        )
    if isinstance(query, Intersection):
        return evaluate_query(query.left, env).intersection(
            evaluate_query(query.right, env)
        )
    raise QueryError(f"unknown query node {query!r}")


def _hash_join(query: Select, env: Mapping[str, Instance]):
    """Selection-over-product as a hash join, when the predicate allows.

    When the predicate's top-level conjuncts equate left columns with
    right columns, partition the right rows on those columns and probe
    with the left rows instead of materializing the full cross product;
    any residual conjuncts filter the surviving pairs.  Returns None when
    the predicate contains no cross-operand equality (the generic path
    applies then).
    """
    product = query.child
    pairs, residual = split_equijoin(query.predicate, product.left.arity)
    if not pairs:
        return None
    left = evaluate_query(product.left, env)
    right = evaluate_query(product.right, env)
    left_columns = tuple(i for i, _ in pairs)
    right_columns = tuple(j for _, j in pairs)
    buckets = {}
    for row in right.rows:
        key = tuple(row[j] for j in right_columns)
        buckets.setdefault(key, []).append(row)
    trivial = residual == TOP
    rows = set()
    for row in left.rows:
        key = tuple(row[i] for i in left_columns)
        for match in buckets.get(key, ()):
            # The dict probe compares identity-first (so e.g. the same NaN
            # object matches itself); re-check with the == semantics the
            # predicate language uses so the fast path agrees with the
            # nested loop exactly.
            if not all(row[i] == match[j] for i, j in pairs):
                continue
            combined = row + match
            if trivial or eval_predicate(residual, combined):
                rows.add(combined)
    return Instance(rows, arity=product.arity)


def apply_query(query: Query, instance: Instance) -> Instance:
    """Evaluate a single-input query on *instance*.

    The query must reference exactly one relation name (of matching
    arity); constant-only queries are also accepted.
    """
    names = query.relation_names()
    if len(names) > 1:
        raise QueryError(
            f"apply_query expects a single input relation, found {sorted(names)}"
        )
    if not names:
        return evaluate_query(query, {})
    (name, arity), = names.items()
    if arity != instance.arity:
        raise QueryError(
            f"query expects arity {arity}, instance has arity {instance.arity}"
        )
    return evaluate_query(query, {name: instance})
