"""Convenience constructors for relational-algebra expressions.

These mirror the paper's notation closely enough that Example 4's query

    q(V) := π₁₂₃({1}×{2}×V) ∪ π₁₂₃(σ₂₌₃,₄≠'2'({3}×V)) ∪ π₅₁₂(σ₃≠'1',₃≠₄({4}×{5}×V))

transcribes almost symbol-for-symbol (see ``examples/paper_tour.py``).
Columns here are 0-based; the paper's subscripts are 1-based.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.instance import Instance
from repro.logic.syntax import Formula, conj
from repro.algebra.ast import (
    ConstRel,
    Difference,
    Intersection,
    Product,
    Project,
    Query,
    RelVar,
    Select,
    Union,
)


def rel(name: str, arity: int) -> RelVar:
    """An input relation name of the given arity."""
    return RelVar(name, arity)


def singleton(*values: Hashable) -> ConstRel:
    """The constant relation containing the single tuple *values*.

    ``singleton(1)`` is the paper's ``{1}``; ``singleton(4, 5)`` is
    ``{4} × {5}`` pre-multiplied.
    """
    return ConstRel(Instance([tuple(values)]))


def const_rel(rows: Iterable[Sequence[Hashable]], arity: int = None) -> ConstRel:
    """A constant relation with the given rows."""
    return ConstRel(Instance(rows, arity=arity))


def proj(child: Query, columns: Sequence[int]) -> Project:
    """Projection onto 0-based *columns* (repeats and reorders allowed)."""
    return Project(child, tuple(columns))


def sel(child: Query, *predicates: Formula) -> Select:
    """Selection by the conjunction of *predicates*."""
    return Select(child, conj(*predicates))


def prod(first: Query, *rest: Query) -> Query:
    """Left-nested cross product of one or more expressions."""
    result = first
    for expression in rest:
        result = Product(result, expression)
    return result


def union(first: Query, *rest: Query) -> Query:
    """Left-nested union of one or more same-arity expressions."""
    result = first
    for expression in rest:
        result = Union(result, expression)
    return result


def diff(left: Query, right: Query) -> Difference:
    """Set difference."""
    return Difference(left, right)


def intersect(left: Query, right: Query) -> Intersection:
    """Set intersection."""
    return Intersection(left, right)
