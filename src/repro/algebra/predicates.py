"""Selection predicates over positional columns.

A selection predicate is a boolean combination of equalities between
columns and constants, e.g. the paper's ``σ_{2=3, 4≠'2'}`` in Example 4.
Rather than invent a parallel formula language, predicates reuse the
condition ASTs from :mod:`repro.logic`: column ``i`` (0-based) is encoded
as the reserved variable ``@i``.  The payoff is that the c-table algebra
obtains symbolic selection for free — instantiating a predicate with a
tuple of terms (:func:`instantiate_predicate`) is a plain substitution
and yields a c-table condition.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.logic.atoms import Const, Eq, Term, Var, eq, ne
from repro.logic.evaluation import evaluate, substitute
from repro.logic.syntax import (
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    conj,
    is_atom,
    walk,
)

_COLUMN_PREFIX = "@"


def col(index: int) -> Var:
    """Return the term denoting column *index* (0-based)."""
    if index < 0:
        raise QueryError(f"column index must be non-negative, got {index}")
    return Var(f"{_COLUMN_PREFIX}{index}")


def is_column_var(term: Term) -> bool:
    """Return True when *term* is a column variable produced by :func:`col`."""
    return isinstance(term, Var) and term.name.startswith(_COLUMN_PREFIX)


def column_index(term: Term) -> int:
    """Return the column index encoded by a column variable."""
    if not is_column_var(term):
        raise QueryError(f"not a column variable: {term!r}")
    return int(term.name[len(_COLUMN_PREFIX):])


def col_eq(left: int, right: int) -> Formula:
    """Predicate: column *left* equals column *right*."""
    return eq(col(left), col(right))


def col_eq_const(index: int, value: Hashable) -> Formula:
    """Predicate: column *index* equals the constant *value*."""
    return eq(col(index), Const(value))


def col_ne(left: int, right: int) -> Formula:
    """Predicate: column *left* differs from column *right*."""
    return ne(col(left), col(right))


def col_ne_const(index: int, value: Hashable) -> Formula:
    """Predicate: column *index* differs from the constant *value*."""
    return ne(col(index), Const(value))


def predicate_columns(predicate: Formula) -> Set[int]:
    """Return the set of column indexes the predicate mentions."""
    columns: Set[int] = set()
    for node in walk(predicate):
        if isinstance(node, Eq):
            for term in (node.left, node.right):
                if is_column_var(term):
                    columns.add(column_index(term))
        elif is_atom(node):
            raise QueryError(
                f"selection predicates allow only equality atoms, got {node!r}"
            )
    return columns


def check_predicate(predicate: Formula, arity: int) -> None:
    """Validate that *predicate* only references columns below *arity*."""
    out_of_range = {
        index for index in predicate_columns(predicate) if index >= arity
    }
    if out_of_range:
        raise QueryError(
            f"predicate references columns {sorted(out_of_range)} but the "
            f"input arity is {arity}"
        )
    for node in walk(predicate):
        if isinstance(node, Eq):
            for term in (node.left, node.right):
                if isinstance(term, Var) and not is_column_var(term):
                    raise QueryError(
                        f"predicate contains a non-column variable {term!r}"
                    )


def predicate_is_positive(predicate: Formula) -> bool:
    """True when the predicate uses no negation (the S⁺ fragment).

    The paper's S⁺P / S⁺PJ completion results use selections built from
    equalities combined with ∧/∨ only.
    """
    return not any(
        isinstance(node, (Not, Bottom)) for node in walk(predicate)
    )


def split_equijoin(
    predicate: Formula, left_arity: int
) -> "Tuple[Tuple[Tuple[int, int], ...], Formula]":
    """Split a predicate over a product into equijoin pairs + residual.

    For a selection directly above a product whose left operand has
    *left_arity* columns, return ``(pairs, residual)`` where *pairs* are
    ``(left_column, right_column)`` index pairs (the right index local to
    the right operand) taken from the predicate's top-level conjuncts of
    the form ``column_i = column_j`` with ``i`` on the left side and
    ``j`` on the right, and *residual* is the conjunction of everything
    else.  ``conj(pairs as equalities, residual)`` is the original
    predicate, so evaluating pairs by hash partitioning and the residual
    per surviving row is equivalent to the blind nested loop.
    """
    conjuncts = (
        predicate.children if isinstance(predicate, And) else (predicate,)
    )
    pairs = []
    residual = []
    for part in conjuncts:
        if (
            isinstance(part, Eq)
            and is_column_var(part.left)
            and is_column_var(part.right)
        ):
            low, high = sorted(
                (column_index(part.left), column_index(part.right))
            )
            if low < left_arity <= high:
                pairs.append((low, high - left_arity))
                continue
        residual.append(part)
    return tuple(pairs), conj(*residual)


def eval_predicate(predicate: Formula, row: Sequence[Hashable]) -> bool:
    """Evaluate *predicate* on a concrete tuple."""
    valuation = {col(index).name: value for index, value in enumerate(row)}
    return evaluate(predicate, valuation)


def instantiate_predicate(
    predicate: Formula, terms: Sequence[Term]
) -> Formula:
    """Substitute the tuple's *terms* for the predicate's columns.

    When the terms are all constants the result folds to ``true`` or
    ``false``; when they contain c-table variables the result is exactly
    the condition ``c(t)`` of Theorem 4's lifted selection.
    """
    mapping = {col(index).name: term for index, term in enumerate(terms)}
    missing = {
        index
        for index in predicate_columns(predicate)
        if col(index).name not in mapping
    }
    if missing:
        raise QueryError(
            f"tuple of arity {len(terms)} cannot instantiate predicate "
            f"columns {sorted(missing)}"
        )
    return substitute(predicate, mapping)


def shift_predicate(predicate: Formula, offset: int) -> Formula:
    """Return the predicate with every column index shifted by *offset*.

    Useful when rewriting selections over products.
    """
    if isinstance(predicate, (Top, Bottom)):
        return predicate
    if isinstance(predicate, Eq):
        def shift(term: Term) -> Term:
            if is_column_var(term):
                return col(column_index(term) + offset)
            return term

        return eq(shift(predicate.left), shift(predicate.right))
    if isinstance(predicate, Not):
        from repro.logic.syntax import neg

        return neg(shift_predicate(predicate.child, offset))
    if isinstance(predicate, And):
        from repro.logic.syntax import conj

        return conj(*(shift_predicate(child, offset) for child in predicate.children))
    if isinstance(predicate, Or):
        from repro.logic.syntax import disj

        return disj(*(shift_predicate(child, offset) for child in predicate.children))
    raise QueryError(f"cannot shift predicate node {predicate!r}")
