"""Signed delta batches: the unit of change flowing into maintained views.

A mutation of a registered relation (``Session.insert`` / ``delete`` /
``update``) is described by one :class:`DeltaBatch`: two columnar
:class:`~repro.physical.batch.Batch` fragments — one tagged ``+`` for
inserted rows, one tagged ``−`` for deleted rows — each aligned with a
tuple of *row ids*.  Row ids are assigned once, monotonically, when a
row enters a relation (registration numbers the initial rows ``0..n-1``;
every later insert takes fresh ids), and they never recycle.  They are
the backbone of the maintenance layer's determinism story: re-executing
a plan from scratch visits a relation's rows in registration-then-insert
order, which is exactly ascending row-id order, so every maintained
operator keeps its state sorted by (tuples of) row ids and materializes
in the same order a rerun would produce.

Conditions inside the batches are the interned formula objects of
:mod:`repro.logic.syntax` — the delta carries the *identical* condition
objects the mutated table holds, so composing them through the lifted
operators yields the identical interned results a rerun composes.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.physical.batch import Batch
from repro.tables.ctable import CRow, CTable


class DeltaBatch:
    """One relation's signed change: deleted rows out, inserted rows in.

    Deletions are applied before insertions — an ``update`` is one batch
    whose delete half removes the old rows and whose insert half adds
    the replacements, and applying the batch atomically (rather than as
    two batches) is what makes one-by-one and batched mutation sequences
    land in identical view states.
    """

    __slots__ = ("relation", "delete_ids", "deletes", "insert_ids", "inserts")

    def __init__(
        self,
        relation: str,
        delete_ids: Tuple[int, ...],
        deletes: Batch,
        insert_ids: Tuple[int, ...],
        inserts: Batch,
    ) -> None:
        if len(delete_ids) != len(deletes):
            raise ValueError(
                f"{len(delete_ids)} delete ids for {len(deletes)} rows"
            )
        if len(insert_ids) != len(inserts):
            raise ValueError(
                f"{len(insert_ids)} insert ids for {len(inserts)} rows"
            )
        self.relation = relation
        self.delete_ids = delete_ids
        self.deletes = deletes
        self.insert_ids = insert_ids
        self.inserts = inserts

    @classmethod
    def from_rows(
        cls,
        relation: str,
        table: CTable,
        deleted: Tuple[Tuple[int, CRow], ...],
        inserted: Tuple[Tuple[int, CRow], ...],
    ) -> "DeltaBatch":
        """Build the signed batch for a mutation of *table*.

        *deleted* and *inserted* pair each row with its row id; the
        columnar halves inherit the (post-mutation) table's metadata.
        """
        domains = table.domains
        global_condition = table.global_condition
        return cls(
            relation,
            tuple(row_id for row_id, _ in deleted),
            Batch.from_rows(
                tuple(row for _, row in deleted),
                table.arity,
                domains=domains,
                global_condition=global_condition,
            ),
            tuple(row_id for row_id, _ in inserted),
            Batch.from_rows(
                tuple(row for _, row in inserted),
                table.arity,
                domains=domains,
                global_condition=global_condition,
            ),
        )

    def __len__(self) -> int:
        return len(self.delete_ids) + len(self.insert_ids)

    def deleted_rows(self) -> Iterator[Tuple[int, CRow]]:
        """Yield ``(row_id, row)`` for the ``−`` half, in batch order."""
        for row_id, values, condition in zip(
            self.delete_ids, self.deletes.rows(), self.deletes.conditions
        ):
            yield row_id, CRow(values, condition)

    def inserted_rows(self) -> Iterator[Tuple[int, CRow]]:
        """Yield ``(row_id, row)`` for the ``+`` half, in batch order."""
        for row_id, values, condition in zip(
            self.insert_ids, self.inserts.rows(), self.inserts.conditions
        ):
            yield row_id, CRow(values, condition)

    def __repr__(self) -> str:
        return (
            f"DeltaBatch({self.relation!r}, -{len(self.delete_ids)}, "
            f"+{len(self.insert_ids)})"
        )
