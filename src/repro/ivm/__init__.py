"""Incremental view maintenance: signed deltas through the lifted algebra.

The mutation API (:meth:`repro.engine.session.Session.insert` /
``delete`` / ``update``) turns each data change into a
:class:`~repro.ivm.delta.DeltaBatch` — columnar signed row batches with
interned per-row conditions — and every standing prepared query's
:class:`~repro.ivm.view.MaterializedView` folds those batches into its
per-operator state, keeping the materialized answer structurally
identical to a full re-execution of the same plan (Lemma 1 makes the
per-operator condition composition exact; position keys make the row
order exact).
"""

from repro.ivm.delta import DeltaBatch
from repro.ivm.view import MaterializedView, NodeDelta

__all__ = ["DeltaBatch", "MaterializedView", "NodeDelta"]
