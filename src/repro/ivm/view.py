"""Maintained materialized views: signed deltas through the lifted plan.

A :class:`MaterializedView` shadows one optimized logical plan with a
tree of *operator states* — one state per plan position, each holding
the rows that operator would output plus whatever auxiliary structure
its delta rule needs (hash buckets for joins, disjunction groups for
projections, a tuple index for difference/intersection).  A mutation of
a registered relation arrives as a :class:`~repro.ivm.delta.DeltaBatch`
and is propagated bottom-up: each state consumes its children's signed
row deltas, updates itself, and emits its own delta; subtrees no delta
reaches do no work at all.

Determinism contract (the whole point)
--------------------------------------

The maintained result is **structurally identical** to re-executing the
view's plan from scratch on the mutated tables — the same rows carrying
the *same interned condition objects*, in the same order, under the
same domains and global condition.  Order is reproduced positionally:
every state keys its rows by a tuple of integers whose ascending order
equals the row order a from-scratch run of that operator would produce:

- a scan keys rows by ``(row_id,)`` — registration-then-insert order is
  exactly how a rerun sees the relation;
- ``σ̄`` and ``−̄``/``∩̄`` preserve their child's keys (they filter or
  annotate rows in place);
- ``π̄`` keys each disjunction group by its smallest member key (first
  occurrence order) and rebuilds the group's disjunction in member-key
  order, matching ``project_bar``'s input-order grouping;
- ``×̄``/``⋈̄`` key a pair ``left ++ (g,) ++ right`` where the middle
  group bit reproduces ``join_bar``'s candidate order — for a left row
  with constant join keys, hash-bucket matches come before the symbolic
  right rows (``g=1``); every other pairing enumerates the right side
  in its own order (``g=0``);
- ``∪̄`` prefixes ``(0,)`` / ``(1,)`` so all left rows precede all
  right rows.

Conditions are reproduced by running the *identical* composition the
lifted operators run (the same ``conj``/``disj``/``neg``/``eq`` calls
in the same argument order), so hash-consing makes the results the very
same objects.  With ``simplify_conditions`` on, each operator state
simplifies its emitted rows exactly where ``execute_plan`` calls
``.simplified()`` — once per operator, never at leaves.

Lemma 1 is what licenses all of this: each lifted operator commutes
with valuation application, so a signed delta pushed through ``σ̄``,
``π̄``, ``×̄``, ``⋈̄``, and ``∪̄`` composes conditions exactly as the
operator itself would.  ``−̄``/``∩̄`` are not distributive in the signed
algebra (a right-side change rewrites the *conditions* of surviving
left rows), so their states recompute affected left rows from the
maintained right-side index instead — still touching only rows a
changed tuple can reach.

Two plan shapes fall back to full re-execution (``supported`` False):
plans mixing finite-domain and infinite-domain scans (the domain-merge
rules depend on row content there), and scans of :class:`CTable`
subclasses whose metadata is derived from rows (boolean c-tables).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TableError
from repro.logic.atoms import Eq, Term, eq
from repro.logic.syntax import BOTTOM, TOP, And, Formula, conj, disj, neg
from repro.logic.simplify import simplify
from repro.algebra.predicates import (
    column_index,
    instantiate_predicate,
    is_column_var,
    split_equijoin,
)
from repro.tables.ctable import CRow, CTable
from repro.ctalgebra.lifted import (
    _constant_row_key,
    _join_key,
    _rows_equal_condition,
)
from repro.ctalgebra.plan import (
    ConstScan,
    DifferenceNode,
    EmptyNode,
    IntersectionNode,
    JoinNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    Scan,
    SelectNode,
    UnionNode,
    const_table,
    empty_table,
    execute_plan,
)
from repro.ivm.delta import DeltaBatch

Key = Tuple[int, ...]

#: One registered relation as the view machinery sees it: the current
#: c-table plus the row ids aligned with its rows.
Binding = Tuple[CTable, Tuple[int, ...]]


class NodeDelta:
    """One operator's signed output change: deleted rows, then inserted."""

    __slots__ = ("deletes", "inserts")

    def __init__(self) -> None:
        self.deletes: List[Tuple[Key, CRow]] = []
        self.inserts: List[Tuple[Key, CRow]] = []

    def __bool__(self) -> bool:
        return bool(self.deletes) or bool(self.inserts)


def _merge_meta(
    left: "_State", right: "_State"
) -> Tuple[Optional[Dict[str, tuple]], Formula]:
    """Merged (domains, global) of two operand states.

    Mirrors :func:`repro.ctalgebra.lifted._merge_domains` minus the
    finite/infinite mixing check — plans where that check could fire
    are rejected wholesale by :func:`_plan_supported`, which keeps the
    merged metadata independent of row content and therefore static.
    """
    if left.domains is None and right.domains is None:
        merged: Optional[Dict[str, tuple]] = None
    else:
        merged = dict(left.domains or {})
        for name, values in (right.domains or {}).items():
            existing = merged.get(name)
            if existing is not None and tuple(existing) != tuple(values):
                raise TableError(
                    f"variable {name!r} has conflicting domains in the operands"
                )
            merged[name] = tuple(values)
    return merged, conj(left.global_condition, right.global_condition)


class _State:
    """Base operator state: the output rows, kept sorted by key."""

    __slots__ = (
        "arity", "domains", "global_condition", "simplify", "rows",
        "_order", "_ordered_rows",
    )

    def __init__(
        self,
        arity: int,
        domains: Optional[Dict[str, tuple]],
        global_condition: Formula,
        simplify_conditions: bool,
    ) -> None:
        self.arity = arity
        self.domains = domains
        self.global_condition = global_condition
        self.simplify = simplify_conditions
        self.rows: Dict[Key, CRow] = {}
        self._order: List[Key] = []
        # Row objects in the same order as ``_order``, so materializing
        # the state is one pass over a ready-made list instead of one
        # dict lookup per row.
        self._ordered_rows: List[CRow] = []

    # -- row bookkeeping ------------------------------------------------

    def _store(self, key: Key, row: CRow) -> None:
        self.rows[key] = row
        index = bisect_left(self._order, key)
        self._order.insert(index, key)
        self._ordered_rows.insert(index, row)

    def _discard(self, key: Key) -> CRow:
        row = self.rows.pop(key)
        index = bisect_left(self._order, key)
        del self._order[index]
        del self._ordered_rows[index]
        return row

    def _delete_if_present(self, key: Key, out: NodeDelta) -> None:
        if key in self.rows:
            out.deletes.append((key, self._discard(key)))

    def ordered_items(self) -> List[Tuple[Key, CRow]]:
        return list(zip(self._order, self._ordered_rows))

    def ordered_rows(self) -> List[CRow]:
        """The maintained rows in key order; callers must not mutate."""
        return self._ordered_rows

    def sorted_keys(self) -> Tuple[Key, ...]:
        return tuple(self._order)

    def children(self) -> Tuple["_State", ...]:
        return ()

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        raise NotImplementedError

    # -- emission helper ------------------------------------------------

    def _seal(self, condition: Formula) -> Formula:
        """Post-operator condition treatment, mirroring ``.simplified()``.

        Returns ``BOTTOM`` (caller drops the row) exactly when a rerun's
        c-table constructor or simplification pass would drop it.
        """
        if self.simplify:
            return simplify(condition)
        return condition


class _ScanState(_State):
    """A relation leaf; consumes the relation's signed delta batches."""

    __slots__ = ("name",)

    def __init__(self, node: Scan, binding: Binding) -> None:
        table, row_ids = binding
        super().__init__(table.arity, table.domains, table.global_condition, False)
        self.name = node.name

    def apply_batch(self, batch: DeltaBatch) -> NodeDelta:
        out = NodeDelta()
        for row_id, _row in batch.deleted_rows():
            key = (row_id,)
            out.deletes.append((key, self._discard(key)))
        for row_id, row in batch.inserted_rows():
            key = (row_id,)
            self._store(key, row)
            out.inserts.append((key, row))
        return out


class _StaticState(_State):
    """A constant or pruned-empty leaf; never produces a delta."""

    __slots__ = ()

    def __init__(self, table: CTable) -> None:
        super().__init__(table.arity, table.domains, table.global_condition, False)
        for index, row in enumerate(table.rows):
            self._store((index,), row)

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        return NodeDelta()


class _SelectState(_State):
    """``σ̄``: per-row predicate instantiation, keys pass through."""

    __slots__ = ("child", "predicate")

    def __init__(
        self, node: SelectNode, child: _State, simplify_conditions: bool
    ) -> None:
        global_condition = child.global_condition
        if simplify_conditions:
            global_condition = simplify(global_condition)
        super().__init__(
            node.arity, child.domains, global_condition, simplify_conditions
        )
        self.child = child
        self.predicate = node.predicate

    def children(self) -> Tuple[_State, ...]:
        return (self.child,)

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        (delta,) = deltas
        out = NodeDelta()
        for key, _row in delta.deletes:
            self._delete_if_present(key, out)
        for key, row in delta.inserts:
            instantiated = instantiate_predicate(self.predicate, row.values)
            if instantiated is TOP:
                condition = row.condition
            else:
                condition = conj(row.condition, instantiated)
                if condition is BOTTOM:
                    continue
            sealed = self._seal(condition)
            if sealed is BOTTOM:
                continue
            kept = row if sealed is row.condition else CRow(row.values, sealed)
            self._store(key, kept)
            out.inserts.append((key, kept))
        return out


class _Group:
    """One ``π̄`` disjunction group: members sorted by child key."""

    __slots__ = ("member_keys", "member_conditions", "output")

    def __init__(self) -> None:
        self.member_keys: List[Key] = []
        self.member_conditions: List[Formula] = []
        self.output: Optional[Tuple[Key, CRow]] = None


class _ProjectState(_State):
    """``π̄``: disjunction groups keyed by first-occurrence member key."""

    __slots__ = ("child", "columns", "groups")

    def __init__(
        self, node: ProjectNode, child: _State, simplify_conditions: bool
    ) -> None:
        global_condition = child.global_condition
        if simplify_conditions:
            global_condition = simplify(global_condition)
        super().__init__(
            node.arity, child.domains, global_condition, simplify_conditions
        )
        self.child = child
        self.columns = node.columns
        self.groups: Dict[Tuple[object, ...], _Group] = {}

    def children(self) -> Tuple[_State, ...]:
        return (self.child,)

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        (delta,) = deltas
        out = NodeDelta()
        touched: Dict[Tuple[object, ...], _Group] = {}
        for key, row in delta.deletes:
            projected = tuple(row.values[index] for index in self.columns)
            group = self.groups[projected]
            index = bisect_left(group.member_keys, key)
            del group.member_keys[index]
            del group.member_conditions[index]
            touched[projected] = group
        for key, row in delta.inserts:
            projected = tuple(row.values[index] for index in self.columns)
            group = self.groups.get(projected)
            if group is None:
                group = self.groups[projected] = _Group()
            index = bisect_left(group.member_keys, key)
            group.member_keys.insert(index, key)
            group.member_conditions.insert(index, row.condition)
            touched[projected] = group
        for projected, group in touched.items():
            old = group.output
            if not group.member_keys:
                del self.groups[projected]
                if old is not None:
                    self._discard(old[0])
                    out.deletes.append(old)
                    group.output = None
                continue
            key = group.member_keys[0]
            condition = self._seal(disj(*group.member_conditions))
            if condition is BOTTOM:
                new: Optional[Tuple[Key, CRow]] = None
            else:
                new = (key, CRow(projected, condition))
            if (
                old is not None
                and new is not None
                and old[0] == new[0]
                and old[1].condition is new[1].condition
            ):
                continue
            if old is not None:
                self._discard(old[0])
                out.deletes.append(old)
            if new is not None:
                self._store(new[0], new[1])
                out.inserts.append(new)
            group.output = new
        return out


def _compile_conjuncts(
    predicate: Formula, arity: int
) -> Optional[Tuple[Callable[[Tuple[Term, ...]], Formula], ...]]:
    """Per-conjunct instantiators equivalent to ``instantiate_predicate``.

    ``conj(parts...)`` over the compiled conjuncts applied in order
    builds the identical interned condition as conjoining the full
    substitution — ``conj`` flattens and deduplicates the same flat
    sequence either way — while the dominant ``Eq`` conjunct costs two
    index lookups per pair instead of a substitution walk.  Returns
    ``None`` when an ``Eq`` conjunct references a column outside
    *arity*, leaving ``instantiate_predicate`` to reject it.
    """
    conjuncts = (
        predicate.children if isinstance(predicate, And) else (predicate,)
    )
    compiled: List[Callable[[Tuple[Term, ...]], Formula]] = []
    for part in conjuncts:
        if isinstance(part, Eq):
            left, right = part.left, part.right
            lindex = column_index(left) if is_column_var(left) else None
            rindex = column_index(right) if is_column_var(right) else None
            if (lindex is not None and lindex >= arity) or (
                rindex is not None and rindex >= arity
            ):
                return None

            def instantiate(
                values: Tuple[Term, ...],
                left: Term = left,
                right: Term = right,
                lindex: Optional[int] = lindex,
                rindex: Optional[int] = rindex,
            ) -> Formula:
                return eq(
                    left if lindex is None else values[lindex],
                    right if rindex is None else values[rindex],
                )

            compiled.append(instantiate)
        else:
            compiled.append(partial(instantiate_predicate, part))
    return tuple(compiled)


class _JoinState(_State):
    """``⋈̄``/``×̄``: maintained hash build sides probed by the delta.

    The equijoin path mirrors ``join_bar``'s partitioning; with no
    cross-operand equality conjuncts (or for a plain product) every
    pairing is enumerated, mirroring ``select_bar(product_bar(..))``.
    Pair keys are ``left_key + (g,) + right_key``.
    """

    __slots__ = (
        "left", "right", "predicate", "compiled", "left_columns",
        "right_columns", "equijoin", "left_buckets", "left_symbolic",
        "right_buckets", "right_symbolic", "by_left", "by_right",
    )

    def __init__(
        self,
        node: PlanNode,
        left: _State,
        right: _State,
        simplify_conditions: bool,
    ) -> None:
        domains, global_condition = _merge_meta(left, right)
        if simplify_conditions:
            global_condition = simplify(global_condition)
        super().__init__(
            left.arity + right.arity, domains, global_condition,
            simplify_conditions,
        )
        self.left = left
        self.right = right
        self.predicate: Optional[Formula] = (
            node.predicate if isinstance(node, JoinNode) else None
        )
        self.compiled = (
            None
            if self.predicate is None
            else _compile_conjuncts(self.predicate, self.arity)
        )
        if self.predicate is not None:
            pairs, _residual = split_equijoin(self.predicate, left.arity)
        else:
            pairs = []
        self.equijoin = bool(pairs)
        self.left_columns = tuple(i for i, _ in pairs)
        self.right_columns = tuple(j for _, j in pairs)
        # Probe indexes (equijoin only): constant-keyed rows bucketed,
        # symbolic-keyed rows listed, both in ascending child-key order.
        self.left_buckets: Dict[tuple, List[Key]] = {}
        self.left_symbolic: List[Key] = []
        self.right_buckets: Dict[tuple, List[Key]] = {}
        self.right_symbolic: List[Key] = []
        # Output indexes: which pair keys involve a given child key.
        self.by_left: Dict[Key, List[Key]] = {}
        self.by_right: Dict[Key, List[Key]] = {}

    def children(self) -> Tuple[_State, ...]:
        return (self.left, self.right)

    # -- probe-index bookkeeping ---------------------------------------

    def _index_add(
        self,
        buckets: Dict[tuple, List[Key]],
        symbolic: List[Key],
        columns: Tuple[int, ...],
        key: Key,
        row: CRow,
    ) -> None:
        if not self.equijoin:
            return
        constant = _join_key(row, columns)
        if constant is None:
            insort(symbolic, key)
        else:
            bucket = buckets.get(constant)
            if bucket is None:
                buckets[constant] = [key]
            else:
                insort(bucket, key)

    def _index_remove(
        self,
        buckets: Dict[tuple, List[Key]],
        symbolic: List[Key],
        columns: Tuple[int, ...],
        key: Key,
        row: CRow,
    ) -> None:
        if not self.equijoin:
            return
        constant = _join_key(row, columns)
        if constant is None:
            del symbolic[bisect_left(symbolic, key)]
        else:
            bucket = buckets[constant]
            del bucket[bisect_left(bucket, key)]
            if not bucket:
                del buckets[constant]

    # -- pair construction ---------------------------------------------

    def _pair(
        self, lkey: Key, lrow: CRow, rkey: Key, rrow: CRow, group: int
    ) -> Optional[Tuple[Key, CRow]]:
        values = lrow.values + rrow.values
        compiled = self.compiled
        if self.equijoin:
            assert self.predicate is not None
            if compiled is None:
                condition = conj(
                    lrow.condition,
                    rrow.condition,
                    instantiate_predicate(self.predicate, values),
                )
            else:
                condition = conj(
                    lrow.condition,
                    rrow.condition,
                    *(part(values) for part in compiled),
                )
        else:
            condition = conj(lrow.condition, rrow.condition)
            if condition is BOTTOM:
                return None
            if self.predicate is not None:
                if compiled is None:
                    instantiated = instantiate_predicate(
                        self.predicate, values
                    )
                else:
                    instantiated = conj(*(part(values) for part in compiled))
                if instantiated is not TOP:
                    condition = conj(condition, instantiated)
        if condition is BOTTOM:
            return None
        condition = self._seal(condition)
        if condition is BOTTOM:
            return None
        return lkey + (group,) + rkey, CRow(values, condition)

    def _emit_pair(
        self,
        lkey: Key,
        lrow: CRow,
        rkey: Key,
        rrow: CRow,
        group: int,
        out: NodeDelta,
    ) -> None:
        pair = self._pair(lkey, lrow, rkey, rrow, group)
        if pair is None:
            return
        key, row = pair
        self._store(key, row)
        self.by_left.setdefault(lkey, []).append(key)
        self.by_right.setdefault(rkey, []).append(key)
        out.inserts.append((key, row))

    def _drop_pairs(
        self,
        keys: List[Key],
        other_index: Dict[Key, List[Key]],
        other_offset: bool,
        out: NodeDelta,
    ) -> None:
        """Remove the listed pair keys, unindexing them from the far side."""
        llen = _key_length(self.left)
        for key in sorted(keys):
            row = self._discard(key)
            other_key = key[: llen] if other_offset else key[llen + 1:]
            siblings = other_index[other_key]
            siblings.remove(key)
            if not siblings:
                del other_index[other_key]
            out.deletes.append((key, row))

    # -- the delta rule -------------------------------------------------

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        ldelta, rdelta = deltas
        out = NodeDelta()
        # 1. Deleted left rows take every pair they participate in.
        for lkey, lrow in ldelta.deletes:
            self._index_remove(
                self.left_buckets, self.left_symbolic,
                self.left_columns, lkey, lrow,
            )
            self._drop_pairs(
                self.by_left.pop(lkey, []), self.by_right, False, out
            )
        # 2. Deleted right rows take their remaining pairs.
        for rkey, rrow in rdelta.deletes:
            self._index_remove(
                self.right_buckets, self.right_symbolic,
                self.right_columns, rkey, rrow,
            )
            self._drop_pairs(
                self.by_right.pop(rkey, []), self.by_left, True, out
            )
        # 3. Inserted right rows probe the surviving old left side (the
        #    probe indexes have not absorbed this round's left inserts
        #    yet, so δL+ × δR+ is produced exactly once — by step 4).
        linserted = {lkey for lkey, _ in ldelta.inserts}
        for rkey, rrow in rdelta.inserts:
            self._index_add(
                self.right_buckets, self.right_symbolic,
                self.right_columns, rkey, rrow,
            )
            for lkey, lrow, group in self._left_candidates(rrow, linserted):
                self._emit_pair(lkey, lrow, rkey, rrow, group, out)
        # 4. Inserted left rows probe the fully updated right side.
        for lkey, lrow in ldelta.inserts:
            self._index_add(
                self.left_buckets, self.left_symbolic,
                self.left_columns, lkey, lrow,
            )
            for rkey, rrow, group in self._right_candidates(lrow):
                self._emit_pair(lkey, lrow, rkey, rrow, group, out)
        out.deletes.sort(key=lambda item: item[0])
        out.inserts.sort(key=lambda item: item[0])
        return out

    def _right_candidates(
        self, lrow: CRow
    ) -> List[Tuple[Key, CRow, int]]:
        """Right rows an inserted left row pairs with, mirroring
        ``join_bar``'s candidate selection and order."""
        rows = self.right.rows
        if not self.equijoin:
            return [
                (rkey, rows[rkey], 0) for rkey in self.right.sorted_keys()
            ]
        constant = _join_key(lrow, self.left_columns)
        if constant is None:
            return [
                (rkey, rows[rkey], 0) for rkey in self.right.sorted_keys()
            ]
        matched = self.right_buckets.get(constant, [])
        return [(rkey, rows[rkey], 0) for rkey in matched] + [
            (rkey, rows[rkey], 1) for rkey in self.right_symbolic
        ]

    def _left_candidates(
        self, rrow: CRow, exclude: set
    ) -> List[Tuple[Key, CRow, int]]:
        """Left rows an inserted right row pairs with (minus this
        round's left inserts, which step 4 handles)."""
        rows = self.left.rows
        if not self.equijoin:
            return [
                (lkey, rows[lkey], 0)
                for lkey in self.left.sorted_keys()
                if lkey not in exclude
            ]
        right_constant = _join_key(rrow, self.right_columns)
        if right_constant is None:
            # A symbolic right row pairs with every left row; the group
            # bit is 1 exactly for constant-keyed left rows (for which
            # the symbolic right rows sort after the bucket matches).
            symbolic = set(self.left_symbolic)
            return [
                (lkey, rows[lkey], 0 if lkey in symbolic else 1)
                for lkey in self.left.sorted_keys()
                if lkey not in exclude
            ]
        candidates = [
            (lkey, rows[lkey], 0)
            for lkey in self.left_buckets.get(right_constant, [])
        ] + [(lkey, rows[lkey], 0) for lkey in self.left_symbolic]
        return [item for item in candidates if item[0] not in exclude]


def _key_length(state: _State) -> int:
    """The (uniform) key width of a state's rows."""
    if isinstance(state, _ScanState) or isinstance(state, _StaticState):
        return 1
    if isinstance(state, _JoinState):
        return _key_length(state.left) + 1 + _key_length(state.right)
    if isinstance(state, _UnionState):
        return 1 + max(
            _key_length(state.left_child), _key_length(state.right_child)
        )
    if isinstance(state, (_SelectState, _ProjectState)):
        return _key_length(state.child)
    if isinstance(state, _SetOpState):
        return _key_length(state.left)
    raise TypeError(f"unknown state {type(state).__name__}")


class _UnionState(_State):
    """``∪̄``: left rows before right rows, keys prefixed by side."""

    __slots__ = ("left_child", "right_child", "pad")

    def __init__(
        self,
        node: UnionNode,
        left: _State,
        right: _State,
        simplify_conditions: bool,
    ) -> None:
        domains, global_condition = _merge_meta(left, right)
        if simplify_conditions:
            global_condition = simplify(global_condition)
        super().__init__(
            node.arity, domains, global_condition, simplify_conditions
        )
        self.left_child = left
        self.right_child = right
        # Child key widths may differ; pad to the wider side so the
        # side-prefixed keys stay a total order of uniform tuples.
        self.pad = max(_key_length(left), _key_length(right))

    def children(self) -> Tuple[_State, ...]:
        return (self.left_child, self.right_child)

    def _key(self, side: int, key: Key) -> Key:
        return (side,) + key + (0,) * (self.pad - len(key))

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        out = NodeDelta()
        for side, delta in enumerate(deltas):
            for key, _row in delta.deletes:
                self._delete_if_present(self._key(side, key), out)
            for key, row in delta.inserts:
                sealed = self._seal(row.condition)
                if sealed is BOTTOM:
                    continue
                kept = row if sealed is row.condition else CRow(row.values, sealed)
                full = self._key(side, key)
                self._store(full, kept)
                out.inserts.append((full, kept))
        return out


class _SetOpState(_State):
    """``−̄``/``∩̄``: recompute affected left rows from a right index.

    The signed algebra does not close here — inserting or deleting a
    right row rewrites the negated-equality (or disjoined-equality)
    conditions of left rows — so the state maintains the same
    constant-tuple index ``_matching_right_rows`` builds and recomputes
    exactly the left rows whose candidate set changed.
    """

    __slots__ = ("left", "right", "difference", "buckets", "symbolic")

    def __init__(
        self,
        node: PlanNode,
        left: _State,
        right: _State,
        simplify_conditions: bool,
    ) -> None:
        domains, global_condition = _merge_meta(left, right)
        if simplify_conditions:
            global_condition = simplify(global_condition)
        super().__init__(
            left.arity, domains, global_condition, simplify_conditions
        )
        self.left = left
        self.right = right
        self.difference = isinstance(node, DifferenceNode)
        self.buckets: Dict[tuple, List[Key]] = {}
        self.symbolic: List[Key] = []

    def children(self) -> Tuple[_State, ...]:
        return (self.left, self.right)

    def _candidates(self, lrow: CRow) -> List[CRow]:
        """The right rows paired with *lrow*, in right-operand order —
        the same selection ``_matching_right_rows`` makes."""
        rows = self.right.rows
        constant = _constant_row_key(lrow)
        if constant is None:
            return [rows[key] for key in self.right.sorted_keys()]
        matched = self.buckets.get(constant)
        if matched is None:
            keys: Sequence[Key] = self.symbolic
        elif self.symbolic:
            keys = sorted(matched + self.symbolic)
        else:
            keys = matched
        return [rows[key] for key in keys]

    def _compose(self, lrow: CRow) -> Formula:
        candidates = self._candidates(lrow)
        if self.difference:
            absent = conj(
                *(
                    neg(conj(r.condition, _rows_equal_condition(lrow, r)))
                    for r in candidates
                )
            )
            return conj(lrow.condition, absent)
        present = disj(
            *(
                conj(r.condition, _rows_equal_condition(lrow, r))
                for r in candidates
            )
        )
        return conj(lrow.condition, present)

    def _refresh_left_row(self, lkey: Key, lrow: CRow, out: NodeDelta) -> None:
        condition = self._seal(self._compose(lrow))
        old = self.rows.get(lkey)
        new = None if condition is BOTTOM else CRow(lrow.values, condition)
        if old is None and new is None:
            return
        if old is not None and new is not None and old.condition is new.condition:
            return
        if old is not None:
            self._discard(lkey)
            out.deletes.append((lkey, old))
        if new is not None:
            self._store(lkey, new)
            out.inserts.append((lkey, new))

    def apply(self, deltas: Sequence[NodeDelta]) -> NodeDelta:
        ldelta, rdelta = deltas
        out = NodeDelta()
        # Update the right-side index and mark which left rows the
        # right delta can reach: a symbolic changed row reaches all of
        # them, a constant one reaches same-tuple and symbolic lefts.
        affected_all = False
        affected_tuples = set()
        for rkey, rrow in rdelta.deletes:
            constant = _constant_row_key(rrow)
            if constant is None:
                del self.symbolic[bisect_left(self.symbolic, rkey)]
                affected_all = True
            else:
                bucket = self.buckets[constant]
                del bucket[bisect_left(bucket, rkey)]
                if not bucket:
                    del self.buckets[constant]
                affected_tuples.add(constant)
        for rkey, rrow in rdelta.inserts:
            constant = _constant_row_key(rrow)
            if constant is None:
                insort(self.symbolic, rkey)
                affected_all = True
            else:
                bucket = self.buckets.get(constant)
                if bucket is None:
                    self.buckets[constant] = [rkey]
                else:
                    insort(bucket, rkey)
                affected_tuples.add(constant)
        for lkey, _lrow in ldelta.deletes:
            self._delete_if_present(lkey, out)
        linserted = {lkey for lkey, _ in ldelta.inserts}
        touch_right = affected_all or bool(affected_tuples)
        for lkey, lrow in self.left.ordered_items():
            if lkey in linserted:
                self._refresh_left_row(lkey, lrow, out)
                continue
            if not touch_right:
                continue
            if not affected_all:
                constant = _constant_row_key(lrow)
                if constant is not None and constant not in affected_tuples:
                    continue
            self._refresh_left_row(lkey, lrow, out)
        return out


class MaterializedView:
    """One standing query's maintained state tree plus pending deltas.

    The plan is frozen at construction (statistics drift never re-plans
    a standing view; a re-``register`` of a read relation marks the view
    dirty, and the session rebuilds it on a fresh plan).  ``refresh``
    applies pending delta batches one at a time — each batch is a valid
    signed delta on its own, so one-by-one and coalesced mutation
    sequences land in the identical state — and materializes the root.
    """

    __slots__ = (
        "plan", "simplify_conditions", "relations", "dirty", "supported",
        "pending", "root",
    )

    def __init__(self, plan: PlanNode, simplify_conditions: bool) -> None:
        self.plan = plan
        self.simplify_conditions = simplify_conditions
        self.relations = frozenset(
            node.name for node in plan.walk() if isinstance(node, Scan)
        ) | frozenset(
            source.name
            for node in plan.walk()
            if isinstance(node, EmptyNode)
            for source in node.sources
            if isinstance(source, Scan)
        )
        self.dirty = True
        self.supported = True
        self.pending: List[DeltaBatch] = []
        self.root: Optional[_State] = None

    # -- session-facing surface ----------------------------------------

    def invalidate(self) -> None:
        """Force a rebuild (a read relation was re-registered)."""
        self.dirty = True
        self.pending.clear()
        self.root = None

    def push(self, batch: DeltaBatch) -> None:
        """Queue a mutation's signed delta for the next refresh."""
        if self.dirty:
            return  # The rebuild reads the mutated tables directly.
        self.pending.append(batch)

    def refresh(self, bindings: Mapping[str, Binding]) -> Tuple[CTable, str]:
        """Bring the view up to date; returns ``(result, mode)``.

        *mode* is ``"build"`` (first refresh or after re-register),
        ``"delta"`` (pending batches propagated), ``"noop"`` (nothing
        pending), or ``"fallback"`` (unsupported plan shape — full
        re-execution of the frozen plan).

        Every call materializes a fresh :class:`CTable` wrapper (the
        ``CRow`` objects inside are shared with the state tree, so
        structural identity is preserved); the engine's ResultCache is
        the *only* memoization layer, keeping its LRU eviction contract
        observable.
        """
        if self.dirty:
            self.supported = self._plan_supported(bindings)
            if self.supported:
                self._build(bindings)
                self.dirty = False
                return self._materialize(), "build"
        if not self.supported:
            tables = {name: table for name, (table, _ids) in bindings.items()}
            self.dirty = False
            self.pending.clear()
            return execute_plan(
                self.plan, tables, simplify_conditions=self.simplify_conditions
            ), "fallback"
        if not self.pending:
            return self._materialize(), "noop"
        for batch in self.pending:
            self._propagate(batch)
        self.pending.clear()
        return self._materialize(), "delta"

    # -- internals ------------------------------------------------------

    def _plan_supported(self, bindings: Mapping[str, Binding]) -> bool:
        saw_finite = False
        saw_infinite = False
        for node in self.plan.walk():
            scans: Tuple[PlanNode, ...]
            if isinstance(node, Scan):
                scans = (node,)
            elif isinstance(node, EmptyNode):
                scans = tuple(
                    source for source in node.sources
                    if isinstance(source, Scan)
                )
            else:
                continue
            for scan in scans:
                table, _ids = bindings[scan.name]  # type: ignore[attr-defined]
                if type(table) is not CTable:
                    # Subclass metadata (e.g. a boolean c-table's
                    # domains) is derived from row content — not static.
                    return False
                if table.domains is None:
                    saw_infinite = True
                else:
                    saw_finite = True
        return not (saw_finite and saw_infinite)

    def _build(self, bindings: Mapping[str, Binding]) -> None:
        tables = {name: table for name, (table, _ids) in bindings.items()}
        self.root = self._make_state(self.plan, bindings, tables)
        # The initial content is fed through the very delta rules that
        # maintain it: one all-inserts batch per relation.  Operator
        # state is a pure function of the final leaf contents, so the
        # per-relation staging cannot be observed in the result.
        for name in sorted(self.relations):
            table, row_ids = bindings[name]
            batch = DeltaBatch.from_rows(
                name, table, (), tuple(zip(row_ids, table.rows))
            )
            self._propagate(batch)

    def _make_state(
        self,
        node: PlanNode,
        bindings: Mapping[str, Binding],
        tables: Mapping[str, CTable],
    ) -> _State:
        simplify_conditions = self.simplify_conditions
        if isinstance(node, Scan):
            return _ScanState(node, bindings[node.name])
        if isinstance(node, ConstScan):
            return _StaticState(const_table(node.instance))
        if isinstance(node, EmptyNode):
            return _StaticState(empty_table(node, tables))
        if isinstance(node, SelectNode):
            return _SelectState(
                node,
                self._make_state(node.child, bindings, tables),
                simplify_conditions,
            )
        if isinstance(node, ProjectNode):
            return _ProjectState(
                node,
                self._make_state(node.child, bindings, tables),
                simplify_conditions,
            )
        if isinstance(node, (JoinNode, ProductNode)):
            return _JoinState(
                node,
                self._make_state(node.left, bindings, tables),
                self._make_state(node.right, bindings, tables),
                simplify_conditions,
            )
        if isinstance(node, UnionNode):
            return _UnionState(
                node,
                self._make_state(node.left, bindings, tables),
                self._make_state(node.right, bindings, tables),
                simplify_conditions,
            )
        if isinstance(node, (DifferenceNode, IntersectionNode)):
            return _SetOpState(
                node,
                self._make_state(node.left, bindings, tables),
                self._make_state(node.right, bindings, tables),
                simplify_conditions,
            )
        raise TableError(f"cannot maintain plan node {node!r}")

    def _propagate(self, batch: DeltaBatch) -> None:
        def run(state: _State) -> NodeDelta:
            if isinstance(state, _ScanState):
                if state.name == batch.relation:
                    return state.apply_batch(batch)
                return NodeDelta()
            children = state.children()
            if not children:
                return NodeDelta()
            child_deltas = [run(child) for child in children]
            if not any(child_deltas):
                return NodeDelta()
            return state.apply(child_deltas)

        assert self.root is not None
        run(self.root)

    def _materialize(self) -> CTable:
        # State rows are prior c-table machinery output — already
        # normalized CRows of the root's arity — so the trusted
        # constructor applies (it still drops sealed-BOTTOM rows, which
        # is what keeps the result identical to the kernels' CTable
        # construction).
        root = self.root
        assert root is not None
        return CTable.from_normalized_rows(
            root.ordered_rows(),
            root.arity,
            domains=root.domains,
            global_condition=root.global_condition,
        )
