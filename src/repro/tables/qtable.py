"""?-tables: conventional instances with optional tuples ([29]'s ``R?``).

A ?-table is a set of constant tuples, each optionally labeled ``?``;
a labeled tuple may be present or absent independently, an unlabeled one
is always present.  ``Mod`` is the set of instances containing all
unlabeled tuples and any subset of the labeled ones.

?-tables are the incompleteness skeleton of the p-?-tables of Section 7
(independent-tuple probabilistic databases), and Corollary 1 shows that
closing them under full RA gives a finitely complete system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple

from repro.errors import TableError
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase
from repro.tables.base import Table


@dataclass(frozen=True)
class QRow:
    """A tuple together with its optionality flag."""

    values: Row
    optional: bool = False

    def __repr__(self) -> str:
        suffix = " ?" if self.optional else ""
        return f"({', '.join(map(repr, self.values))}){suffix}"


class QTable(Table):
    """A ?-table over constant tuples."""

    __slots__ = ("_rows", "_arity")

    system_name = "?-table"

    def __init__(self, rows: Iterable = (), arity: Optional[int] = None) -> None:
        normalized = []
        for row in rows:
            if isinstance(row, QRow):
                normalized.append(row)
            elif (
                isinstance(row, tuple)
                and len(row) == 2
                and isinstance(row[1], bool)
                and isinstance(row[0], (tuple, list))
            ):
                normalized.append(QRow(tuple(row[0]), row[1]))
            else:
                normalized.append(QRow(tuple(row), False))
        # A tuple listed both mandatory and optional is simply mandatory.
        mandatory = {row.values for row in normalized if not row.optional}
        deduped = {}
        for row in normalized:
            key = row.values
            deduped[key] = QRow(key, row.optional and key not in mandatory)
        rows_tuple = tuple(deduped.values())
        if rows_tuple:
            arities = {len(row.values) for row in rows_tuple}
            if len(arities) != 1:
                raise TableError(f"mixed row arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match rows of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty ?-table needs an explicit arity")
        self._rows: Tuple[QRow, ...] = rows_tuple
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Tuple[QRow, ...]:
        """Return the rows (mandatory-before-optional dedup applied)."""
        return self._rows

    def mandatory_tuples(self) -> FrozenSet[Row]:
        """Return the tuples present in every world."""
        return frozenset(row.values for row in self._rows if not row.optional)

    def optional_tuples(self) -> FrozenSet[Row]:
        """Return the tuples free to appear or not."""
        return frozenset(row.values for row in self._rows if row.optional)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QTable):
            return NotImplemented
        return self._arity == other._arity and frozenset(self._rows) == frozenset(
            other._rows
        )

    def __hash__(self) -> int:
        return hash((self._arity, frozenset(self._rows)))

    def __repr__(self) -> str:
        body = ", ".join(repr(row) for row in self._rows)
        return f"QTable[{self._arity}]{{{body}}}"

    def is_finitely_representable(self) -> bool:
        return True

    def possible_worlds(self) -> Iterator[Instance]:
        """Yield every world: mandatory tuples plus a subset of optional ones."""
        mandatory = sorted(self.mandatory_tuples(), key=repr)
        optional = sorted(self.optional_tuples(), key=repr)
        for size in range(len(optional) + 1):
            for chosen in itertools.combinations(optional, size):
                yield Instance(mandatory + list(chosen), arity=self._arity)

    def mod(self) -> IDatabase:
        return IDatabase(self.possible_worlds(), arity=self._arity)
