"""c-tables: conditional tables (Imieliński–Lipski [20]).

A c-table is a table whose entries are constants or variables and whose
rows carry *conditions* — boolean combinations of equalities over the
variables and constants (Example 2 of the paper).  Three variants share
this module:

- plain c-tables over the infinite domain (``domains=None``),
- **finite-domain c-tables** (Definition 6): each variable ``x`` comes
  with a finite ``dom(x) ⊂ D``,
- **boolean c-tables** (:class:`BooleanCTable`): all variables two-valued
  and appearing only in conditions — the fragment Theorem 3 proves
  finitely complete.

As an implemented extension (flagged as future work in the paper's
Section 9, after Grahne [17]), a table may carry a *global condition*
that every valuation must satisfy; the default ``true`` recovers the
classical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import TableError, UnsupportedOperationError
from repro.core.domain import Domain
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase
from repro.logic.atoms import BoolVar, Const, Eq, Term, Var, is_boolean_condition
from repro.logic.equality_sat import constants_of, fresh_values
from repro.logic.evaluation import evaluate, partial_evaluate
from repro.logic.models import enumerate_valuations
from repro.logic.syntax import BOTTOM, TOP, Formula, conj, walk
from repro.tables.base import Table


@dataclass(frozen=True)
class CRow:
    """One row of a c-table: a tuple of terms plus a condition."""

    values: Tuple[Term, ...]
    condition: Formula = TOP

    def tuple_variables(self) -> FrozenSet[str]:
        """Return the variables appearing in the tuple itself."""
        return frozenset(
            term.name for term in self.values if isinstance(term, Var)
        )

    def all_variables(self) -> FrozenSet[str]:
        """Return the variables of the tuple and of its condition."""
        return self.tuple_variables() | self.condition.variables()

    def constants(self) -> FrozenSet[Hashable]:
        """Return constants of the tuple and of the condition."""
        from_values = {
            term.value for term in self.values if isinstance(term, Const)
        }
        return frozenset(from_values) | constants_of(self.condition)

    def apply(self, valuation: Mapping[str, Hashable]) -> Optional[Row]:
        """Return ν(t) when the condition holds under ν, else None."""
        if not evaluate(self.condition, valuation):
            return None
        return tuple(
            term.value if isinstance(term, Const) else valuation[term.name]
            for term in self.values
        )

    def is_variable_free(self) -> bool:
        """True when neither tuple nor condition mentions a variable."""
        return not self.all_variables()

    def __repr__(self) -> str:
        body = ", ".join(repr(term) for term in self.values)
        if self.condition == TOP:
            return f"({body})"
        return f"({body} : {self.condition!r})"


def _coerce_term(value) -> Term:
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


def make_row(values: Iterable, condition: Formula = TOP) -> CRow:
    """Build a :class:`CRow`, wrapping non-term entries as constants."""
    return CRow(tuple(_coerce_term(value) for value in values), condition)


class CTable(Table):
    """A c-table, optionally with finite variable domains.

    Parameters
    ----------
    rows:
        An iterable of :class:`CRow` (or ``(values, condition)`` pairs, or
        bare value tuples for unconditioned rows).
    arity:
        Required when *rows* is empty.
    domains:
        When given, a mapping ``variable name -> finite iterable of
        values``; the table becomes a finite-domain c-table and must
        cover every variable that occurs anywhere in it.
    global_condition:
        Extension: a condition every valuation must satisfy.
    """

    __slots__ = ("_rows", "_arity", "_domains", "_global", "_vars_cache")

    system_name = "c-table"

    def __init__(
        self,
        rows: Iterable = (),
        arity: Optional[int] = None,
        domains: Optional[Mapping[str, Iterable[Hashable]]] = None,
        global_condition: Formula = TOP,
    ) -> None:
        normalized = []
        for row in rows:
            if isinstance(row, CRow):
                normalized.append(row)
            elif (
                isinstance(row, tuple)
                and len(row) == 2
                and isinstance(row[1], Formula)
                and isinstance(row[0], (tuple, list))
            ):
                normalized.append(make_row(row[0], row[1]))
            else:
                normalized.append(make_row(row))
        # Rows whose condition is syntactically false can never appear.
        normalized = [row for row in normalized if row.condition != BOTTOM]
        if normalized:
            arities = {len(row.values) for row in normalized}
            if len(arities) != 1:
                raise TableError(f"mixed row arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match rows of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty c-table needs an explicit arity")
        self._rows: Tuple[CRow, ...] = tuple(normalized)
        self._arity = arity
        self._global = global_condition
        self._vars_cache: Optional[FrozenSet[str]] = None
        if domains is not None:
            domains = {name: tuple(values) for name, values in domains.items()}
            missing = self.variables() - set(domains)
            if missing:
                raise TableError(
                    f"finite-domain c-table missing domains for {sorted(missing)}"
                )
            empty = [name for name, values in domains.items() if not values]
            if empty:
                raise TableError(f"empty domains for variables {sorted(empty)}")
        self._domains: Optional[Dict[str, Tuple[Hashable, ...]]] = domains
        self._validate()

    def _validate(self) -> None:
        """Subclasses override to narrow the admissible rows."""

    @classmethod
    def from_normalized_rows(
        cls,
        rows: Iterable[CRow],
        arity: int,
        domains: Optional[Dict[str, Tuple[Hashable, ...]]] = None,
        global_condition: Formula = TOP,
    ) -> "CTable":
        """Fast-path constructor for already-normalized :class:`CRow` rows.

        Skips per-row coercion, arity inference, and domain-coverage
        validation — the caller vouches that every row is a ``CRow`` of
        the declared arity with an interned condition, and that
        *domains* (tuple-valued, or ``None``) already covers the
        variables.  Rows with a false condition are still dropped, by
        identity: conditions are hash-consed, so any condition equal to
        ``BOTTOM`` *is* the interned ``BOTTOM`` object.  Built for hot
        producers like incremental view materialization whose row
        sources are prior c-table machinery output.
        """
        table = cls.__new__(cls)
        table._rows = tuple(
            row for row in rows if row.condition is not BOTTOM
        )
        table._arity = arity
        table._global = global_condition
        table._vars_cache = None
        table._domains = domains
        return table

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Tuple[CRow, ...]:
        """Return the rows in their original order."""
        return self._rows

    @property
    def domains(self) -> Optional[Dict[str, Tuple[Hashable, ...]]]:
        """Return the finite variable domains, or None for infinite D."""
        return dict(self._domains) if self._domains is not None else None

    @property
    def global_condition(self) -> Formula:
        """Return the global condition (``true`` unless the extension is used)."""
        return self._global

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CTable):
            return NotImplemented
        return (
            self._arity == other._arity
            and frozenset(self._rows) == frozenset(other._rows)
            and self._domains == other._domains
            and self._global == other._global
        )

    def __hash__(self) -> int:
        frozen_domains = (
            None
            if self._domains is None
            else frozenset((k, v) for k, v in self._domains.items())
        )
        return hash(
            (self._arity, frozenset(self._rows), frozen_domains, self._global)
        )

    def __repr__(self) -> str:
        body = ", ".join(repr(row) for row in self._rows)
        suffix = "" if self._domains is None else " (finite-domain)"
        return f"{type(self).__name__}[{self._arity}]{{{body}}}{suffix}"

    def variables(self) -> FrozenSet[str]:
        """Return every variable in tuples, conditions, and the global.

        Cached: the table is immutable and the set is consulted by world
        enumeration, finite-domain checks, and every lifted operator.
        """
        if self._vars_cache is None:
            names = set(self._global.variables())
            for row in self._rows:
                names |= row.all_variables()
            self._vars_cache = frozenset(names)
        return self._vars_cache

    def constants(self) -> FrozenSet[Hashable]:
        """Return every constant in tuples, conditions, and the global condition."""
        values = set(constants_of(self._global))
        for row in self._rows:
            values |= row.constants()
        return frozenset(values)

    def is_v_table(self) -> bool:
        """True when every condition is ``true`` (a v-table)."""
        return self._global == TOP and all(
            row.condition == TOP for row in self._rows
        )

    def is_codd_table(self) -> bool:
        """True when a v-table whose variables are pairwise distinct."""
        if not self.is_v_table():
            return False
        seen = set()
        for row in self._rows:
            for term in row.values:
                if isinstance(term, Var):
                    if term.name in seen:
                        return False
                    seen.add(term.name)
        return True

    def is_boolean(self) -> bool:
        """True when a boolean c-table: constant tuples, BoolVar conditions."""
        conditions_ok = is_boolean_condition(self._global) and all(
            is_boolean_condition(row.condition) for row in self._rows
        )
        tuples_ok = all(
            isinstance(term, Const) for row in self._rows for term in row.values
        )
        return conditions_ok and tuples_ok

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def apply_valuation(self, valuation: Mapping[str, Hashable]) -> Instance:
        """Return the instance ν(T) for a total valuation ν.

        Under the global-condition extension, a valuation violating the
        global condition contributes no instance; callers enumerate only
        admissible valuations, and this method raises if handed one that
        is not.
        """
        if not evaluate(self._global, valuation):
            raise TableError(
                "valuation violates the table's global condition"
            )
        rows = []
        for row in self._rows:
            image = row.apply(valuation)
            if image is not None:
                rows.append(image)
        return Instance(rows, arity=self._arity)

    def _valuation_domains(
        self, domain: Optional[Union[Domain, Sequence]]
    ) -> Dict[str, Tuple[Hashable, ...]]:
        names = self.variables()
        if not names:
            return {}
        if self._domains is not None:
            return {name: self._domains[name] for name in names}
        if domain is None:
            raise UnsupportedOperationError(
                "Mod of a c-table over the infinite domain is infinite; "
                "pass a finite domain (mod_over) or use witness_domain()"
            )
        finite = self._coerce_domain(domain)
        return {name: tuple(finite.values) for name in names}

    def valuations(
        self, domain: Optional[Union[Domain, Sequence]] = None
    ) -> Iterator[Dict[str, Hashable]]:
        """Yield the admissible valuations (respecting the global condition)."""
        domains = self._valuation_domains(domain)
        if not domains:
            if evaluate(self._global, {}):
                yield {}
            return
        for valuation in enumerate_valuations(domains):
            if evaluate(self._global, valuation):
                yield valuation

    def possible_worlds(
        self, domain: Optional[Union[Domain, Sequence]] = None
    ) -> Iterator[Instance]:
        """Yield ν(T) for each admissible valuation (with repetitions)."""
        for valuation in self.valuations(domain):
            yield self.apply_valuation(valuation)

    def is_finitely_representable(self) -> bool:
        return self._domains is not None or not self.variables()

    def mod(self) -> IDatabase:
        if not self.is_finitely_representable():
            raise UnsupportedOperationError(
                "this c-table has variables over the infinite domain; "
                "use mod_over(domain)"
            )
        return IDatabase(self.possible_worlds(), arity=self._arity)

    def mod_over(self, domain: Union[Domain, Sequence]) -> IDatabase:
        return IDatabase(self.possible_worlds(domain), arity=self._arity)

    def witness_domain(self, extra: int = 0) -> Domain:
        """Return a finite domain deciding this table's Mod-level questions.

        Contains the table's constants plus one fresh value per variable
        plus *extra* more — the small-model bound of
        :mod:`repro.logic.equality_sat` lifted to whole tables.
        """
        constants = sorted(self.constants(), key=repr)
        fresh = fresh_values(max(1, len(self.variables()) + extra))
        return Domain(list(constants) + list(fresh))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_domains(
        self, domains: Mapping[str, Iterable[Hashable]]
    ) -> "CTable":
        """Return the finite-domain version of this table."""
        return CTable(
            self._rows,
            arity=self._arity,
            domains=domains,
            global_condition=self._global,
        )

    def without_domains(self) -> "CTable":
        """Return the infinite-domain version (drops ``dom(x)`` info)."""
        return CTable(
            self._rows, arity=self._arity, global_condition=self._global
        )

    def with_global_condition(self, condition: Formula) -> "CTable":
        """Return the table with *condition* conjoined to the global one."""
        return CTable(
            self._rows,
            arity=self._arity,
            domains=self._domains,
            global_condition=conj(self._global, condition),
        )

    def rename_variables(self, mapping: Mapping[str, str]) -> "CTable":
        """Return the table with variables renamed by *mapping*."""
        from repro.logic.evaluation import substitute

        term_mapping = {old: Var(new) for old, new in mapping.items()}

        def rename_term(term: Term) -> Term:
            if isinstance(term, Var) and term.name in term_mapping:
                return term_mapping[term.name]
            return term

        rows = [
            CRow(
                tuple(rename_term(term) for term in row.values),
                substitute(row.condition, term_mapping),
            )
            for row in self._rows
        ]
        domains = None
        if self._domains is not None:
            domains = {
                mapping.get(name, name): values
                for name, values in self._domains.items()
            }
        return CTable(
            rows,
            arity=self._arity,
            domains=domains,
            global_condition=substitute(self._global, term_mapping),
        )

    def simplified(self) -> "CTable":
        """Return the table with every condition simplified.

        Rows whose condition folds to ``false`` disappear; this is the
        normalization pass benchmark E08 ablates.
        """
        from repro.logic.simplify import simplify

        rows = []
        for row in self._rows:
            condition = simplify(row.condition)
            if condition != BOTTOM:
                rows.append(CRow(row.values, condition))
        return CTable(
            rows,
            arity=self._arity,
            domains=self._domains,
            global_condition=simplify(self._global),
        )

    def to_text(self) -> str:
        """Render the table in the paper's two-column layout."""
        lines = []
        for row in self._rows:
            cells = " ".join(repr(term) for term in row.values)
            if row.condition == TOP:
                lines.append(cells)
            else:
                lines.append(f"{cells}  ||  {row.condition!r}")
        if self._global != TOP:
            lines.append(f"global: {self._global!r}")
        if self._domains:
            for name in sorted(self._domains):
                lines.append(f"dom({name}) = {list(self._domains[name])!r}")
        return "\n".join(lines)


class BooleanCTable(CTable):
    """A boolean c-table: constant tuples, conditions over boolean variables.

    The variables implicitly range over ``{false, true}``; ``domains`` is
    fixed accordingly and must not be supplied.
    """

    __slots__ = ()

    system_name = "boolean c-table"

    def __init__(
        self,
        rows: Iterable = (),
        arity: Optional[int] = None,
        global_condition: Formula = TOP,
    ) -> None:
        super().__init__(
            rows, arity=arity, domains=None, global_condition=global_condition
        )

    def _validate(self) -> None:
        for row in self._rows:
            for term in row.values:
                if not isinstance(term, Const):
                    raise TableError(
                        "boolean c-tables admit only constants in tuples, "
                        f"got {term!r}"
                    )
            if not is_boolean_condition(row.condition):
                raise TableError(
                    f"non-boolean condition in boolean c-table: "
                    f"{row.condition!r}"
                )
        if not is_boolean_condition(self._global):
            raise TableError(
                f"non-boolean global condition: {self._global!r}"
            )

    @property
    def domains(self) -> Dict[str, Tuple[Hashable, ...]]:
        """The implicit two-valued domains of the boolean variables.

        Exposed explicitly so the lifted algebra's results (plain
        ``CTable`` objects) inherit finite domains and stay enumerable.
        """
        return {name: (False, True) for name in self.variables()}

    def _valuation_domains(self, domain=None):
        return {name: (False, True) for name in self.variables()}

    def is_finitely_representable(self) -> bool:
        return True

    def mod(self) -> IDatabase:
        return IDatabase(self.possible_worlds(), arity=self._arity)


def ctable_row_condition_variables(table: CTable) -> FrozenSet[str]:
    """Return variables appearing in conditions but never in tuples.

    These are the "extra" variables Theorem 1's construction binds with
    dedicated product terms.
    """
    in_tuples = set()
    in_conditions = set()
    for row in table.rows:
        in_tuples |= row.tuple_variables()
        in_conditions |= row.condition.variables()
    in_conditions |= table.global_condition.variables()
    return frozenset(in_conditions - in_tuples)
