"""v-tables: instances with variables, no conditions (Example 1).

A v-table is a c-table whose every condition is ``true``; variables model
"labeled" or "marked" nulls — repeating a variable asserts the unknown
values coincide.  :class:`VTable` is a validating subclass of
:class:`~repro.tables.ctable.CTable`, so the whole c-table machinery
(valuations, Mod over domains, finite-domain variants of Definition 6)
is inherited.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional

from repro.errors import TableError
from repro.logic.syntax import TOP, Formula
from repro.tables.ctable import CTable


class VTable(CTable):
    """A v-table; rows are bare value tuples (terms), conditions all true."""

    __slots__ = ()

    system_name = "v-table"

    def __init__(
        self,
        rows: Iterable = (),
        arity: Optional[int] = None,
        domains: Optional[Mapping[str, Iterable[Hashable]]] = None,
    ) -> None:
        super().__init__(rows, arity=arity, domains=domains, global_condition=TOP)

    def _validate(self) -> None:
        for row in self._rows:
            if row.condition != TOP:
                raise TableError(
                    f"v-tables admit no conditions, got {row.condition!r}"
                )

    def as_ctable(self) -> CTable:
        """Return self viewed as a plain c-table (identity embedding)."""
        return CTable(
            self._rows, arity=self._arity, domains=self._domains
        )
