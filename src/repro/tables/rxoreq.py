"""The ``R⊕≡`` representation system (Definition 15).

A table is a multiset of tuples ``{t₁, …, t_m}`` together with a
conjunction of assertions of the forms

- ``i ⊕ j`` — tuple ``tᵢ`` or ``tⱼ`` is present, but not both
  (exclusive or),
- ``i ≡ j`` — ``tᵢ`` is present iff ``tⱼ`` is.

``Mod`` consists of all subsets of the tuples satisfying every
assertion; unconstrained tuples are free to appear or not.  Note the
*multiset* nature matters: two positions may hold the same tuple value
yet be constrained differently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import TableError
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase
from repro.tables.base import Table


@dataclass(frozen=True)
class Assertion:
    """One constraint between tuple positions: kind is 'xor' or 'iff'."""

    kind: str
    left: int
    right: int

    __slots__ = ("kind", "left", "right")

    def __post_init__(self) -> None:
        if self.kind not in ("xor", "iff"):
            raise TableError(f"unknown assertion kind {self.kind!r}")

    def holds(self, present: Sequence[bool]) -> bool:
        """Check the assertion against a presence vector."""
        left, right = present[self.left], present[self.right]
        if self.kind == "xor":
            return left != right
        return left == right

    def __repr__(self) -> str:
        symbol = "⊕" if self.kind == "xor" else "≡"
        return f"{self.left} {symbol} {self.right}"


def xor(left: int, right: int) -> Assertion:
    """Assertion ``left ⊕ right`` (0-based tuple positions)."""
    return Assertion("xor", left, right)


def iff(left: int, right: int) -> Assertion:
    """Assertion ``left ≡ right`` (0-based tuple positions)."""
    return Assertion("iff", left, right)


class RXorEquivTable(Table):
    """An ``R⊕≡`` table: positioned tuples plus ⊕/≡ assertions."""

    __slots__ = ("_tuples", "_assertions", "_arity")

    system_name = "R⊕≡"

    def __init__(
        self,
        tuples: Iterable[Iterable] = (),
        assertions: Iterable[Assertion] = (),
        arity: Optional[int] = None,
    ) -> None:
        tuples_tuple: Tuple[Row, ...] = tuple(tuple(row) for row in tuples)
        if tuples_tuple:
            arities = {len(row) for row in tuples_tuple}
            if len(arities) != 1:
                raise TableError(f"mixed tuple arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match tuples of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty R⊕≡ table needs an explicit arity")
        assertions_tuple = tuple(assertions)
        for assertion in assertions_tuple:
            for position in (assertion.left, assertion.right):
                if not 0 <= position < len(tuples_tuple):
                    raise TableError(
                        f"assertion {assertion!r} references position "
                        f"{position}, table has {len(tuples_tuple)} tuples"
                    )
        self._tuples = tuples_tuple
        self._assertions = assertions_tuple
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def tuples(self) -> Tuple[Row, ...]:
        """Return the positioned tuples."""
        return self._tuples

    @property
    def assertions(self) -> Tuple[Assertion, ...]:
        """Return the constraints."""
        return self._assertions

    def __len__(self) -> int:
        return len(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RXorEquivTable):
            return NotImplemented
        return (
            self._arity == other._arity
            and self._tuples == other._tuples
            and frozenset(self._assertions) == frozenset(other._assertions)
        )

    def __hash__(self) -> int:
        return hash((self._arity, self._tuples, frozenset(self._assertions)))

    def __repr__(self) -> str:
        tuples = ", ".join(repr(row) for row in self._tuples)
        constraints = " ∧ ".join(repr(a) for a in self._assertions)
        return f"RXorEquivTable[{self._arity}]{{{tuples} | {constraints}}}"

    def presence_vectors(self) -> Iterator[Tuple[bool, ...]]:
        """Yield every presence vector satisfying all assertions."""
        for bits in itertools.product((False, True), repeat=len(self._tuples)):
            if all(assertion.holds(bits) for assertion in self._assertions):
                yield bits

    def is_finitely_representable(self) -> bool:
        return True

    def possible_worlds(self) -> Iterator[Instance]:
        """Yield the instance for each satisfying presence vector."""
        for bits in self.presence_vectors():
            rows = [
                row for row, present in zip(self._tuples, bits) if present
            ]
            yield Instance(rows, arity=self._arity)

    def mod(self) -> IDatabase:
        return IDatabase(self.possible_worlds(), arity=self._arity)
