"""c-table normalization: semantic cleanup of conditions and rows.

The lifted algebra composes conditions syntactically, so answer tables
accumulate rows whose conditions are *semantically* unsatisfiable (e.g.
``'ligase' = f & 'kinase' = f`` after a join) and distinct rows that
denote the same tuple pattern.  Normalization removes both:

- :func:`drop_unsatisfiable_rows` — delete rows whose condition
  (conjoined with the global condition) has no satisfying valuation,
  decided over the finite domains when present and by the small-model
  procedure over the infinite domain otherwise;
- :func:`merge_duplicate_rows` — rows with syntactically identical term
  tuples merge into one row with the disjunction of their conditions;
- :func:`normalize` — both passes plus algebraic condition
  simplification; ``Mod``-preserving by construction (property-tested).

Normalization is deliberately *not* automatic: it costs satisfiability
checks per row, worthwhile for answer tables that will be displayed or
re-queried, wasted for intermediate results.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.models import is_satisfiable_over
from repro.logic.simplify import simplify
from repro.logic.syntax import BOTTOM, conj, disj
from repro.tables.ctable import CRow, CTable


def _row_satisfiable(table: CTable, row: CRow) -> bool:
    condition = conj(table.global_condition, row.condition)
    if table.domains is not None:
        relevant = {
            name: table.domains[name] for name in condition.variables()
        }
        if not relevant:
            from repro.logic.evaluation import partial_evaluate
            from repro.logic.syntax import TOP

            return partial_evaluate(condition, {}) == TOP
        return is_satisfiable_over(condition, relevant)
    from repro.logic.equality_sat import is_satisfiable_infinite

    return is_satisfiable_infinite(condition)


def drop_unsatisfiable_rows(table: CTable) -> CTable:
    """Remove rows that no admissible valuation can realize."""
    rows = [row for row in table.rows if _row_satisfiable(table, row)]
    return CTable(
        rows,
        arity=table.arity,
        domains=table.domains,
        global_condition=table.global_condition,
    )


def merge_duplicate_rows(table: CTable) -> CTable:
    """Merge rows with identical term tuples (disjoin their conditions)."""
    grouped: Dict[Tuple, List] = {}
    order: List[Tuple] = []
    for row in table.rows:
        if row.values not in grouped:
            grouped[row.values] = []
            order.append(row.values)
        grouped[row.values].append(row.condition)
    rows = [CRow(values, disj(*grouped[values])) for values in order]
    return CTable(
        rows,
        arity=table.arity,
        domains=table.domains,
        global_condition=table.global_condition,
    )


def normalize(table: CTable) -> CTable:
    """Full pass: merge duplicates, simplify, drop unsatisfiable rows.

    The result has the same ``Mod`` as the input over any domain (merge
    and drop are semantics-preserving; simplification is logical
    equivalence).
    """
    merged = merge_duplicate_rows(table)
    simplified = CTable(
        [
            CRow(row.values, simplify(row.condition))
            for row in merged.rows
            if simplify(row.condition) != BOTTOM
        ],
        arity=merged.arity,
        domains=merged.domains,
        global_condition=simplify(merged.global_condition),
    )
    return drop_unsatisfiable_rows(simplified)
