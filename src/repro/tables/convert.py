"""Conversions between representation systems.

Three kinds of conversion live here:

1. The paper's *exact equivalences*: or-set tables ↔ finite-domain Codd
   tables (Section 3), ?-tables ↔ the restricted boolean c-tables whose
   conditions are ``true`` or a single private variable.
2. *Embeddings into c-tables*: :func:`ctable_of` maps every finite
   system (?-tables, or-set(-?), Rsets, R⊕≡, RA_prop) to a finite-domain
   c-table with the same ``Mod``, witnessing that finite-domain c-tables
   subsume the entire [29] hierarchy.  Presence of a row is encoded by a
   0/1-valued variable and an equality condition; cross-row constraints
   (R⊕≡, RA_prop) use the global-condition extension.
3. Small *structural* conversions used by completions and tests
   (?-table → R⊕≡ via the duplicated-tuple trick, or-set → RA_prop).

Every conversion is verified Mod-preserving by the test suite.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import TableError
from repro.logic.atoms import BoolVar, Const, Var, boolvar, eq
from repro.logic.syntax import TOP, Formula, conj, disj, walk
from repro.tables.codd import CoddTable
from repro.tables.ctable import BooleanCTable, CRow, CTable
from repro.tables.orset import OrSet, OrSetRow, OrSetTable
from repro.tables.qtable import QRow, QTable
from repro.tables.raprop import RAPropTable, presence_var
from repro.tables.rsets import RSetsTable
from repro.tables.rxoreq import Assertion, RXorEquivTable


# ----------------------------------------------------------------------
# Exact equivalences from the paper
# ----------------------------------------------------------------------

def orset_to_codd(table: OrSetTable, prefix: str = "x") -> CoddTable:
    """Or-set table → finite-domain Codd table (Section 3's equivalence).

    Each or-set cell becomes a fresh variable whose ``dom`` is the
    or-set's contents.  Rows labeled '?' have no Codd counterpart, so the
    input must be a plain or-set table.
    """
    if table.has_optional_rows():
        raise TableError(
            "or-set-?-tables are not expressible as Codd tables; "
            "use ctable_of for the c-table embedding"
        )
    counter = 0
    domains: Dict[str, tuple] = {}
    rows = []
    for row in table.rows:
        values = []
        for cell in row.cells:
            if isinstance(cell, OrSet):
                name = f"{prefix}{counter}"
                counter += 1
                domains[name] = tuple(cell.alternatives)
                values.append(Var(name))
            else:
                values.append(Const(cell))
        rows.append(CRow(tuple(values)))
    return CoddTable(rows, arity=table.arity, domains=domains)


def codd_to_orset(table: CoddTable) -> OrSetTable:
    """Finite-domain Codd table → or-set table (the converse direction)."""
    if table.domains is None:
        raise TableError(
            "only finite-domain Codd tables convert to or-set tables"
        )
    domains = table.domains
    rows = []
    for row in table.rows:
        cells = []
        for term in row.values:
            if isinstance(term, Var):
                alternatives = domains[term.name]
                if len(alternatives) == 1:
                    cells.append(alternatives[0])
                else:
                    cells.append(OrSet(tuple(alternatives)))
            else:
                cells.append(term.value)
        rows.append(OrSetRow(tuple(cells), False))
    return OrSetTable(rows, arity=table.arity, allow_optional=False)


def qtable_to_boolean_ctable(table: QTable, prefix: str = "b") -> BooleanCTable:
    """?-table → boolean c-table in the restricted fragment.

    Mandatory rows keep condition ``true``; each optional row gets a
    private boolean variable, matching the paper's remark that this
    fragment of boolean c-tables "is equivalent to ?-tables".
    """
    counter = 0
    rows = []
    for row in table.rows:
        if row.optional:
            condition: Formula = boolvar(f"{prefix}{counter}")
            counter += 1
        else:
            condition = TOP
        rows.append(CRow(tuple(Const(v) for v in row.values), condition))
    return BooleanCTable(rows, arity=table.arity)


def boolean_ctable_to_qtable(table: BooleanCTable) -> QTable:
    """Restricted boolean c-table → ?-table.

    Admissible conditions are ``true`` or a single boolean variable that
    appears in no other condition; anything richer raises, since general
    boolean c-tables are strictly more expressive than ?-tables.
    """
    if table.global_condition != TOP:
        raise TableError("global conditions have no ?-table counterpart")
    usage: Dict[str, int] = {}
    for row in table.rows:
        for name in row.condition.variables():
            usage[name] = usage.get(name, 0) + 1
    rows = []
    for row in table.rows:
        condition = row.condition
        values = tuple(term.value for term in row.values)  # type: ignore[union-attr]
        if condition == TOP:
            rows.append(QRow(values, False))
        elif isinstance(condition, BoolVar) and usage[condition.name] == 1:
            rows.append(QRow(values, True))
        else:
            raise TableError(
                f"condition {condition!r} is outside the ?-table fragment "
                "(must be true, or a variable private to one row)"
            )
    return QTable(rows, arity=table.arity)


# ----------------------------------------------------------------------
# Structural conversions used by completions
# ----------------------------------------------------------------------

def qtable_to_rxoreq(table: QTable) -> RXorEquivTable:
    """?-table → R⊕≡ using the duplicated-tuple trick for mandatory rows.

    Optional tuples are unconstrained positions.  A mandatory tuple ``t``
    appears at two positions related by ``⊕``: exactly one copy is
    present, so the *set* world always contains ``t``.
    """
    tuples = []
    assertions = []
    for row in table.rows:
        if row.optional:
            tuples.append(row.values)
        else:
            first = len(tuples)
            tuples.append(row.values)
            tuples.append(row.values)
            assertions.append(Assertion("xor", first, first + 1))
    return RXorEquivTable(tuples, assertions, arity=table.arity)


def orset_to_raprop(table: OrSetTable) -> RAPropTable:
    """Or-set(-?) table → RA_prop: presence formula forces mandatory rows."""
    rows = [OrSetRow(row.cells, False) for row in table.rows]
    mandatory = [
        presence_var(index)
        for index, row in enumerate(table.rows)
        if not row.optional
    ]
    return RAPropTable(rows, conj(*mandatory), arity=table.arity)


# ----------------------------------------------------------------------
# Universal embedding into finite-domain c-tables
# ----------------------------------------------------------------------

def _bool_formula_to_equalities(formula: Formula, rename: Dict[str, Var]) -> Formula:
    """Replace each BoolVar by the equality ``p = 1`` over a 0/1 variable."""
    from repro.logic.syntax import And, Bottom, Not, Or, Top, neg

    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, BoolVar):
        return eq(rename[formula.name], Const(1))
    if isinstance(formula, Not):
        return neg(_bool_formula_to_equalities(formula.child, rename))
    if isinstance(formula, And):
        return conj(
            *(_bool_formula_to_equalities(c, rename) for c in formula.children)
        )
    if isinstance(formula, Or):
        return disj(
            *(_bool_formula_to_equalities(c, rename) for c in formula.children)
        )
    raise TableError(f"unexpected atom in boolean formula: {formula!r}")


def ctable_of(table) -> CTable:
    """Embed any finite representation system into a finite-domain c-table.

    The result has the same ``Mod`` as the input (verified in the tests)
    and uses only equality conditions over 0/1- or index-valued variables,
    plus the global-condition extension for R⊕≡ / RA_prop constraints.
    """
    if isinstance(table, CTable):
        return table
    if isinstance(table, QTable):
        rows = []
        domains: Dict[str, tuple] = {}
        for index, row in enumerate(table.rows):
            values = tuple(Const(v) for v in row.values)
            if row.optional:
                name = f"q{index}"
                domains[name] = (0, 1)
                rows.append(CRow(values, eq(Var(name), Const(1))))
            else:
                rows.append(CRow(values))
        return CTable(rows, arity=table.arity, domains=domains)
    if isinstance(table, OrSetTable):
        rows = []
        domains = {}
        counter = 0
        for index, row in enumerate(table.rows):
            values = []
            for cell in row.cells:
                if isinstance(cell, OrSet):
                    name = f"o{counter}"
                    counter += 1
                    domains[name] = tuple(cell.alternatives)
                    values.append(Var(name))
                else:
                    values.append(Const(cell))
            condition: Formula = TOP
            if row.optional:
                name = f"q{index}"
                domains[name] = (0, 1)
                condition = eq(Var(name), Const(1))
            rows.append(CRow(tuple(values), condition))
        return CTable(rows, arity=table.arity, domains=domains)
    if isinstance(table, RSetsTable):
        rows = []
        domains = {}
        for index, blk in enumerate(table.blocks):
            name = f"s{index}"
            alternatives = sorted(blk.tuples, key=repr)
            choice_count = len(alternatives)
            values_domain = tuple(range(1, choice_count + 1))
            if blk.optional:
                values_domain = (0,) + values_domain
            domains[name] = values_domain
            for choice, row in enumerate(alternatives, start=1):
                rows.append(
                    CRow(
                        tuple(Const(v) for v in row),
                        eq(Var(name), Const(choice)),
                    )
                )
        return CTable(rows, arity=table.arity, domains=domains)
    if isinstance(table, RXorEquivTable):
        rows = []
        domains = {}
        presence: Dict[int, Var] = {}
        for index, row in enumerate(table.tuples):
            name = f"p{index}"
            domains[name] = (0, 1)
            presence[index] = Var(name)
            rows.append(
                CRow(tuple(Const(v) for v in row), eq(Var(name), Const(1)))
            )
        constraints = []
        for assertion in table.assertions:
            left = eq(presence[assertion.left], Const(1))
            right = eq(presence[assertion.right], Const(1))
            from repro.logic.syntax import neg

            if assertion.kind == "xor":
                constraints.append(
                    disj(conj(left, neg(right)), conj(neg(left), right))
                )
            else:
                constraints.append(
                    disj(conj(left, right), conj(neg(left), neg(right)))
                )
        return CTable(
            rows,
            arity=table.arity,
            domains=domains,
            global_condition=conj(*constraints),
        )
    if isinstance(table, RAPropTable):
        rows = []
        domains = {}
        rename: Dict[str, Var] = {}
        counter = 0
        for index, row in enumerate(table.rows):
            presence_name = f"p{index}"
            domains[presence_name] = (0, 1)
            rename[presence_var(index).name] = Var(presence_name)
            values = []
            for cell in row.cells:
                if isinstance(cell, OrSet):
                    name = f"o{counter}"
                    counter += 1
                    domains[name] = tuple(cell.alternatives)
                    values.append(Var(name))
                else:
                    values.append(Const(cell))
            rows.append(
                CRow(tuple(values), eq(Var(presence_name), Const(1)))
            )
        global_condition = _bool_formula_to_equalities(table.formula, rename)
        return CTable(
            rows,
            arity=table.arity,
            domains=domains,
            global_condition=global_condition,
        )
    raise TableError(f"no c-table embedding known for {type(table).__name__}")
