"""The representation-system interface.

Definition 2 of the paper: a representation system is a set of *tables*
with a function ``Mod`` assigning to each table an incomplete database.
Here every table class implements:

- ``arity`` — the relation arity,
- ``mod()`` — the incomplete database as an explicit
  :class:`~repro.core.idatabase.IDatabase`, when it is finite,
- ``mod_over(domain)`` — the restriction of ``Mod`` to valuations into a
  finite domain, for systems with variables over the infinite domain
  (their full ``Mod`` is infinite and cannot be materialized; see
  DESIGN.md's substitution table for why witness slices suffice for
  every theorem checked in this reproduction).

Tables are immutable values, like everything else in the library.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Union

from repro.errors import TableError, UnsupportedOperationError
from repro.core.domain import Domain
from repro.core.idatabase import IDatabase


class Table:
    """Abstract base class for all representation-system tables."""

    __slots__ = ()

    system_name: str = "abstract"

    @property
    def arity(self) -> int:
        """Return the relation arity of this table."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """Return the variable names used (empty for variable-free systems)."""
        return frozenset()

    def is_finitely_representable(self) -> bool:
        """True when ``Mod(T)`` is a finite set of instances.

        Finite for every system of [29] and for finite-domain tables;
        infinite in general for tables with unrestricted variables.
        """
        raise NotImplementedError

    def mod(self) -> IDatabase:
        """Return ``Mod(T)`` as an explicit incomplete database.

        Raises :class:`~repro.errors.UnsupportedOperationError` when the
        model set is infinite; use :meth:`mod_over` with a witness domain
        in that case.
        """
        raise NotImplementedError

    def mod_over(self, domain: Union[Domain, Sequence]) -> IDatabase:
        """Return the restriction of ``Mod(T)`` to valuations into *domain*.

        For variable-free systems this coincides with :meth:`mod` (the
        domain is irrelevant); implementations override as needed.
        """
        if self.is_finitely_representable():
            return self.mod()
        raise UnsupportedOperationError(
            f"{type(self).__name__} cannot enumerate Mod over a domain"
        )

    def _coerce_domain(self, domain: Union[Domain, Sequence]) -> Domain:
        if isinstance(domain, Domain):
            return domain
        return Domain(domain)

    def _require_arity(self, length: int) -> None:
        if length != self.arity:
            raise TableError(
                f"row of length {length} in table of arity {self.arity}"
            )


def check_probability_like(value, what: str) -> None:
    """Shared validation for optional-labels-with-probability subclasses."""
    if value is None:
        return
    if not 0 <= value <= 1:
        raise TableError(f"{what} must lie in [0, 1], got {value!r}")
