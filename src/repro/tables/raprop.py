"""The ``RA_prop`` representation system (Definition 16).

A table is a multiset of *or-set tuples* ``{t₁, …, t_m}`` plus a boolean
formula over presence variables ``t₁ … t_m``; ``Mod`` consists of all
subsets satisfying the formula (``tᵢ`` true iff tuple ``i`` present),
with each present or-set tuple further resolved to one concrete tuple
per or-set cell.  [29] proves this system finitely complete; the paper
observes finite-domain c-tables (already boolean c-tables) match it in
expressive power, which test ``test_integration_raprop`` verifies on
random instances by round-tripping through Theorem 3.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Tuple

from repro.errors import TableError
from repro.core.instance import Instance
from repro.core.idatabase import IDatabase
from repro.logic.atoms import BoolVar, boolvar, is_boolean_condition
from repro.logic.evaluation import evaluate
from repro.logic.syntax import TOP, Formula
from repro.tables.base import Table
from repro.tables.orset import OrSetRow


def presence_var(position: int) -> BoolVar:
    """Return the presence variable for tuple position *position*."""
    return boolvar(f"t{position}")


class RAPropTable(Table):
    """An ``RA_prop`` table: or-set tuples guarded by a boolean formula.

    The formula's variables must be ``t0 … t{m-1}`` (created with
    :func:`presence_var`).
    """

    __slots__ = ("_rows", "_formula", "_arity")

    system_name = "RA_prop"

    def __init__(
        self,
        rows: Iterable = (),
        formula: Formula = TOP,
        arity: Optional[int] = None,
    ) -> None:
        normalized: list = []
        for row in rows:
            if isinstance(row, OrSetRow):
                if row.optional:
                    raise TableError(
                        "RA_prop rows carry no '?' label; optionality is "
                        "expressed through the boolean formula"
                    )
                normalized.append(row)
            else:
                normalized.append(OrSetRow(tuple(row), False))
        rows_tuple: Tuple[OrSetRow, ...] = tuple(normalized)
        if rows_tuple:
            arities = {len(row.cells) for row in rows_tuple}
            if len(arities) != 1:
                raise TableError(f"mixed row arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match rows of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty RA_prop table needs an explicit arity")
        if not is_boolean_condition(formula):
            raise TableError(
                f"RA_prop formulas range over presence variables only, got "
                f"{formula!r}"
            )
        allowed = {presence_var(i).name for i in range(len(rows_tuple))}
        unknown = formula.variables() - allowed
        if unknown:
            raise TableError(
                f"formula references unknown presence variables "
                f"{sorted(unknown)}; table has {len(rows_tuple)} tuples"
            )
        self._rows = rows_tuple
        self._formula = formula
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Tuple[OrSetRow, ...]:
        """Return the or-set tuples in position order."""
        return self._rows

    @property
    def formula(self) -> Formula:
        """Return the presence formula."""
        return self._formula

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RAPropTable):
            return NotImplemented
        return (
            self._arity == other._arity
            and self._rows == other._rows
            and self._formula == other._formula
        )

    def __hash__(self) -> int:
        return hash((self._arity, self._rows, self._formula))

    def __repr__(self) -> str:
        tuples = ", ".join(repr(row) for row in self._rows)
        return f"RAPropTable[{self._arity}]{{{tuples} | {self._formula!r}}}"

    def presence_vectors(self) -> Iterator[Tuple[bool, ...]]:
        """Yield presence vectors satisfying the formula."""
        names = [presence_var(i).name for i in range(len(self._rows))]
        for bits in itertools.product((False, True), repeat=len(self._rows)):
            valuation = dict(zip(names, bits))
            if evaluate(self._formula, valuation):
                yield bits

    def is_finitely_representable(self) -> bool:
        return True

    def possible_worlds(self) -> Iterator[Instance]:
        """Yield every world: satisfying subset, then or-set resolution."""
        for bits in self.presence_vectors():
            chosen = [
                row for row, present in zip(self._rows, bits) if present
            ]
            pools = [list(row.choices()) for row in chosen]
            for combo in itertools.product(*pools):
                yield Instance(list(combo), arity=self._arity)

    def mod(self) -> IDatabase:
        return IDatabase(self.possible_worlds(), arity=self._arity)
