"""Representation systems for incomplete information.

Tables are finite syntactic objects; ``Mod(T)`` maps each table to the
incomplete database it denotes (Definition 2).  Implemented systems:

========================  =============================  ==================
System                    Paper source                   Module
========================  =============================  ==================
Codd tables               [20], Section 2                :mod:`repro.tables.codd`
v-tables                  [20], Example 1                :mod:`repro.tables.vtable`
c-tables                  [20], Example 2                :mod:`repro.tables.ctable`
finite-domain variants    Definition 6                   same modules
boolean c-tables          Theorem 3                      :mod:`repro.tables.ctable`
?-tables                  [29] (``R?``)                  :mod:`repro.tables.qtable`
or-set tables             [29] (``RA``)                  :mod:`repro.tables.orset`
or-set-?-tables           [29] (``RA?``), Example 3      :mod:`repro.tables.orset`
Rsets                     Definition 14                  :mod:`repro.tables.rsets`
R⊕≡                       Definition 15                  :mod:`repro.tables.rxoreq`
RAprop                    Definition 16                  :mod:`repro.tables.raprop`
========================  =============================  ==================

The closed-world assumption is used throughout, following the paper
(footnote 3).
"""

from repro.tables.base import Table
from repro.tables.ctable import BooleanCTable, CRow, CTable
from repro.tables.vtable import VTable
from repro.tables.codd import CoddTable
from repro.tables.qtable import QRow, QTable
from repro.tables.orset import OrSet, OrSetRow, OrSetTable
from repro.tables.rsets import RSetsBlock, RSetsTable
from repro.tables.rxoreq import RXorEquivTable
from repro.tables.raprop import RAPropTable
from repro.tables.normalize import (
    drop_unsatisfiable_rows,
    merge_duplicate_rows,
    normalize,
)
from repro.tables.convert import (
    boolean_ctable_to_qtable,
    codd_to_orset,
    ctable_of,
    orset_to_codd,
    qtable_to_boolean_ctable,
    qtable_to_rxoreq,
    orset_to_raprop,
)

__all__ = [
    "BooleanCTable",
    "CRow",
    "CTable",
    "CoddTable",
    "OrSet",
    "OrSetRow",
    "OrSetTable",
    "QRow",
    "QTable",
    "RAPropTable",
    "RSetsBlock",
    "RSetsTable",
    "RXorEquivTable",
    "Table",
    "VTable",
    "boolean_ctable_to_qtable",
    "codd_to_orset",
    "drop_unsatisfiable_rows",
    "merge_duplicate_rows",
    "normalize",
    "ctable_of",
    "orset_to_codd",
    "orset_to_raprop",
    "qtable_to_boolean_ctable",
    "qtable_to_rxoreq",
]
