"""Or-set tables and or-set-?-tables ([29]'s ``RA`` and ``RA?``).

An or-set value ``⟨1, 2, 3⟩`` signifies that exactly one of the listed
values is the actual one (Example 3).  An or-set table is a conventional
instance whose cells may be or-sets; the or-set-?-table variant
additionally allows the ``?`` optional label on rows, combining both
ideas exactly as the paper describes.

Or-set tables are equivalent to finite-domain Codd tables
(:mod:`repro.tables.convert` implements both directions); finite-domain
v-tables are strictly more expressive (benchmark E19 proves the
separation exhaustively).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple, Union

from repro.errors import TableError
from repro.core.instance import Instance
from repro.core.idatabase import IDatabase
from repro.tables.base import Table


@dataclass(frozen=True)
class OrSet:
    """An or-set value: one of the alternatives is the actual value."""

    alternatives: Tuple[Hashable, ...]

    __slots__ = ("alternatives",)

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise TableError("an or-set needs at least one alternative")
        if len(set(self.alternatives)) != len(self.alternatives):
            raise TableError(
                f"duplicate alternatives in or-set {self.alternatives!r}"
            )

    def __repr__(self) -> str:
        return "⟨" + ", ".join(repr(v) for v in self.alternatives) + "⟩"

    def __len__(self) -> int:
        return len(self.alternatives)


Cell = Union[OrSet, Hashable]


def orset(*alternatives: Hashable) -> OrSet:
    """Convenience constructor: ``orset(1, 2)`` is the paper's ``⟨1, 2⟩``."""
    return OrSet(tuple(alternatives))


@dataclass(frozen=True)
class OrSetRow:
    """A row of cells (constants or or-sets) plus an optionality flag."""

    cells: Tuple[Cell, ...]
    optional: bool = False

    def choices(self) -> Iterator[Tuple[Hashable, ...]]:
        """Yield every concrete tuple obtainable by resolving the or-sets."""
        pools = [
            cell.alternatives if isinstance(cell, OrSet) else (cell,)
            for cell in self.cells
        ]
        for combo in itertools.product(*pools):
            yield tuple(combo)

    def choice_count(self) -> int:
        """Return the number of concrete tuples this row can denote."""
        count = 1
        for cell in self.cells:
            if isinstance(cell, OrSet):
                count *= len(cell)
        return count

    def __repr__(self) -> str:
        body = ", ".join(repr(cell) for cell in self.cells)
        suffix = " ?" if self.optional else ""
        return f"({body}){suffix}"


class OrSetTable(Table):
    """An or-set table; set ``allow_optional`` rows for an or-set-?-table."""

    __slots__ = ("_rows", "_arity", "_allow_optional")

    system_name = "or-set table"

    def __init__(
        self,
        rows: Iterable = (),
        arity: Optional[int] = None,
        allow_optional: bool = True,
    ) -> None:
        normalized = []
        for row in rows:
            if isinstance(row, OrSetRow):
                normalized.append(row)
            elif (
                isinstance(row, tuple)
                and len(row) == 2
                and isinstance(row[1], bool)
                and isinstance(row[0], (tuple, list))
            ):
                normalized.append(OrSetRow(tuple(row[0]), row[1]))
            else:
                normalized.append(OrSetRow(tuple(row), False))
        if not allow_optional:
            flagged = [row for row in normalized if row.optional]
            if flagged:
                raise TableError(
                    "plain or-set tables admit no '?' rows; use an "
                    "or-set-?-table (allow_optional=True)"
                )
        if normalized:
            arities = {len(row.cells) for row in normalized}
            if len(arities) != 1:
                raise TableError(f"mixed row arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match rows of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty or-set table needs an explicit arity")
        self._rows: Tuple[OrSetRow, ...] = tuple(normalized)
        self._arity = arity
        self._allow_optional = allow_optional

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Tuple[OrSetRow, ...]:
        """Return the rows in their original order."""
        return self._rows

    def has_optional_rows(self) -> bool:
        """True when some row carries the '?' label."""
        return any(row.optional for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrSetTable):
            return NotImplemented
        return self._arity == other._arity and frozenset(self._rows) == frozenset(
            other._rows
        )

    def __hash__(self) -> int:
        return hash((self._arity, frozenset(self._rows)))

    def __repr__(self) -> str:
        body = ", ".join(repr(row) for row in self._rows)
        return f"OrSetTable[{self._arity}]{{{body}}}"

    def values(self) -> FrozenSet[Hashable]:
        """Return every constant appearing in any cell or alternative."""
        out = set()
        for row in self._rows:
            for cell in row.cells:
                if isinstance(cell, OrSet):
                    out.update(cell.alternatives)
                else:
                    out.add(cell)
        return frozenset(out)

    def world_count_bound(self) -> int:
        """Return the number of (choice, inclusion) combinations.

        Distinct combinations may denote the same instance, so this upper-
        bounds ``|Mod|``.
        """
        count = 1
        for row in self._rows:
            row_choices = row.choice_count()
            count *= row_choices + 1 if row.optional else row_choices
        return count

    def is_finitely_representable(self) -> bool:
        return True

    def possible_worlds(self) -> Iterator[Instance]:
        """Yield every instance (with repetitions across choice combos)."""
        per_row = []
        for row in self._rows:
            options = [list(choice) for choice in row.choices()]
            if row.optional:
                options.append(None)  # the row may be absent
            per_row.append(options)
        for combo in itertools.product(*per_row):
            rows = [choice for choice in combo if choice is not None]
            yield Instance(rows, arity=self._arity)

    def mod(self) -> IDatabase:
        return IDatabase(self.possible_worlds(), arity=self._arity)
