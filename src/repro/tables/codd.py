"""Codd tables: v-tables whose variables are pairwise distinct.

Codd tables "correspond roughly to the current use of nulls in SQL"
(Section 2): every variable occurrence is an independent unknown.  The
class validates distinctness on top of :class:`~repro.tables.vtable.VTable`.

The module also provides :func:`fresh_codd_table`, which builds a Codd
table of a given shape with automatically named variables — the ``Z_k``
construction of Section 3 uses it with one row.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.errors import TableError
from repro.logic.atoms import Const, Var
from repro.tables.ctable import CRow
from repro.tables.vtable import VTable


class CoddTable(VTable):
    """A Codd table; every variable occurs exactly once."""

    __slots__ = ()

    system_name = "Codd table"

    def _validate(self) -> None:
        super()._validate()
        seen = set()
        for row in self._rows:
            for term in row.values:
                if isinstance(term, Var):
                    if term.name in seen:
                        raise TableError(
                            f"variable {term.name!r} repeats; Codd tables "
                            "require all variables distinct"
                        )
                    seen.add(term.name)


def fresh_codd_table(
    shape: Sequence[Sequence[Optional[Hashable]]],
    domains: Optional[Mapping[str, Iterable[Hashable]]] = None,
    prefix: str = "x",
) -> CoddTable:
    """Build a Codd table from a shape with ``None`` marking nulls.

    Each ``None`` cell becomes a fresh variable ``{prefix}{counter}``.
    ``fresh_codd_table([[1, None], [None, 4]])`` is the table

        1  x0
        x1 4
    """
    counter = 0
    rows = []
    for row in shape:
        values = []
        for cell in row:
            if cell is None:
                values.append(Var(f"{prefix}{counter}"))
                counter += 1
            else:
                values.append(Const(cell))
        rows.append(CRow(tuple(values)))
    return CoddTable(rows, domains=domains)
