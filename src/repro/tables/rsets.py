"""The ``Rsets`` representation system (Definition 14).

A table is a multiset of *blocks* of tuples, each block optionally
labeled ``?``.  A world chooses exactly one tuple from each unlabeled
block and at most one tuple from each labeled block.  Blocks capture
mutually exclusive alternatives at the tuple level, strictly subsuming
or-set tables at the row level ([29] proves the strictness; our E11
benchmark exercises the PJ and PU completions of this system).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.errors import TableError
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase
from repro.tables.base import Table


@dataclass(frozen=True)
class RSetsBlock:
    """A block: a set of alternative tuples, optionally labeled '?'."""

    tuples: FrozenSet[Row]
    optional: bool = False

    def __post_init__(self) -> None:
        if not self.tuples:
            raise TableError("an Rsets block needs at least one tuple")

    def __repr__(self) -> str:
        body = ", ".join(repr(row) for row in sorted(self.tuples, key=repr))
        suffix = " ?" if self.optional else ""
        return f"[{body}]{suffix}"


def block(*rows: Iterable, optional: bool = False) -> RSetsBlock:
    """Convenience constructor for a block of alternative tuples."""
    return RSetsBlock(frozenset(tuple(row) for row in rows), optional)


class RSetsTable(Table):
    """An ``Rsets`` table: a sequence (multiset) of blocks."""

    __slots__ = ("_blocks", "_arity")

    system_name = "Rsets"

    def __init__(
        self, blocks: Iterable[RSetsBlock] = (), arity: Optional[int] = None
    ) -> None:
        blocks_tuple = tuple(blocks)
        arities = {
            len(row) for blk in blocks_tuple for row in blk.tuples
        }
        if arities:
            if len(arities) != 1:
                raise TableError(f"mixed tuple arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match tuples of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty Rsets table needs an explicit arity")
        self._blocks = blocks_tuple
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def blocks(self) -> Tuple[RSetsBlock, ...]:
        """Return the blocks in their original (multiset) order."""
        return self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RSetsTable):
            return NotImplemented
        # Multiset comparison: order-insensitive with multiplicities.
        return self._arity == other._arity and sorted(
            map(repr, self._blocks)
        ) == sorted(map(repr, other._blocks))

    def __hash__(self) -> int:
        return hash((self._arity, tuple(sorted(map(repr, self._blocks)))))

    def __repr__(self) -> str:
        body = "; ".join(repr(blk) for blk in self._blocks)
        return f"RSetsTable[{self._arity}]{{{body}}}"

    def is_finitely_representable(self) -> bool:
        return True

    def possible_worlds(self) -> Iterator[Instance]:
        """Yield every world: one tuple per block ('?' blocks may abstain)."""
        per_block = []
        for blk in self._blocks:
            options = [row for row in sorted(blk.tuples, key=repr)]
            choices = [("pick", row) for row in options]
            if blk.optional:
                choices.append(("skip", None))
            per_block.append(choices)
        for combo in itertools.product(*per_block):
            rows = [row for kind, row in combo if kind == "pick"]
            yield Instance(rows, arity=self._arity)

    def mod(self) -> IDatabase:
        return IDatabase(self.possible_worlds(), arity=self._arity)
