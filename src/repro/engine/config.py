"""The unified execution configuration.

Before the engine existed, every top-level function threaded the same
two booleans — ``simplify_conditions`` and ``optimize`` — through its
signature, and adding a knob meant touching ~90 call sites.
:class:`ExecutionConfig` centralizes them: an :class:`~repro.engine.Engine`
holds one config, sessions and prepared queries inherit it, and a call
site that needs a deviation derives a new config with
:meth:`ExecutionConfig.with_options` instead of growing a parameter.

The config is an immutable value (frozen dataclass): two engines with
equal configs behave identically, and a config can safely participate in
cache keys.

Environment overrides
---------------------

The executor knobs read their *defaults* from the environment so a whole
test run (or deployment) can be flipped without touching code — CI uses
this to exercise the entire tier-1 suite under the morsel-parallel
executor:

- ``REPRO_EXECUTOR`` — default for ``executor``
  (``interpreted`` / ``vectorized`` / ``parallel``);
- ``REPRO_NUM_WORKERS`` — default for ``num_workers``;
- ``REPRO_MORSEL_SIZE`` — default for ``morsel_size``;
- ``REPRO_VERIFY_PLANS`` — default for ``verify_plans``
  (truthy values: ``1``, ``true``, ``yes``, ``on``);
- ``REPRO_VERIFY_MODE`` — default for ``verify_mode``
  (``syntactic`` / ``semantic``);
- ``REPRO_PROB_STRATEGY`` — default for ``prob_strategy``
  (``auto`` / ``enumerate`` / ``shannon`` / ``wmc``).  CI's wmc matrix
  entry runs the whole tier-1 suite with every probability terminal on
  the compiled d-DNNF route.
- ``REPRO_TRACE`` — default for ``trace`` (truthy values as above).
  CI's traced matrix entry runs the whole tier-1 suite with per-query
  tracing on, so the instrumented paths stay continuously exercised.
- ``REPRO_MAINTENANCE`` — default for ``maintenance``
  (``rerun`` / ``incremental``).  CI's incremental matrix entry runs
  the whole tier-1 suite with every prepared query served from a
  delta-maintained materialized view.

Explicit constructor arguments always win over the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace


def _env_executor() -> str:
    # An empty value means "unset" so CI matrices can blank the knob.
    return os.environ.get("REPRO_EXECUTOR") or "vectorized"


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if not value:
        return default
    try:
        return int(value)
    except ValueError as error:
        raise ValueError(
            f"environment variable {name}={value!r} is not an integer"
        ) from error


def _env_choice(name: str, default: str, choices: tuple) -> str:
    value = os.environ.get(name)
    if not value:
        return default
    lowered = value.strip().lower()
    if lowered in choices:
        return lowered
    raise ValueError(
        f"environment variable {name}={value!r} is not one of {choices}"
    )


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if not value:
        return default
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"environment variable {name}={value!r} is not a boolean flag"
    )


@dataclass(frozen=True)
class ExecutionConfig:
    """Every knob of query planning and execution, in one value.

    - ``optimize`` — run the Theorem-4-sound plan rewrites of
      :mod:`repro.ctalgebra.optimize` (selection/projection pushdown,
      join reordering, SAT dead-branch pruning).  The *engine* default is
      on: plans are Mod-preserving either way, and the planner pays for
      itself once plans are cached.  (The legacy top-level functions
      keep their historical ``optimize=False`` default via explicit
      per-call overrides.)
    - ``simplify_conditions`` — run the condition simplifier after every
      lifted operator; trades execution time for smaller conditions.
    - ``executor`` — ``"vectorized"`` runs plans through the physical
      batch runtime of :mod:`repro.physical` (the default);
      ``"parallel"`` adds the morsel-driven scheduler of
      :mod:`repro.physical.parallel` on top of it;
      ``"interpreted"`` keeps the recursive lifted-operator evaluation
      as the oracle.  All three produce structurally identical answer
      tables, so the knob is purely about speed.
    - ``num_workers`` — width of the shared morsel worker pool
      (``executor="parallel"`` only).
    - ``morsel_size`` — rows per morsel; also the threshold below which
      ``lower()`` marks an operator serial (``executor="parallel"``
      only).  The answer never depends on either knob.
    - ``plan_cache_size`` — LRU capacity of the engine's prepared-plan
      cache; ``0`` disables plan caching entirely.
    - ``result_cache_size`` — LRU capacity of the engine's answer-table
      cache (memoizes ``q̄(T)`` across datasets for repeated identical
      reads; invalidated per relation on re-``register``); ``0``
      disables result caching.
    - ``max_candidates`` — guard on the candidate pool of symbolic
      certain/possible answers (see
      :mod:`repro.worlds.symbolic_answers`).
    - ``verify_plans`` — run the static plan verifier
      (:class:`repro.ctalgebra.verify.PlanVerifier`) along the whole
      pipeline: registered tables at registration, the verbatim plan,
      every individual optimizer rewrite (violations name the rule),
      and the lowered physical tree.  Off by default (it re-walks plans
      per rewrite); CI flips it on for a full tier-1 run via
      ``REPRO_VERIFY_PLANS=1``.
    - ``verify_mode`` — depth of rewrite verification when
      ``verify_plans`` is on.  ``"syntactic"`` (the default) runs the
      structural conservation checks; ``"semantic"`` additionally
      certifies every individual rewrite by translation validation —
      symbolic execution on abstract tables plus SAT/BDD condition
      equivalence (:mod:`repro.logic.equivalence`) — closing the
      wrong-side-pushdown class of bugs the syntactic keys cannot see.
      CI's verified matrix entry runs ``REPRO_VERIFY_MODE=semantic``.
    - ``prob_strategy`` — how :meth:`repro.engine.session.Dataset.probability`
      (and everything reaching :func:`repro.logic.counting.probability`
      through the engine) counts condition probabilities.  ``"auto"``
      (the default) uses memoized Shannon expansion up to
      :data:`repro.logic.counting.PROB_VARIABLE_BUDGET` condition
      variables and the compiled d-DNNF + weighted-model-counting route
      (:mod:`repro.logic.compile` / :mod:`repro.prob.wmc`) beyond it;
      ``"shannon"``, ``"wmc"`` and ``"enumerate"`` force one route.
      All strategies return identical exact fractions, so the knob is
      purely about speed — documented and env-overridable alongside
      ``REPRO_VERIFY_MODE``.
    - ``circuit_cache_size`` — LRU capacity of the engine's compiled
      condition-circuit cache (d-DNNF circuits + memoized counts keyed
      on the interned lineage and a distribution fingerprint;
      invalidated with the result cache per relation on re-``register``);
      ``0`` disables circuit caching.
    - ``trace`` — record a hierarchical span trace (parse → plan →
      verify → lower → execute, with per-operator actuals) for every
      query executed through a prepared query; read it back via
      ``Engine.last_trace()``.  Off by default: the disabled path costs
      one integer comparison per instrumentation point.  The knob never
      changes answers, so it is excluded from result-cache keys.
    - ``maintenance`` — how a prepared query's answer is kept current as
      registered tables change through the mutation API
      (:meth:`repro.engine.session.Session.insert` /
      :meth:`~repro.engine.session.Session.delete` /
      :meth:`~repro.engine.session.Session.update`).  ``"rerun"`` (the
      default) re-executes from scratch on the next read;
      ``"incremental"`` maintains a materialized view per standing query
      by propagating signed delta batches through the lifted operators
      (:mod:`repro.ivm`), and `PreparedQuery.execute()` serves the
      maintained table.  The maintained result is structurally identical
      to a full re-execution of the same plan — rows, interned condition
      objects, and order — so the knob is purely about refresh cost.
    """

    optimize: bool = True
    simplify_conditions: bool = False
    executor: str = field(default_factory=_env_executor)
    num_workers: int = field(
        default_factory=lambda: _env_int("REPRO_NUM_WORKERS", 4)
    )
    morsel_size: int = field(
        default_factory=lambda: _env_int("REPRO_MORSEL_SIZE", 256)
    )
    plan_cache_size: int = 128
    result_cache_size: int = 64
    max_candidates: int = 100_000
    verify_plans: bool = field(
        default_factory=lambda: _env_flag("REPRO_VERIFY_PLANS", False)
    )
    verify_mode: str = field(
        default_factory=lambda: _env_choice(
            "REPRO_VERIFY_MODE", "syntactic", ("syntactic", "semantic")
        )
    )
    prob_strategy: str = field(
        default_factory=lambda: _env_choice(
            "REPRO_PROB_STRATEGY",
            "auto",
            ("auto", "enumerate", "shannon", "wmc"),
        )
    )
    circuit_cache_size: int = 256
    trace: bool = field(
        default_factory=lambda: _env_flag("REPRO_TRACE", False)
    )
    maintenance: str = field(
        default_factory=lambda: _env_choice(
            "REPRO_MAINTENANCE", "rerun", ("rerun", "incremental")
        )
    )

    def __post_init__(self) -> None:
        if self.executor not in ("interpreted", "vectorized", "parallel"):
            raise ValueError(
                f"executor must be 'interpreted', 'vectorized', or "
                f"'parallel', got {self.executor!r}"
            )
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.morsel_size < 1:
            raise ValueError(
                f"morsel_size must be >= 1, got {self.morsel_size}"
            )
        if self.plan_cache_size < 0:
            raise ValueError(
                f"plan_cache_size must be >= 0, got {self.plan_cache_size}"
            )
        if self.result_cache_size < 0:
            raise ValueError(
                f"result_cache_size must be >= 0, got {self.result_cache_size}"
            )
        if self.max_candidates <= 0:
            raise ValueError(
                f"max_candidates must be positive, got {self.max_candidates}"
            )
        if self.verify_mode not in ("syntactic", "semantic"):
            raise ValueError(
                f"verify_mode must be 'syntactic' or 'semantic', got "
                f"{self.verify_mode!r}"
            )
        if self.prob_strategy not in ("auto", "enumerate", "shannon", "wmc"):
            raise ValueError(
                f"prob_strategy must be 'auto', 'enumerate', 'shannon', or "
                f"'wmc', got {self.prob_strategy!r}"
            )
        if self.circuit_cache_size < 0:
            raise ValueError(
                f"circuit_cache_size must be >= 0, got "
                f"{self.circuit_cache_size}"
            )
        if self.maintenance not in ("rerun", "incremental"):
            raise ValueError(
                f"maintenance must be 'rerun' or 'incremental', got "
                f"{self.maintenance!r}"
            )

    def with_options(self, **options: object) -> "ExecutionConfig":
        """Return a copy with the given fields replaced.

        ``None`` values mean "keep the current setting", so per-call
        override parameters can be forwarded verbatim.
        """
        known = {field.name for field in fields(self)}
        unknown = set(options) - known
        if unknown:
            raise TypeError(
                f"unknown execution options {sorted(unknown)}; "
                f"known options are {sorted(known)}"
            )
        effective = {
            name: value for name, value in options.items() if value is not None
        }
        if not effective:
            return self
        return replace(self, **effective)
