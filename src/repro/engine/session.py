"""Engine, Session, PreparedQuery, Dataset — the session-layer API.

The paper's central claim (Theorems 4, 8–9) is architectural: *one*
representation — c-tables, pc-tables — answers every downstream question
(certain, possible, probabilistic, lineage) without enumerating worlds.
The flat top-level API obscures that: each of ``certain_answer_symbolic``,
``possible_answer_symbolic``, ``lineage_of``, ``tuple_probability_lineage``
independently re-translates and re-plans the query and re-evaluates
``q̄(T)``.  This module makes the shared structure explicit:

- an :class:`Engine` owns an :class:`~repro.engine.config.ExecutionConfig`
  and an LRU plan cache,
- a :class:`Session` registers named tables of *any* representation
  system (v-/Codd-/or-set-/?-/…/c-tables, pc-tables), coercing each to a
  c-table once via :func:`~repro.tables.convert.ctable_of` and caching
  per-table statistics,
- ``session.query(q)`` returns a lazy :class:`Dataset` whose terminal
  methods — ``collect``, ``certain``, ``possible``, ``probability``,
  ``lineage``, ``explain`` — all share one :class:`PreparedQuery`: the
  query is planned once (plan memoized in the engine's cache, keyed on
  query + schema + statistics fingerprint) and ``q̄(T)`` is evaluated
  once, then every question is answered off that single answer table.

The pre-engine top-level functions survive as thin shims over a
module-level default engine (see :func:`repro.engine.default_engine`),
so existing code and the paper-artifact tests run unchanged.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import OrderedDict
from fractions import Fraction
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.idatabase import IDatabase

from repro.errors import ProbabilityError, QueryError, TableError, nearest_name
from repro.core.domain import Domain
from repro.core.instance import Instance, Row
from repro.logic.syntax import BOTTOM, Formula
from repro.algebra.ast import Query
from repro.algebra.parser import parse_query
from repro.tables.base import Table
from repro.tables.codd import CoddTable
from repro.tables.ctable import BooleanCTable, CRow, CTable, make_row
from repro.tables.convert import ctable_of
from repro.ctalgebra.plan import (
    PlanNode,
    StatsAccumulator,
    TableStats,
    collect_stats,
    execute_plan,
    explain as explain_plan,
)
from repro.ctalgebra.translate import build_plan
from repro.ctalgebra.verify import PlanVerifier
from repro.physical import (
    ParallelSpec,
    PhysicalOp,
    execute_parallel,
    execute_physical,
    execute_plan_parallel,
    execute_plan_vectorized,
    explain_physical,
    lower,
)
from repro.prob.pctable import PCTable
from repro.engine.cache import CircuitCache, PlanCache, ResultCache
from repro.engine.config import ExecutionConfig
from repro.obs.explain import render_analyze
from repro.obs.metrics import MetricsRegistry, global_metrics, render_prometheus
from repro.obs.names import (
    IVM_DELTA_ROWS_TOTAL,
    IVM_MUTATIONS_TOTAL,
    IVM_REFRESH_SECONDS,
    IVM_REFRESH_TOTAL,
    QUERIES_TOTAL,
    QUERY_SECONDS,
    SPAN_EXECUTE,
    SPAN_LOWER,
    SPAN_PARSE,
    SPAN_PLAN,
    SPAN_REFRESH,
)
from repro.obs.trace import TraceCollector, Tracer, current_tracer, trace_span
from repro.ivm import DeltaBatch, MaterializedView
from repro.ivm.view import Binding


def bind_single_table(query: Query, table: CTable) -> Dict[str, CTable]:
    """Bindings for the paper's single-relation usage; reject self-joins
    across *distinct* names.

    The pre-engine ``apply_query_to_ctable`` bound every relation name in
    the query to the same table and only checked arity, so a query over
    ``R`` and ``S`` silently got self-join semantics.  Queries mentioning
    more than one name now raise: bind each name explicitly through
    ``translate_query(query, bindings)`` or ``Session.register``.
    """
    names = query.relation_names()
    if len(names) > 1:
        ordered = sorted(names)
        raise QueryError(
            f"query references relations {ordered}; binding them all to one "
            f"table would silently compute a self-join.  Bind "
            f"{ordered[1:]} explicitly via translate_query(query, bindings) "
            f"or register each relation in a Session"
        )
    for name, arity in names.items():
        if arity != table.arity:
            raise QueryError(
                f"query input {name!r} has arity {arity}, c-table has "
                f"arity {table.arity}"
            )
    return {name: table for name in names}


#: The variable-distribution maps pc-tables contribute.
_Distributions = Dict[str, Dict[Hashable, Fraction]]


def _merge_distribution_sources(
    sources: Iterable[Mapping[str, Mapping[Hashable, Fraction]]],
) -> _Distributions:
    """Merge per-table variable distributions; conflicting names raise."""
    merged: Dict[str, Dict[Hashable, Fraction]] = {}
    for distributions in sources:
        for variable, dist in distributions.items():
            existing = merged.get(variable)
            if existing is not None and existing != dict(dist):
                raise ProbabilityError(
                    f"variable {variable!r} has conflicting distributions "
                    f"across registered pc-tables"
                )
            merged[variable] = dict(dist)
    return merged


class _Registered:
    """One registry entry: the coerced c-table plus cached derived data.

    ``row_ids`` aligns one monotonically assigned integer with each row
    of ``ctable`` (registration numbers the initial rows ``0..n-1``;
    the mutation API hands out fresh ids from ``next_row_id`` and never
    recycles them).  Ascending row id *is* the rows' order, which the
    incremental-maintenance layer relies on to reproduce rerun order.
    """

    __slots__ = (
        "source", "ctable", "stats", "accumulator", "distributions",
        "row_ids", "next_row_id",
    )

    def __init__(
        self,
        source: object,
        ctable: CTable,
        stats: TableStats,
        accumulator: StatsAccumulator,
        distributions: Optional[Mapping[str, Mapping[Hashable, Fraction]]],
    ) -> None:
        self.source = source
        self.ctable = ctable
        self.stats = stats
        self.accumulator = accumulator
        self.distributions = distributions
        self.row_ids: List[int] = list(range(len(ctable.rows)))
        self.next_row_id = len(ctable.rows)


class _PlanEntry:
    """What the plan cache stores per key: the logical plan, plus the
    physical plans lowered from it on first physical execution.

    Lowered trees are keyed by morsel size (``None`` for the serial
    vectorized lowering): the parallel/serial decisions are stamped on
    the operator objects, so one tree per morsel size keeps prepared
    queries with different parallel configs from fighting over the
    stamps.  The worker count deliberately does not partition — it
    cannot change the lowering, only who runs it.
    """

    __slots__ = ("logical", "physical")

    def __init__(self, logical: PlanNode) -> None:
        self.logical = logical
        self.physical: Dict[Optional[int], PhysicalOp] = {}


def _distribution_fingerprint(
    condition: Formula,
    distributions: Mapping[str, Mapping[Hashable, Fraction]],
) -> Tuple[Tuple[str, Optional[Tuple[Tuple[Hashable, Fraction], ...]]], ...]:
    """A canonical key for the distributions *condition* depends on.

    Restricted to the condition's own variables (anything else cannot
    change its probability), with outcomes in repr-sorted order so
    structurally equal distribution maps fingerprint identically.  A
    variable without a distribution is recorded as ``None`` — the
    compile path then raises the coverage error exactly once per key.
    """
    entries: list = []
    for name in sorted(condition.variables()):
        distribution = distributions.get(name)
        if distribution is None:
            entries.append((name, None))
            continue
        outcomes = tuple(
            sorted(
                ((value, Fraction(weight)) for value, weight in distribution.items()),
                key=lambda item: repr(item[0]),
            )
        )
        entries.append((name, outcomes))
    return tuple(entries)


class Engine:
    """Holds the execution config, the plan cache, and session factory.

    An engine is cheap to construct; applications typically keep one per
    configuration.  The module-level :func:`repro.engine.default_engine`
    backs the legacy top-level functions.
    """

    def __init__(
        self, config: Optional[ExecutionConfig] = None, **options: object
    ) -> None:
        if config is None:
            config = ExecutionConfig()
        self._config = config.with_options(**options)
        self._plan_cache = PlanCache(self._config.plan_cache_size)
        self._result_cache = ResultCache(self._config.result_cache_size)
        self._circuit_cache = CircuitCache(self._config.circuit_cache_size)
        self._intern_lock = threading.Lock()
        # An engine may be shared across application threads; interning
        # is get-then-insert over a plain dict plus a bounding clear, so
        # it runs under its own small lock (the GIL does not make the
        # compound read-modify-write atomic).
        self._query_interning: Dict[Query, Query] = {}  # guarded-by: _intern_lock
        self._metrics = MetricsRegistry()
        self._trace_lock = threading.Lock()
        # The most recent per-query trace (JSON-ready dict), written by
        # traced executions and EXPLAIN ANALYZE.
        self._last_trace: Optional[Dict[str, Any]] = None  # guarded-by: _trace_lock

    @property
    def config(self) -> ExecutionConfig:
        return self._config

    def plan_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/invalidation counters of the plan cache."""
        return self._plan_cache.stats()

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    def result_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/invalidation counters of the result cache."""
        return self._result_cache.stats()

    def clear_result_cache(self) -> None:
        self._result_cache.clear()

    def circuit_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/invalidation counters of the circuit cache."""
        return self._circuit_cache.stats()

    def clear_circuit_cache(self) -> None:
        self._circuit_cache.clear()

    @property
    def metrics(self) -> MetricsRegistry:
        """This engine's metrics registry (query counters, latencies)."""
        return self._metrics

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One stable dict of everything the engine can observe.

        ``"caches"`` holds the unified hit/miss/size stats of all four
        caches (plan, result, circuit, and the memoized evaluation
        cache); ``"engine"`` this engine's own registry (per-query
        counters and latency histograms); ``"process"`` the process-wide
        registry the module-level subsystems report to — optimizer
        rule fire/no-fire counts and SAT/BDD/DPLL/WMC solver-call
        counters.  Key order is deterministic, so snapshots diff
        cleanly across runs.
        """
        from repro.logic.evaluation import evaluation_cache_stats

        return {
            "caches": {
                "circuit": self._circuit_cache.stats(),
                "evaluation": evaluation_cache_stats(),
                "plan": self._plan_cache.stats(),
                "result": self._result_cache.stats(),
            },
            "engine": self._metrics.snapshot(),
            "process": global_metrics().snapshot(),
        }

    def metrics_prometheus(self) -> str:
        """The metrics snapshot in Prometheus text exposition format."""
        return render_prometheus(self.metrics_snapshot())

    def last_trace(self) -> Optional[Dict[str, Any]]:
        """The most recent per-query trace dict (``trace=True`` or
        EXPLAIN ANALYZE), or None when nothing has been traced yet."""
        with self._trace_lock:
            return self._last_trace

    def last_trace_json(self, indent: Optional[int] = 2) -> Optional[str]:
        """The most recent trace as deterministic JSON (keys sorted)."""
        trace = self.last_trace()
        if trace is None:
            return None
        return json.dumps(trace, indent=indent, sort_keys=True, default=str)

    def _store_trace(self, trace: Dict[str, Any]) -> None:
        with self._trace_lock:
            self._last_trace = trace

    def condition_probability(
        self,
        condition: Formula,
        distributions: Mapping[str, Mapping[Hashable, Fraction]],
        *,
        strategy: Optional[str] = None,
        scope: Hashable = None,
        dependencies: FrozenSet[str] = frozenset(),
    ) -> Fraction:
        """Exact probability of *condition*, circuit-cached on the WMC route.

        Dispatches like :func:`repro.logic.counting.probability` (with
        the engine config's ``prob_strategy`` as the default), but when
        the compiled d-DNNF route is chosen the
        :class:`~repro.prob.wmc.CompiledCondition` is kept in the
        engine's :class:`~repro.engine.cache.CircuitCache`, keyed on the
        interned condition plus a fingerprint of the distributions
        restricted to its variables.  Those two inputs fully determine
        the answer, so a hit is always correct; since the cached object
        memoizes its count, a prepared probability loop compiles once,
        counts once, and then answers from memory.  *scope* and
        *dependencies* (a session id and relation names) let
        ``Session.register`` evict exactly the lineages whose inputs
        changed.
        """
        from repro.logic.counting import (
            PROB_STRATEGIES,
            PROB_VARIABLE_BUDGET,
            probability,
        )

        resolved = (strategy or self._config.prob_strategy).lower()
        if resolved not in PROB_STRATEGIES:
            raise ProbabilityError(
                f"unknown probability strategy {resolved!r}; "
                f"expected one of {PROB_STRATEGIES}"
            )
        if resolved == "auto":
            if len(condition.variables()) <= PROB_VARIABLE_BUDGET:
                resolved = "shannon"
            else:
                resolved = "wmc"
        if resolved != "wmc" or self._config.circuit_cache_size == 0:
            return probability(condition, distributions, strategy=resolved)
        from repro.prob.wmc import compile_probability

        key = (condition, _distribution_fingerprint(condition, distributions))
        compiled = self._circuit_cache.get(key)
        if compiled is None:
            compiled = compile_probability(condition, distributions)
            self._circuit_cache.put(
                key, compiled, scope, frozenset(dependencies)
            )
        return compiled.probability()

    def session(
        self, tables: Optional[Mapping[str, object]] = None, **named: object
    ) -> "Session":
        """Create a :class:`Session`, optionally pre-registering tables."""
        session = Session(self)
        for name, table in {**(dict(tables) if tables else {}), **named}.items():
            session.register(name, table)
        return session

    # ------------------------------------------------------------------
    # Ad-hoc execution (what the legacy shims call)
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        tables: Mapping[str, CTable],
        *,
        simplify_conditions: Optional[bool] = None,
        optimize: Optional[bool] = None,
        executor: Optional[str] = None,
    ) -> CTable:
        """Evaluate ``q̄`` against ad-hoc bindings.

        Ad-hoc calls re-plan every time: without a registry there is no
        place to track statistics changes, so nothing is cached.  Use a
        :class:`Session` for repeated queries.
        """
        config = self._config.with_options(
            simplify_conditions=simplify_conditions,
            optimize=optimize,
            executor=executor,
        )
        collected: Dict[str, TableStats] = {}

        def stats_thunk() -> Dict[str, TableStats]:
            collected.update(collect_stats(tables))
            return collected

        verifier: Optional[PlanVerifier] = None
        if config.verify_plans:
            verifier = PlanVerifier(mode=config.verify_mode)
            verifier.verify_query(
                query,
                {name: table.arity for name, table in tables.items()},
            )
            for name, table in tables.items():
                verifier.verify_ctable(name, table)
        plan = build_plan(
            query,
            stats_thunk,
            config.optimize,
            verify=config.verify_plans,
            verify_mode=config.verify_mode,
        )
        if config.executor == "vectorized":
            # When the optimizer ran, its statistics are reused to guide
            # lowering (build sides, filter strategies); an unoptimized
            # ad-hoc call stays estimate-blind rather than paying a
            # statistics pass nothing else would amortize.
            return execute_plan_vectorized(
                plan, tables,
                simplify_conditions=config.simplify_conditions,
                stats=collected or None,
                verifier=verifier,
            )
        if config.executor == "parallel":
            return execute_plan_parallel(
                plan, tables,
                stats=collected or None,
                num_workers=config.num_workers,
                morsel_size=config.morsel_size,
                simplify_conditions=config.simplify_conditions,
                verifier=verifier,
            )
        return execute_plan(
            plan, tables, simplify_conditions=config.simplify_conditions
        )

    def execute_single(
        self,
        query: Query,
        table: CTable,
        *,
        simplify_conditions: Optional[bool] = None,
        optimize: Optional[bool] = None,
    ) -> CTable:
        """Evaluate a single-relation query against one table."""
        return self.execute(
            query,
            bind_single_table(query, table),
            simplify_conditions=simplify_conditions,
            optimize=optimize,
        )

    def answer_pctable(
        self,
        query: Query,
        pctable: PCTable,
        *,
        simplify_conditions: Optional[bool] = None,
        optimize: Optional[bool] = None,
    ) -> PCTable:
        """Theorem 9's query answering: ``q̄`` on the underlying c-table,
        distributions riding along untouched."""
        answered = self.execute_single(
            query,
            pctable.table,
            simplify_conditions=simplify_conditions,
            optimize=optimize,
        )
        # Drop domains: the PCTable constructor re-derives them from the
        # distributions' supports (answer tables keep all input variables).
        return PCTable(answered.without_domains(), pctable.distributions)

    # ------------------------------------------------------------------
    # Internals shared with Session/PreparedQuery
    # ------------------------------------------------------------------

    def intern_query(self, query: Query) -> Query:
        """Return the canonical object for structurally equal queries.

        Parsing the same text twice (or rebuilding an equal AST) yields
        the one interned object, so plan-cache keys compare by identity
        fast-path and equal queries share cache entries.
        """
        with self._intern_lock:
            canonical = self._query_interning.get(query)
            if canonical is None:
                # Bound the interning table; queries are tiny but
                # unbounded growth across a long-lived engine would
                # still be a leak.
                if len(self._query_interning) >= 4096:
                    self._query_interning.clear()
                self._query_interning[query] = query
                canonical = query
        return canonical


class Session:
    """A table registry plus prepared-query machinery over one engine.

    Tables register under relation names and may be instances of *any*
    representation system: c-tables pass through, every weaker system is
    embedded via :func:`~repro.tables.convert.ctable_of` (Mod-preserving
    by construction), pc-tables contribute their underlying c-table plus
    their variable distributions, and plain :class:`Instance` values
    become variable-free c-tables.  Coercion and per-table statistics
    happen once, at registration.
    """

    _ids = itertools.count()

    #: Standing materialized views kept per session (LRU-bounded).
    _MAX_VIEWS = 32

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._registry: Dict[str, _Registered] = {}
        self._merged_distributions: Optional[
            Dict[str, Dict[Hashable, Fraction]]
        ] = None
        self._id = next(Session._ids)
        # guarded-by: single-threaded like the registry itself; views
        # are keyed on (query, optimize, simplify_conditions) — the
        # maintained state is executor-independent.
        self._views: "OrderedDict[Tuple[object, ...], MaterializedView]" = (
            OrderedDict()
        )

    @property
    def engine(self) -> Engine:
        return self._engine

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._registry))

    def __contains__(self, name: str) -> bool:
        return name in self._registry

    def register(self, name: str, table: object) -> "Session":
        """Register (or replace) *table* under *name*; returns ``self``.

        Replacing a name invalidates exactly the cached plans *and
        cached answer tables* that read it — statistics of the other
        registered tables stay warm, and a replacement of the same
        schema refreshes the cached statistics incrementally from the
        row delta.
        """
        distributions = None
        source = table
        if isinstance(table, PCTable):
            distributions = table.distributions
            ctable = table.table
        elif isinstance(table, CoddTable):
            # Codd semantics: "every variable occurrence is an
            # independent unknown", so name collisions across
            # registrations (fresh_codd_table numbers nulls from zero)
            # must never correlate two tables.
            ctable = self._freshen_variables(name, table)
        elif isinstance(table, CTable):
            # v-/c-tables are NOT renamed: repeating a variable is the
            # representation's way of *expressing* correlation, within
            # and across tables.
            ctable = table
        elif isinstance(table, Table):
            # Freshen the embedding's synthetic variable names (q0, o0,
            # …): a weak-system table's worlds are independent of every
            # other table's, but ctable_of numbers variables from zero
            # for each input, and shared names would silently correlate
            # separately registered tables.
            ctable = self._freshen_variables(name, ctable_of(table))
        elif isinstance(table, Instance):
            ctable = CTable(
                [make_row(row) for row in table], arity=table.arity
            )
        else:
            raise TableError(
                f"cannot register {type(table).__name__!r}: expected a "
                "representation-system table, a PCTable, or an Instance"
            )
        if self._engine.config.verify_plans:
            # Conditions entering the engine must satisfy the identity
            # invariant (canonical interned formulas) and stay inside
            # the declared domain metadata.
            PlanVerifier(mode=self._engine.config.verify_mode).verify_ctable(
                name, ctable
            )
        previous = self._registry.get(name)
        if previous is not None and previous.ctable.arity == ctable.arity:
            # Incremental refresh: absorb the row delta into the cached
            # accumulator instead of re-walking the whole table (and
            # every condition formula) from scratch.  A schema change
            # falls through to the full rebuild below.
            accumulator = previous.accumulator
            accumulator.apply_delta(previous.ctable.rows, ctable.rows)
        else:
            accumulator = StatsAccumulator.from_ctable(ctable)
        self._registry[name] = _Registered(
            source,
            ctable,
            accumulator.stats(),
            accumulator,
            distributions,
        )
        self._merged_distributions = None
        self._engine._plan_cache.invalidate(self._id, (name,))
        self._engine._result_cache.invalidate(self._id, (name,))
        self._engine._circuit_cache.invalidate(self._id, (name,))
        # A re-register is a wholesale replacement, not a delta: any
        # standing view reading the name rebuilds on its next refresh
        # (and picks up a freshly planned tree while it is at it).
        for view in self._views.values():
            if name in view.relations:
                view.invalidate()
        return self

    # ------------------------------------------------------------------
    # Mutation API — signed deltas for incremental view maintenance
    # ------------------------------------------------------------------

    def insert(self, name: str, rows: Iterable[object]) -> "Session":
        """Append *rows* to the registered relation *name*.

        Rows take the same shapes the :class:`~repro.tables.ctable.CTable`
        constructor accepts — :class:`CRow`, ``(values, condition)``
        pairs, or bare value tuples.  The mutation rolls the cached
        statistics forward from the row delta, invalidates exactly the
        cached plans/answers/circuits that read *name*, and hands every
        standing materialized view a signed
        :class:`~repro.ivm.delta.DeltaBatch` (consumed on its next
        ``refresh``).  The coerced table object changes;
        :meth:`source` keeps returning the originally registered object.
        """
        return self._mutate(name, (), tuple(rows), "insert")

    def delete(self, name: str, rows: Iterable[object]) -> "Session":
        """Remove *rows* from the registered relation *name*.

        Each given row removes the **last** structurally equal
        occurrence (same values, same interned condition) — so an
        insert followed by a delete of the same rows restores the
        relation byte-identically even when earlier duplicates exist.
        A row that is not present raises :class:`TableError`.
        """
        return self._mutate(name, tuple(rows), (), "delete")

    def update(
        self, name: str, replacements: Iterable[Tuple[object, object]]
    ) -> "Session":
        """Replace rows of *name*: each ``(old, new)`` pair deletes
        ``old`` and appends ``new``, as one atomic signed delta batch."""
        olds: List[object] = []
        news: List[object] = []
        for old, new in replacements:
            olds.append(old)
            news.append(new)
        return self._mutate(name, tuple(olds), tuple(news), "update")

    @staticmethod
    def _coerce_rows(rows: Sequence[object]) -> List[CRow]:
        """Normalize mutation-API rows like the ``CTable`` constructor."""
        normalized: List[CRow] = []
        for row in rows:
            if isinstance(row, CRow):
                normalized.append(row)
            elif (
                isinstance(row, tuple)
                and len(row) == 2
                and isinstance(row[1], Formula)
                and isinstance(row[0], (tuple, list))
            ):
                normalized.append(make_row(row[0], row[1]))
            else:
                normalized.append(make_row(row))  # type: ignore[arg-type]
        return normalized

    @staticmethod
    def _rebuild_table(old: CTable, rows: Sequence[CRow]) -> CTable:
        """A same-metadata table with the mutated row sequence.

        The constructor re-validates arity and finite-domain coverage,
        so a malformed mutation raises before any state changes.
        """
        if isinstance(old, BooleanCTable):
            return BooleanCTable(
                rows, arity=old.arity, global_condition=old.global_condition
            )
        return CTable(
            rows,
            arity=old.arity,
            domains=old.domains,
            global_condition=old.global_condition,
        )

    def _mutate(
        self,
        name: str,
        deletes: Sequence[object],
        inserts: Sequence[object],
        op: str,
    ) -> "Session":
        entry = self._entry(name)
        old_table = entry.ctable
        delete_rows = self._coerce_rows(deletes)
        # Rows whose condition is already false can never appear — the
        # c-table constructor drops them, so the delta must too.
        insert_rows = [
            row for row in self._coerce_rows(inserts)
            if row.condition != BOTTOM
        ]
        working = list(old_table.rows)
        ids = list(entry.row_ids)
        removed: List[Tuple[int, CRow]] = []
        for row in delete_rows:
            for index in range(len(working) - 1, -1, -1):
                if working[index] == row:
                    break
            else:
                raise TableError(
                    f"cannot delete from {name!r}: row {row!r} is not present"
                )
            working.pop(index)
            removed.append((ids.pop(index), row))
        next_id = entry.next_row_id
        added = [
            (next_id + offset, row) for offset, row in enumerate(insert_rows)
        ]
        new_table = self._rebuild_table(
            old_table, working + [row for _, row in added]
        )
        if self._engine.config.verify_plans:
            PlanVerifier(mode=self._engine.config.verify_mode).verify_ctable(
                name, new_table
            )
        entry.ctable = new_table
        entry.row_ids = ids + [row_id for row_id, _ in added]
        entry.next_row_id = next_id + len(added)
        entry.accumulator.remove_rows(row for _, row in removed)
        entry.accumulator.add_rows(insert_rows)
        entry.stats = entry.accumulator.stats()
        engine = self._engine
        engine._plan_cache.invalidate(self._id, (name,))
        engine._result_cache.invalidate(self._id, (name,))
        engine._circuit_cache.invalidate(self._id, (name,))
        batch = DeltaBatch.from_rows(
            name, new_table, tuple(removed), tuple(added)
        )
        for view in self._views.values():
            if name in view.relations:
                view.push(batch)
        engine._metrics.counter(IVM_MUTATIONS_TOTAL, labels={"op": op})
        if removed:
            engine._metrics.counter(
                IVM_DELTA_ROWS_TOTAL, len(removed), labels={"sign": "delete"}
            )
        if added:
            engine._metrics.counter(
                IVM_DELTA_ROWS_TOTAL, len(added), labels={"sign": "insert"}
            )
        return self

    # ------------------------------------------------------------------
    # Materialized-view plumbing (maintenance="incremental")
    # ------------------------------------------------------------------

    def _ivm_bindings(self, query: Query) -> Dict[str, Binding]:
        bindings: Dict[str, Binding] = {}
        for name in query.relation_names():
            entry = self._entry(name)
            bindings[name] = (entry.ctable, tuple(entry.row_ids))
        return bindings

    def _maintained_result(
        self, prepared: "PreparedQuery"
    ) -> Tuple[CTable, str]:
        """Serve *prepared* from its maintained view, (re)building it
        on the current plan when dirty; returns ``(table, mode)``."""
        config = prepared.config
        key = (
            prepared.query,
            config.optimize,
            config.simplify_conditions,
        )
        view = self._views.get(key)
        if view is None or view.dirty:
            view = MaterializedView(
                prepared.plan(), config.simplify_conditions
            )
            self._views[key] = view
            while len(self._views) > Session._MAX_VIEWS:
                self._views.popitem(last=False)
        self._views.move_to_end(key)
        result, mode = view.refresh(self._ivm_bindings(prepared.query))
        if config.verify_plans and mode in ("build", "delta"):
            PlanVerifier(mode=config.verify_mode).verify_view(
                view.plan, view
            )
        return result, mode

    def table(self, name: str) -> CTable:
        """The registered table's (cached) c-table embedding."""
        return self._entry(name).ctable

    def source(self, name: str) -> object:
        """The originally registered object (pre-coercion)."""
        return self._entry(name).source

    def stats(self, name: str) -> TableStats:
        """The cached :class:`TableStats` of one registered table."""
        return self._entry(name).stats

    def distributions(self) -> Dict[str, Dict[Hashable, Fraction]]:
        """Variable distributions merged across registered pc-tables.

        Conflicting distributions for one variable name raise: variables
        are global to a session, as they are to a c-table's valuations.
        The merge is cached and recomputed only after ``register``.
        """
        if self._merged_distributions is not None:
            return self._merged_distributions
        merged = _merge_distribution_sources(self._distribution_sources())
        self._merged_distributions = merged
        return merged

    def _distribution_sources(
        self,
    ) -> Tuple[Mapping[str, Mapping[Hashable, Fraction]], ...]:
        """The registered pc-tables' distribution maps, in name order."""
        return tuple(
            distributions
            for name in sorted(self._registry)
            if (distributions := self._registry[name].distributions)
            is not None
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse query text against the registry's relation schema."""
        relations = {
            name: entry.ctable.arity
            for name, entry in self._registry.items()
        }
        return parse_query(text, relations)

    def prepare(
        self,
        query: Union[Query, str],
        *,
        simplify_conditions: Optional[bool] = None,
        optimize: Optional[bool] = None,
        executor: Optional[str] = None,
        num_workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        trace: Optional[bool] = None,
    ) -> "PreparedQuery":
        """Normalize, bind, and wrap *query* for repeated execution.

        The executor knobs (``executor``/``num_workers``/``morsel_size``)
        override the engine config per prepared query; the answer is
        identical whichever executor runs it.  ``trace=True`` records a
        span trace per execution (see ``Engine.last_trace()``).
        """
        parse_seconds: Optional[float] = None
        if isinstance(query, str):
            started = perf_counter()
            query = self.parse(query)
            parse_seconds = perf_counter() - started
        query = self._engine.intern_query(query)
        # Structured pre-translation diagnostics: unknown relations and
        # arity mismatches surface here, naming the nearest registered
        # relation, instead of as a KeyError deep inside planning.
        PlanVerifier().verify_query(
            query,
            {
                name: entry.ctable.arity
                for name, entry in self._registry.items()
            },
        )
        config = self._engine.config.with_options(
            simplify_conditions=simplify_conditions,
            optimize=optimize,
            executor=executor,
            num_workers=num_workers,
            morsel_size=morsel_size,
            trace=trace,
        )
        return PreparedQuery(self, query, config, parse_seconds)

    def query(self, query: Union[Query, str], **options: Any) -> "Dataset":
        """The lazy entry point: ``session.query(q).certain()`` etc."""
        return self.prepare(query, **options).dataset()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _freshen_variables(name: str, ctable: CTable) -> CTable:
        """Prefix the table's variables with the relation name."""
        rename = {
            variable: f"{name}.{variable}"
            for variable in ctable.variables()
        }
        if not rename:
            return ctable
        return ctable.rename_variables(rename)

    def _entry(self, name: str) -> _Registered:
        entry = self._registry.get(name)
        if entry is None:
            hint = nearest_name(name, self.names())
            raise QueryError(
                f"no table registered under {name!r}; registered names "
                f"are {list(self.names())}{hint}"
            )
        return entry

    def _bindings(self, query: Query) -> Dict[str, CTable]:
        return {
            name: self._entry(name).ctable
            for name in query.relation_names()
        }

    def _fingerprint(
        self, query: Query
    ) -> Tuple[Tuple[str, int, TableStats], ...]:
        """(schema, statistics) parts of the plan-cache key."""
        parts: list[Tuple[str, int, TableStats]] = []
        for name in sorted(query.relation_names()):
            entry = self._entry(name)
            parts.append((name, entry.ctable.arity, entry.stats))
        return tuple(parts)


class PreparedQuery:
    """One query, planned once against the session's current statistics.

    The optimized plan is memoized in the engine's LRU plan cache keyed
    on (query, schema, statistics fingerprint, optimize flag); as long as
    the registry does not change, every execution — and every
    :class:`Dataset` terminal — reuses the identical plan object.
    """

    __slots__ = ("_session", "_query", "_config", "_parse_seconds")

    def __init__(
        self,
        session: Session,
        query: Query,
        config: ExecutionConfig,
        parse_seconds: Optional[float] = None,
    ) -> None:
        self._session = session
        self._query = query
        self._config = config
        # Wall seconds spent parsing the query text (None when prepared
        # from an AST); surfaces as the trace's parse span.
        self._parse_seconds = parse_seconds

    @property
    def query(self) -> Query:
        return self._query

    @property
    def config(self) -> ExecutionConfig:
        return self._config

    @property
    def session(self) -> Session:
        return self._session

    def _plan_key(self) -> Tuple[object, ...]:
        session = self._session
        return (
            session._id,
            self._query,
            session._fingerprint(self._query),
            self._config.optimize,
        )

    def _plan_entry(self) -> _PlanEntry:
        """The cached (logical, lazily-lowered physical) plan pair."""
        session = self._session
        engine = session.engine
        key = self._plan_key()
        cache = engine._plan_cache
        entry = cache.get(key)
        if entry is None:
            names = frozenset(self._query.relation_names())
            with trace_span(SPAN_PLAN, cached=False):
                logical = build_plan(
                    self._query,
                    lambda: {name: session.stats(name) for name in names},
                    self._config.optimize,
                    verify=self._config.verify_plans,
                    verify_mode=self._config.verify_mode,
                )
            entry = _PlanEntry(logical)
            cache.put(key, entry, session._id, names)
        else:
            tracer = current_tracer()
            if tracer is not None:
                tracer.event(SPAN_PLAN, cached=True)
        return entry

    def plan(self) -> PlanNode:
        """The (cached) logical plan this query executes."""
        return self._plan_entry().logical

    def _parallel_spec(self) -> Optional[ParallelSpec]:
        """The morsel spec of this query's config (None when serial)."""
        config = self._config
        if config.executor != "parallel":
            return None
        return ParallelSpec(config.num_workers, config.morsel_size)

    def physical_plan(self) -> PhysicalOp:
        """The physical plan, lowered once per morsel size and cached
        alongside the logical one (same cache entry, same invalidation).

        Under ``executor="parallel"`` the tree carries the per-operator
        parallel/serial decisions for the config's morsel size — visible
        through ``explain(physical=True)``.
        """
        entry = self._plan_entry()
        spec = self._parallel_spec()
        key = None if spec is None else spec.morsel_size
        lowered = entry.physical.get(key)
        if lowered is None:
            stats = {
                name: self._session.stats(name)
                for name in self._query.relation_names()
            }
            verifier = (
                PlanVerifier(stats, mode=self._config.verify_mode)
                if self._config.verify_plans
                else None
            )
            with trace_span(SPAN_LOWER, morsel_size=key):
                lowered = lower(
                    entry.logical, stats, parallel=spec, verifier=verifier
                )
            entry.physical[key] = lowered
        return lowered

    def _result_key(self) -> Tuple[object, ...]:
        session = self._session
        config = self._config
        return (
            "result",
            session._id,
            self._query,
            session._fingerprint(self._query),
            config.optimize,
            config.simplify_conditions,
            config.executor,
        )

    def refresh(self) -> CTable:
        """Bring the maintained answer up to date and return it.

        Under ``maintenance="incremental"`` this consumes the signed
        delta batches pending from :meth:`Session.insert` /
        :meth:`~Session.delete` / :meth:`~Session.update` calls since
        the last refresh, folds them through the view's operator
        states, and re-caches the maintained table under the current
        result-cache key — the next :meth:`execute` is a cache hit on a
        never-stale entry.  The returned table is structurally
        identical (rows, interned condition objects, order) to fully
        re-executing the view's plan on the mutated tables.

        Under ``maintenance="rerun"`` it simply re-executes.
        """
        config = self._config
        if config.maintenance != "incremental":
            return self._execute()
        session = self._session
        engine = session.engine
        started = perf_counter()
        with trace_span(SPAN_REFRESH) as span:
            result, mode = session._maintained_result(self)
            if span is not None:
                span.attrs["mode"] = mode
        engine._metrics.counter(IVM_REFRESH_TOTAL, labels={"mode": mode})
        engine._metrics.histogram(
            IVM_REFRESH_SECONDS, perf_counter() - started,
            labels={"mode": mode},
        )
        engine._result_cache.put(
            self._result_key(),
            result,
            session._id,
            frozenset(self._query.relation_names()),
        )
        return result

    def execute(self) -> CTable:
        """Evaluate the plan against the registry's current tables.

        A repeated identical read — same session state, same query, same
        config — is served from the engine's result cache without
        executing (or even lowering) any plan; ``register`` invalidates
        per relation name.  With ``trace=True`` in the config, a span
        trace of the execution lands in ``Engine.last_trace()``.
        Under ``maintenance="incremental"`` the read is served from the
        query's maintained materialized view (refreshing it first), so
        repeated reads over mutating tables pay delta-propagation cost
        instead of full re-execution.
        """
        if not self._config.trace:
            return self._execute()
        engine = self._session.engine
        tracer = Tracer(query=repr(self._query))
        with tracer.activate():
            if self._parse_seconds is not None:
                tracer.event(SPAN_PARSE, seconds=self._parse_seconds)
            answered = self._execute()
        engine._store_trace(tracer.to_dict())
        return answered

    def _execute(
        self,
        collector: Optional[TraceCollector] = None,
        use_result_cache: bool = True,
    ) -> CTable:
        """The execution body; runs under whatever tracer is active."""
        engine = self._session.engine
        config = self._config
        results = engine._result_cache
        key = self._result_key()
        if use_result_cache:
            answered = results.get(key)
            if answered is not None:
                engine._metrics.counter(
                    QUERIES_TOTAL,
                    labels={"cached": "true", "executor": config.executor},
                )
                tracer = current_tracer()
                if tracer is not None:
                    tracer.event(
                        SPAN_EXECUTE, cached=True, executor=config.executor
                    )
                return answered
        if (
            config.maintenance == "incremental"
            and use_result_cache
            and collector is None
            and current_tracer() is None
        ):
            # Serve the read from the maintained materialized view.  An
            # active tracer (or an analyze collector) falls through to
            # the executor path instead: span traces document an actual
            # plan execution, and the maintained state has none to show.
            started = perf_counter()
            answered, mode = self._session._maintained_result(self)
            engine._metrics.counter(IVM_REFRESH_TOTAL, labels={"mode": mode})
            engine._metrics.histogram(
                IVM_REFRESH_SECONDS, perf_counter() - started,
                labels={"mode": mode},
            )
            engine._metrics.counter(
                QUERIES_TOTAL,
                labels={"cached": "false", "executor": config.executor},
            )
            engine._metrics.histogram(
                QUERY_SECONDS,
                perf_counter() - started,
                labels={"executor": config.executor},
            )
            results.put(
                key,
                answered,
                self._session._id,
                frozenset(self._query.relation_names()),
            )
            return answered
        bindings = self._session._bindings(self._query)
        if (
            collector is None
            and config.executor != "interpreted"
            and current_tracer() is not None
        ):
            collector = TraceCollector()
        # Resolve planning and lowering before the execute span opens so
        # the plan/lower spans render as siblings of execute, not inside
        # it — and so the summary below never re-enters _plan_entry.
        physical: Optional[PhysicalOp] = None
        if config.executor == "interpreted":
            logical = self.plan()
        else:
            physical = self.physical_plan()
        started = perf_counter()
        with trace_span(
            SPAN_EXECUTE, cached=False, executor=config.executor
        ) as span:
            if physical is None:
                answered = execute_plan(
                    logical,
                    bindings,
                    simplify_conditions=config.simplify_conditions,
                )
            elif config.executor == "parallel":
                answered = execute_parallel(
                    physical,
                    bindings,
                    num_workers=config.num_workers,
                    morsel_size=config.morsel_size,
                    simplify_conditions=config.simplify_conditions,
                    collector=collector,
                )
            else:
                answered = execute_physical(
                    physical,
                    bindings,
                    simplify_conditions=config.simplify_conditions,
                    collector=collector,
                )
            if span is not None and collector is not None:
                span.attrs["operators"] = collector.summary(physical)
        engine._metrics.counter(
            QUERIES_TOTAL,
            labels={"cached": "false", "executor": config.executor},
        )
        engine._metrics.histogram(
            QUERY_SECONDS,
            perf_counter() - started,
            labels={"executor": config.executor},
        )
        if use_result_cache:
            results.put(
                key,
                answered,
                self._session._id,
                frozenset(self._query.relation_names()),
            )
        return answered

    def explain(self, physical: bool = False, analyze: bool = False) -> str:
        """Render the cached plan with cardinality/condition estimates.

        ``physical=True`` renders the lowered operator tree instead —
        the hash-join build sides and filter strategies actually chosen.
        ``analyze=True`` *executes* the query under tracing and renders
        the physical tree with estimated-vs-actual cardinalities,
        per-operator wall time, morsel counts, cache-hit provenance,
        and a drift flag on operators whose actuals diverge ≥4× from
        the estimates.
        """
        if analyze:
            return self._explain_analyze()
        if physical:
            return explain_physical(self.physical_plan())
        stats = {
            name: self._session.stats(name)
            for name in self._query.relation_names()
        }
        return explain_plan(self.plan(), stats)

    def _explain_analyze(self) -> str:
        """Execute under full instrumentation and render the actuals.

        Always re-executes (a memoized answer has no actuals to report)
        and bypasses the result cache in both directions, so repeated
        EXPLAIN ANALYZE calls measure real work and never pollute the
        cache statistics they report on.  The interpreted executor has
        no per-operator kernels to time, so it is analyzed through the
        structurally identical vectorized lowering.
        """
        session = self._session
        engine = session.engine
        config = self._config
        executor = (
            config.executor if config.executor != "interpreted" else "vectorized"
        )
        result_cached = engine._result_cache.contains(self._result_key())
        collector = TraceCollector()
        tracer = Tracer(query=repr(self._query))
        with tracer.activate():
            if self._parse_seconds is not None:
                tracer.event(SPAN_PARSE, seconds=self._parse_seconds)
            physical_tree = self.physical_plan()
            bindings = session._bindings(self._query)
            with tracer.span(
                SPAN_EXECUTE, cached=False, executor=executor
            ) as span:
                if executor == "parallel":
                    execute_parallel(
                        physical_tree,
                        bindings,
                        num_workers=config.num_workers,
                        morsel_size=config.morsel_size,
                        simplify_conditions=config.simplify_conditions,
                        collector=collector,
                    )
                else:
                    execute_physical(
                        physical_tree,
                        bindings,
                        simplify_conditions=config.simplify_conditions,
                        collector=collector,
                    )
                span.attrs["operators"] = collector.summary(physical_tree)
        engine._store_trace(tracer.to_dict())
        spec = self._parallel_spec()
        return render_analyze(
            physical_tree,
            collector,
            tracer,
            executor=executor,
            num_workers=None if spec is None else spec.num_workers,
            morsel_size=None if spec is None else spec.morsel_size,
            result_cached=result_cached,
        )

    def dataset(self) -> "Dataset":
        return Dataset(self)


class Dataset:
    """A lazy answer: nothing runs until a terminal method is called.

    All terminals share the one :class:`PreparedQuery` and the one
    evaluated answer table ``q̄(T)`` — the paper's point made executable:
    certain/possible answers, tuple probabilities, and lineage are
    different *readings* of the same representation, not different query
    evaluations.

    The first terminal call snapshots the registry state it needs (the
    answer table and the variable distributions together), so every
    reading of one dataset is consistent even if the session
    re-registers tables afterwards; ask the session for a fresh dataset
    to observe the new state.
    """

    __slots__ = (
        "_prepared",
        "_collected",
        "_distribution_sources",
        "_distributions",
        "_plan",
        "_stats",
    )

    def __init__(self, prepared: PreparedQuery) -> None:
        self._prepared = prepared
        self._collected: Optional[CTable] = None
        self._distribution_sources: Optional[
            Tuple[Mapping[str, Mapping[Hashable, Fraction]], ...]
        ] = None
        self._distributions: Optional[_Distributions] = None
        self._plan: Optional[PlanNode] = None
        self._stats: Optional[Dict[str, TableStats]] = None

    @property
    def prepared(self) -> PreparedQuery:
        return self._prepared

    @property
    def query(self) -> Query:
        return self._prepared.query

    def collect(self) -> CTable:
        """The answer c-table ``q̄(T)`` (memoized; the lazy boundary).

        The registry state the other terminals need — the plan, its
        statistics, the pc-table distributions — is snapshotted at the
        same moment (by reference; merging and rendering stay lazy), so
        probability/lineage/explain readings remain consistent with the
        answer even across later ``register`` calls.
        """
        if self._collected is None:
            session = self._prepared.session
            self._distribution_sources = session._distribution_sources()
            self._plan = self._prepared.plan()
            self._stats = {
                name: session.stats(name)
                for name in self._prepared.query.relation_names()
            }
            self._collected = self._prepared.execute()
        return self._collected

    def to_pctable(self) -> PCTable:
        """The answer as a pc-table (requires registered distributions)."""
        answered = self.collect().without_domains()
        distributions = self._merged_distributions()
        missing = sorted(answered.variables() - set(distributions))
        if missing:
            raise ProbabilityError(
                f"answer mentions variables {missing} with no registered "
                "distribution; register the inputs as PCTables"
            )
        return PCTable(answered, distributions)

    def explain(self, physical: bool = False, analyze: bool = False) -> str:
        """The executed plan, annotated with estimates.

        Once the dataset has collected, the plan and statistics are part
        of its snapshot: the rendering describes the plan that produced
        the memoized answer, not whatever a later ``register`` would
        plan.  ``physical=True`` renders the lowered physical operator
        tree (build sides, filter strategies) instead of the logical one.
        ``analyze=True`` re-executes the query under tracing against the
        session's *current* tables and renders estimated-vs-actual
        cardinalities per operator (the memoized answer itself is
        untouched).
        """
        if analyze:
            return self._prepared.explain(analyze=True)
        if self._plan is not None:
            if physical:
                return explain_physical(
                    lower(
                        self._plan,
                        self._stats,
                        parallel=self._prepared._parallel_spec(),
                    )
                )
            return explain_plan(self._plan, self._stats)
        return self._prepared.explain(physical=physical)

    # ------------------------------------------------------------------
    # Certain / possible answers
    # ------------------------------------------------------------------

    def certain(
        self,
        *,
        method: str = "symbolic",
        domain: Optional[Union[Domain, object]] = None,
        max_candidates: Optional[int] = None,
    ) -> Instance:
        """Tuples in the answer of *every* world.

        ``method="symbolic"`` decides membership-condition validity (no
        world is ever materialized); ``method="worlds"`` enumerates
        ``Mod`` of the answer table — by Theorem 4 that equals the set
        of per-world answers, so the intersection is the certain answer.
        Raises :class:`~repro.errors.NoWorldsError` when the
        representation admits no world at all (the intersection over
        zero worlds is vacuously "every tuple").
        """
        if method == "symbolic":
            self._check_method_options(method, domain, max_candidates)
            from repro.worlds.symbolic_answers import certain_from_answer

            return certain_from_answer(
                self.collect(), self._max_candidates(max_candidates)
            )
        if method == "worlds":
            self._check_method_options(method, domain, max_candidates)
            from repro.worlds.answers import intersect_worlds

            answered = self.collect()
            return intersect_worlds(
                self._worlds(answered, domain), answered.arity
            )
        raise ValueError(f"unknown method {method!r}: 'symbolic' or 'worlds'")

    def possible(
        self,
        *,
        method: str = "symbolic",
        domain: Optional[Union[Domain, object]] = None,
        max_candidates: Optional[int] = None,
    ) -> Instance:
        """Tuples in the answer of *some* world.

        Unlike :meth:`certain`, this is well-defined over zero worlds:
        the union over the empty family is ∅, so an unsatisfiable
        representation yields the empty instance rather than an error.
        With ``method="symbolic"`` only the constant possible answers
        are returned (rows with variables denote tuple *patterns*; the
        full description is :meth:`collect` itself).
        """
        if method == "symbolic":
            self._check_method_options(method, domain, max_candidates)
            from repro.worlds.symbolic_answers import possible_from_answer

            return possible_from_answer(
                self.collect(), self._max_candidates(max_candidates)
            )
        if method == "worlds":
            self._check_method_options(method, domain, max_candidates)
            from repro.worlds.answers import union_worlds

            answered = self.collect()
            return union_worlds(
                self._worlds(answered, domain), answered.arity
            )
        raise ValueError(f"unknown method {method!r}: 'symbolic' or 'worlds'")

    # ------------------------------------------------------------------
    # Probabilistic / provenance readings
    # ------------------------------------------------------------------

    def lineage(self, row: Row) -> Formula:
        """The condition under which *row* is in the answer (Section 9:
        the membership condition *is* the tuple's why-provenance)."""
        from repro.worlds.symbolic_answers import membership_condition

        answered = self.collect()
        row = tuple(row)
        if len(row) != answered.arity:
            raise QueryError(
                f"tuple {row!r} has arity {len(row)}, answer has "
                f"arity {answered.arity}"
            )
        return membership_condition(answered, row)

    def probability(
        self, row: Row, strategy: Optional[str] = None
    ) -> Fraction:
        """``P[row ∈ q(I)]`` by counting the lineage condition.

        *strategy* overrides the prepared config's ``prob_strategy``
        (see :class:`~repro.engine.config.ExecutionConfig`): Shannon
        expansion within the variable budget, the compiled
        d-DNNF + weighted-model-counting route beyond it.  Compiled
        circuits live in the engine's circuit cache keyed on the
        interned lineage and the distribution snapshot, so a prepared
        probability hot loop compiles once and answers from memory;
        re-``register`` of any input relation evicts them.
        """
        lineage = self.lineage(row)  # collects, snapshotting distributions
        distributions = self._merged_distributions()
        missing = sorted(lineage.variables() - set(distributions))
        if missing:
            raise ProbabilityError(
                f"lineage mentions variables {missing} with no registered "
                "distribution; register the inputs as PCTables"
            )
        prepared = self._prepared
        return prepared.session.engine.condition_probability(
            lineage,
            distributions,
            strategy=strategy if strategy is not None else prepared.config.prob_strategy,
            scope=prepared.session._id,
            dependencies=frozenset(prepared.query.relation_names()),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_method_options(
        method: str, domain: object, max_candidates: Optional[int]
    ) -> None:
        """Reject options the chosen method cannot honor, loudly.

        Silently dropping ``domain`` under the symbolic method (or
        ``max_candidates`` under worlds enumeration) would let a caller
        believe a restriction applied when it did not.
        """
        if method == "symbolic" and domain is not None:
            raise ValueError(
                "domain= applies only to method='worlds'; the symbolic "
                "method decides validity/satisfiability exactly, without "
                "a world enumeration to restrict"
            )
        if method == "worlds" and max_candidates is not None:
            raise ValueError(
                "max_candidates= applies only to method='symbolic'; "
                "worlds enumeration has no candidate pool"
            )

    def _merged_distributions(self) -> Dict[str, Dict[Hashable, Fraction]]:
        """Merge the snapshotted distributions, lazily.

        The merge (and its conflict check) runs only when a
        probabilistic reading is actually requested, so sessions whose
        pc-tables have clashing variable names can still serve every
        non-probabilistic query.
        """
        if self._distributions is None:
            self.collect()  # ensure the sources snapshot exists
            self._distributions = _merge_distribution_sources(
                self._distribution_sources
            )
        return self._distributions

    def _max_candidates(self, override: Optional[int]) -> int:
        if override is not None:
            return override
        return self._prepared.config.max_candidates

    @staticmethod
    def _worlds(answered: CTable, domain: Any) -> "IDatabase":
        from repro.worlds.answers import mod_of

        return mod_of(answered, domain)
