"""The session-layer facade: Engine, Session, Dataset, ExecutionConfig.

Primary entry point of the library::

    from repro import Engine

    engine = Engine()                      # optimizer on, plans cached
    session = engine.session(V=my_table)   # any representation system
    answers = session.query("pi[1](V)")    # lazy Dataset
    answers.certain()                      # one shared PreparedQuery
    answers.possible()
    answers.lineage((1,))

The module-level :func:`default_engine` backs the legacy flat functions
(``apply_query_to_ctable``, ``certain_answer_symbolic``, ``lineage_of``,
…), which are now thin shims; :func:`set_default_engine` swaps the
engine they route through.  Note the shims pass their historical
``optimize=False``/``simplify_conditions=False`` defaults explicitly,
so swapping the engine's *config* does not change their behavior —
sessions created from the swapped engine are what observe its config.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.cache import PlanCache, ResultCache
from repro.engine.config import ExecutionConfig
from repro.engine.session import (
    Dataset,
    Engine,
    PreparedQuery,
    Session,
    bind_single_table,
)

_default_engine: Optional[Engine] = None


def default_engine() -> Engine:
    """The engine behind the legacy top-level functions (lazily built).

    Its config keeps the engine defaults (optimizer on); the shims pass
    their own per-call overrides, so their historical
    ``optimize=False`` / ``simplify_conditions=False`` defaults are
    preserved exactly.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine()
    return _default_engine


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace the default engine (``None`` resets to a fresh default)."""
    global _default_engine
    _default_engine = engine


__all__ = [
    "Dataset",
    "Engine",
    "ExecutionConfig",
    "PlanCache",
    "PreparedQuery",
    "ResultCache",
    "Session",
    "bind_single_table",
    "default_engine",
    "set_default_engine",
]
