"""The LRU caches behind prepared queries: plans and answer tables.

A cache entry is an optimized :class:`~repro.ctalgebra.plan.PlanNode`
keyed on everything the planner's output depends on: the (interned)
query AST, the schema of the relations it references, a fingerprint of
the statistics the optimizer saw, and the optimize flag.  Because the
statistics fingerprint is part of the key, a stale entry can never be
*returned* for changed data — invalidation exists to keep the cache from
filling up with unreachable entries and to make the re-plan-on-register
contract observable.

Entries also record which relation names they depend on, per scope (one
scope per :class:`~repro.engine.Session`), so ``session.register`` can
evict exactly the entries whose inputs changed and leave the rest warm.

:class:`ResultCache` reuses the identical machinery for *answer tables*
(``q̄(T)`` results): c-tables are immutable values and the only way a
session's inputs change is ``register``, which invalidates by relation
name — so a repeated identical read can be served without touching the
physical plan at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Set, Tuple

from repro.obs.metrics import CacheStats


class PlanCache:
    """A bounded LRU mapping plan keys to planned :class:`PlanNode` trees.

    Thread safety: an engine (and its caches) may be shared by many
    application threads and by morsel-parallel sessions, so every public
    operation runs under one re-entrant lock.  ``get``'s
    ``move_to_end``, ``put``'s eviction sweep, and ``invalidate``'s
    two-structure walk each mutate the ``OrderedDict`` *and* the
    dependency index — interleaving them across threads corrupts the
    LRU order or leaks index entries, which a single GIL-atomic dict
    operation cannot protect against.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, Tuple[object, Hashable, FrozenSet[str]]]" = (
            OrderedDict()
        )  # guarded-by: _lock
        # (scope, relation name) -> keys of entries reading that relation.
        self._by_dependency: Dict[
            Tuple[Hashable, str], Set[Hashable]
        ] = {}  # guarded-by: _lock
        # All hit/miss/eviction/invalidation accounting goes through the
        # shared CacheStats helper, constructed over this cache's own
        # (re-entrant) lock so counter updates from inside locked
        # sections stay under the same lock — never a bare increment.
        self._stats = CacheStats(lock=self._lock)

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Any:
        """Return the cached plan for *key*, or ``None`` (LRU-touching)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.miss()
                return None
            self._entries.move_to_end(key)
            self._stats.hit()
            return entry[0]

    def put(
        self,
        key: Hashable,
        plan: object,
        scope: Hashable,
        dependencies: FrozenSet[str],
    ) -> None:
        """Insert *plan*, evicting the least-recently-used entry if full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._unindex(key)
                self._entries.pop(key)
            self._entries[key] = (plan, scope, dependencies)
            for name in dependencies:
                self._by_dependency.setdefault((scope, name), set()).add(key)
            while len(self._entries) > self._capacity:
                oldest = next(iter(self._entries))
                self._unindex(oldest)  # before the pop: _unindex reads the entry
                del self._entries[oldest]
                self._stats.evicted()

    def invalidate(self, scope: Hashable, names: Iterable[str]) -> int:
        """Evict entries of *scope* that read any of *names*; return count."""
        with self._lock:
            stale: Set[Hashable] = set()
            for name in names:
                stale |= self._by_dependency.get((scope, name), set())
            for key in stale:
                self._unindex(key)
                self._entries.pop(key, None)
            self._stats.invalidated(len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_dependency.clear()

    def contains(self, key: Hashable) -> bool:
        """Whether *key* is present — no LRU touch, no counter update.

        EXPLAIN ANALYZE uses this to report cache provenance without
        perturbing the statistics it is reporting on.
        """
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counters since construction (``clear`` does not reset them)."""
        with self._lock:
            counters = self._stats.as_dict()
            counters["entries"] = len(self._entries)
            counters["capacity"] = self._capacity
            return counters

    def _unindex(self, key: Hashable) -> None:  # requires-lock: _lock
        entry = self._entries.get(key)
        if entry is None:
            return
        _, scope, dependencies = entry
        for name in dependencies:
            bucket = self._by_dependency.get((scope, name))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_dependency[(scope, name)]


class ResultCache(PlanCache):
    """A bounded LRU mapping read keys to answer :class:`CTable` objects.

    Keys mirror the plan cache's — (session scope, interned query,
    schema + statistics fingerprint, the config fields that shape the
    answer) — and entries are invalidated per relation on re-register.
    Correctness rests on that synchronous invalidation: the statistics
    fingerprint narrows accidental key reuse but is an aggregate two
    distinct tables can share, so any new table-mutation path MUST call
    ``invalidate`` like ``Session.register`` does.  Within an unchanged
    registry, c-table immutability makes sharing the cached answer safe.

    The mutation API (``Session.insert``/``delete``/``update``) keeps
    the same contract but upgrades it: after the per-relation
    invalidation drops the stale entry, ``maintenance="incremental"``
    *re-populates* the key in place — the maintained view's refreshed
    table is ``put`` back under the post-mutation fingerprint — so a
    standing read loop over mutating data stays a cache hit without
    ever observing a stale answer.
    """

    __slots__ = ()


class CircuitCache(PlanCache):
    """A bounded LRU mapping condition keys to compiled d-DNNF circuits.

    Entries are :class:`repro.prob.wmc.CompiledCondition` objects keyed
    on the interned lineage formula plus a fingerprint of the
    distributions restricted to the formula's variables — the two inputs
    that fully determine the probability.  The key therefore *proves*
    correctness on its own (a hit can never be wrong); invalidation, per
    relation scope alongside the result cache on ``Session.register``,
    exists only to drop entries whose lineages can no longer be asked
    for.  Because the cached object memoizes its count, a prepared
    probability loop pays compile + count once and answers every
    subsequent call from memory (benchmark E38).
    """

    __slots__ = ()
