"""Probabilistic databases and probabilistic representation systems.

Sections 6–8 of the paper, executable:

- :mod:`repro.prob.space` — finite probability spaces, product spaces
  (Definition 12, Proposition 3), image spaces (Definition 10),
- :mod:`repro.prob.pdatabase` — probabilistic databases (Definition 9),
- :mod:`repro.prob.ptables` — p-?-tables (Proposition 2) and
  p-or-set-tables (Example 6),
- :mod:`repro.prob.pctable` — probabilistic c-tables (Definition 13),
- :mod:`repro.prob.completeness` — Theorem 8: boolean pc-tables are
  complete,
- :mod:`repro.prob.closure` — Theorem 9: pc-tables are closed under RA,
- :mod:`repro.prob.tuple_prob` — the tuple-probability problem of
  [15, 22, 34], solved naively, by lineage + Shannon counting, by
  BDD compilation, and by d-DNNF + weighted model counting,
- :mod:`repro.prob.wmc` — exact weighted model counting over compiled
  d-DNNF circuits (:mod:`repro.logic.compile`): the route that scales
  probability to 50–100-variable conditions,
- :mod:`repro.prob.extensional` — the Dalvi–Suciu [9] extensional
  (safe-plan) evaluation for independent-tuple tables, including the
  hierarchical safety test.
"""

from repro.prob.space import FiniteProbSpace, image_space, product_space
from repro.prob.pdatabase import PDatabase
from repro.prob.ptables import POrSetTable, PQTable
from repro.prob.pctable import BooleanPCTable, PCTable
from repro.prob.completeness import boolean_pctable_for
from repro.prob.closure import answer_pctable, verify_prob_closure
from repro.prob.tuple_prob import (
    lineage_of,
    tuple_probability_bdd,
    tuple_probability_lineage,
    tuple_probability_naive,
    tuple_probability_wmc,
)
from repro.prob.wmc import (
    CompiledCondition,
    compile_probability,
    wmc_probability,
)
from repro.prob.bayes import DependentPCTable, VariableNetwork
from repro.prob.possibilistic import (
    PossibilisticCTable,
    PossibilisticDatabase,
    verify_possibilistic_closure,
)
from repro.prob.extensional import (
    ConjunctiveQuery,
    ProbRelation,
    atom,
    is_hierarchical,
    lineage_probability_cq,
    safe_plan_probability,
)

__all__ = [
    "BooleanPCTable",
    "CompiledCondition",
    "ConjunctiveQuery",
    "DependentPCTable",
    "FiniteProbSpace",
    "PCTable",
    "PDatabase",
    "POrSetTable",
    "PQTable",
    "PossibilisticCTable",
    "PossibilisticDatabase",
    "VariableNetwork",
    "ProbRelation",
    "answer_pctable",
    "atom",
    "boolean_pctable_for",
    "compile_probability",
    "image_space",
    "is_hierarchical",
    "lineage_of",
    "lineage_probability_cq",
    "product_space",
    "safe_plan_probability",
    "tuple_probability_bdd",
    "tuple_probability_lineage",
    "tuple_probability_naive",
    "tuple_probability_wmc",
    "verify_possibilistic_closure",
    "verify_prob_closure",
    "wmc_probability",
]
