"""Possibilistic databases (§9 future work).

The paper closes: "it would be interesting to investigate possibilistic
models [19] for databases, perhaps following again, as we did here, the
parallel with incompleteness."  This module follows exactly that
parallel:

- a **possibilistic database** assigns each instance a *possibility*
  degree in [0, 1] with max = 1 (normalization), instead of
  probabilities summing to 1;
- the incompleteness skeleton is the set of instances with positive
  possibility — forgetting degrees recovers an i-database, just as
  forgetting probabilities does in the probabilistic case;
- a **possibilistic c-table** attaches to every variable a possibility
  distribution over its domain; a valuation's possibility is the *min*
  of its choices (the standard non-interactive combination), and an
  instance's possibility is the *max* over valuations producing it —
  the (max, min) image-space construction;
- query answering is closed for the same reason as Theorem 9: ``q̄``
  preserves per-valuation outcomes, and the (max, min) aggregation
  rides along (:func:`verify_possibilistic_closure` checks it);
- tuple-level measures: **possibility** Π[t ∈ q(I)] and **necessity**
  N[t] = 1 − Π[t ∉ q(I)], the possibilistic analogues of tuple
  probability, with certain answers = tuples of necessity 1.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterator, Mapping, Tuple

from repro.errors import ProbabilityError
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase

# A possibility distribution maps outcomes to degrees in [0, 1], max 1.
PossibilityDistribution = Mapping[Hashable, Fraction]


def check_possibility_distribution(
    name: str, distribution: PossibilityDistribution
) -> None:
    """Validate degrees in [0, 1] with at least one fully possible value."""
    if not distribution:
        raise ProbabilityError(f"variable {name!r} has an empty distribution")
    top = Fraction(0)
    for value, degree in distribution.items():
        degree = Fraction(degree)
        if not 0 <= degree <= 1:
            raise ProbabilityError(
                f"possibility degree {degree} for {name!r}={value!r} "
                "outside [0, 1]"
            )
        top = max(top, degree)
    if top != 1:
        raise ProbabilityError(
            f"possibility distribution for {name!r} is subnormal "
            f"(max degree {top}, expected 1)"
        )


class PossibilisticDatabase:
    """A normalized possibility assignment over same-arity instances."""

    __slots__ = ("_degrees", "_arity")

    def __init__(
        self, degrees: Mapping[Instance, Fraction], arity: int = None
    ) -> None:
        normalized: Dict[Instance, Fraction] = {}
        top = Fraction(0)
        for instance, degree in degrees.items():
            degree = Fraction(degree)
            if not 0 <= degree <= 1:
                raise ProbabilityError(
                    f"possibility degree {degree} outside [0, 1]"
                )
            if degree > 0:
                normalized[instance] = max(
                    normalized.get(instance, Fraction(0)), degree
                )
                top = max(top, degree)
        if top != 1:
            raise ProbabilityError(
                f"possibilistic database is subnormal (max degree {top})"
            )
        arities = {instance.arity for instance in normalized}
        if len(arities) > 1:
            raise ProbabilityError(f"mixed arities: {sorted(arities)}")
        if arities:
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise ProbabilityError(
                    f"declared arity {arity} != instances' {inferred}"
                )
            arity = inferred
        elif arity is None:
            raise ProbabilityError("empty possibilistic database needs arity")
        self._degrees = normalized
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    def possibility_of(self, instance: Instance) -> Fraction:
        """Return Π[I = instance] (0 off the support)."""
        return self._degrees.get(instance, Fraction(0))

    def items(self) -> Iterator[Tuple[Instance, Fraction]]:
        """Yield (instance, degree) in deterministic order."""
        for instance in sorted(self._degrees, key=repr):
            yield instance, self._degrees[instance]

    def __len__(self) -> int:
        return len(self._degrees)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PossibilisticDatabase):
            return NotImplemented
        return self._arity == other._arity and self._degrees == other._degrees

    def __hash__(self) -> int:
        return hash((self._arity, frozenset(self._degrees.items())))

    def __repr__(self) -> str:
        body = ", ".join(f"{d}: {i!r}" for i, d in self.items())
        return f"PossibilisticDatabase[{self._arity}]{{{body}}}"

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def event_possibility(self, event) -> Fraction:
        """Π[event] = max degree over instances satisfying it."""
        return max(
            (degree for instance, degree in self._degrees.items()
             if event(instance)),
            default=Fraction(0),
        )

    def event_necessity(self, event) -> Fraction:
        """N[event] = 1 − Π[not event]."""
        return 1 - self.event_possibility(
            lambda instance: not event(instance)
        )

    def tuple_possibility(self, row: Row) -> Fraction:
        """Π[row ∈ I]."""
        row = tuple(row)
        return self.event_possibility(lambda instance: row in instance)

    def tuple_necessity(self, row: Row) -> Fraction:
        """N[row ∈ I]; equals 1 exactly for certain tuples."""
        row = tuple(row)
        return self.event_necessity(lambda instance: row in instance)

    def incompleteness_skeleton(self) -> IDatabase:
        """Forget degrees: the possible instances."""
        return IDatabase(self._degrees, arity=self._arity)

    def map_instances(self, transform) -> "PossibilisticDatabase":
        """(max, ·) image: degrees combine by max on collisions."""
        out: Dict[Instance, Fraction] = {}
        for instance, degree in self._degrees.items():
            image = transform(instance)
            out[image] = max(out.get(image, Fraction(0)), degree)
        return PossibilisticDatabase(out, arity=None)


class PossibilisticCTable:
    """A c-table with per-variable possibility distributions.

    The possibilistic counterpart of Definition 13: the product space
    becomes the (min) combination of per-variable degrees, and ``Mod``
    the (max) image under ``ν(T)``.
    """

    __slots__ = ("_table", "_distributions")

    def __init__(self, table_or_rows, distributions, arity=None) -> None:
        from repro.tables.ctable import CTable

        if isinstance(table_or_rows, CTable):
            table = table_or_rows
        else:
            table = CTable(table_or_rows, arity=arity)
        normalized = {
            name: {value: Fraction(degree)
                   for value, degree in distribution.items()}
            for name, distribution in distributions.items()
        }
        for name, distribution in normalized.items():
            check_possibility_distribution(name, distribution)
        missing = table.variables() - set(normalized)
        if missing:
            raise ProbabilityError(
                f"no distributions for variables {sorted(missing)}"
            )
        supports = {
            name: tuple(
                value
                for value, degree in normalized[name].items()
                if degree > 0
            )
            for name in table.variables()
        }
        self._table = table.with_domains(supports) if supports else table
        self._distributions = normalized

    @property
    def table(self):
        """Return the underlying c-table."""
        return self._table

    @property
    def arity(self) -> int:
        return self._table.arity

    def distributions(self):
        """Return the per-variable possibility distributions (a copy)."""
        return {name: dict(distribution)
                for name, distribution in self._distributions.items()}

    def valuation_possibilities(
        self,
    ) -> Iterator[Tuple[Dict[str, Hashable], Fraction]]:
        """Yield (valuation, min-combined degree) for positive degrees."""
        for valuation in self._table.valuations():  # enumeration-ok: possibility degrees are defined valuation-by-valuation
            degree = Fraction(1)
            for name, value in valuation.items():
                degree = min(degree, self._distributions[name][value])
            if degree > 0:
                yield valuation, degree

    def mod(self) -> PossibilisticDatabase:
        """The (max, min) image space."""
        degrees: Dict[Instance, Fraction] = {}
        for valuation, degree in self.valuation_possibilities():
            instance = self._table.apply_valuation(valuation)
            degrees[instance] = max(
                degrees.get(instance, Fraction(0)), degree
            )
        return PossibilisticDatabase(degrees, arity=self.arity)

    def answer(self, query) -> "PossibilisticCTable":
        """Closure: q̄ on the table, distributions unchanged."""
        from repro.ctalgebra.translate import apply_query_to_ctable

        answered = apply_query_to_ctable(query, self._table)
        return PossibilisticCTable(
            answered.without_domains(), self._distributions
        )

    def tuple_possibility(self, row: Row) -> Fraction:
        """Π[row ∈ I] directly from valuations (no Mod materialization)."""
        row = tuple(row)
        best = Fraction(0)
        for valuation, degree in self.valuation_possibilities():
            if row in self._table.apply_valuation(valuation).rows:
                best = max(best, degree)
        return best


def verify_possibilistic_closure(query, table: PossibilisticCTable) -> bool:
    """The possibilistic Theorem 9: Mod(q̄(T)) = q(Mod(T)) with (max, min).

    The right-hand side maps the (already max-collapsed) instance
    degrees through q; the left evaluates q̄ symbolically.  Equality
    holds because ``ν(q̄(T)) = q(ν(T))`` per valuation (Lemma 1) and max
    is insensitive to the order of collapsing.
    """
    from repro.algebra.evaluate import apply_query

    symbolic = table.answer(query).mod()  # enumeration-ok: closure verification oracle compares full possibilistic images
    image = table.mod().map_instances(  # enumeration-ok: closure verification oracle compares full possibilistic images
        lambda instance: apply_query(query, instance)
    )
    return symbolic == image
