"""Probabilistic databases (Definition 9).

A p-database is a finite probability space whose outcomes are
conventional instances.  Directly specifying one needs ``2^(|D|^n) − 1``
numbers, which is why the probabilistic representation systems of
Sections 7–8 exist; this class is nonetheless the *semantic* object all
of them denote, and the equality tests of Theorems 8 and 9 compare
p-databases.

Everything here is, by its nature, enumeration over explicit worlds —
this module is the **oracle** the scalable routes are differentially
checked against.  Production paths answer probability questions from the
*representation* instead: :meth:`repro.prob.pctable.PCTable.tuple_probability`
and :meth:`repro.engine.session.Dataset.probability` count membership
conditions symbolically (Shannon within the variable budget, compiled
d-DNNF + weighted model counting beyond it — :mod:`repro.prob.wmc`),
never materializing a :class:`PDatabase`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Hashable, Iterator, Mapping, Tuple

from repro.errors import ArityError, ProbabilityError
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase
from repro.prob.space import FiniteProbSpace


class PDatabase:
    """A probability distribution over same-arity instances."""

    __slots__ = ("_space", "_arity")

    def __init__(
        self, weights: Mapping[Instance, Fraction], arity: int = None
    ) -> None:
        space = FiniteProbSpace(weights)
        arities = {instance.arity for instance in space.outcomes}
        if arities:
            if len(arities) != 1:
                raise ArityError(
                    f"mixed arities in probabilistic database: {sorted(arities)}"
                )
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise ArityError(
                    f"declared arity {arity} does not match instances of "
                    f"arity {inferred}"
                )
            arity = inferred
        elif arity is None:
            raise ArityError("empty probabilistic database needs an arity")
        self._space = space
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def space(self) -> FiniteProbSpace:
        """Return the underlying probability space."""
        return self._space

    def probability_of(self, instance: Instance) -> Fraction:
        """Return ``P[I = instance]``."""
        return self._space.probability_of(instance)

    def items(self) -> Iterator[Tuple[Instance, Fraction]]:
        """Yield (instance, probability) in deterministic order."""
        yield from self._space.items()

    def instances(self) -> Tuple[Instance, ...]:
        """Return the support instances."""
        return self._space.outcomes

    def __len__(self) -> int:
        return len(self._space)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PDatabase):
            return NotImplemented
        return self._arity == other._arity and self._space == other._space

    def __hash__(self) -> int:
        return hash((self._arity, self._space))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{instance!r}: {weight}" for instance, weight in self.items()
        )
        return f"PDatabase[{self._arity}]{{{parts}}}"

    # ------------------------------------------------------------------
    # Probabilistic queries
    # ------------------------------------------------------------------
    def tuple_probability(self, row: Row) -> Fraction:
        """Return ``P[t ∈ I]`` — the event ``E_t`` of Section 7."""
        row = tuple(row)
        return self._space.event_probability(lambda instance: row in instance)

    def event_probability(
        self, event: Callable[[Instance], bool]
    ) -> Fraction:
        """Return the probability of an arbitrary instance event."""
        return self._space.event_probability(event)

    def expected_size(self) -> Fraction:
        """Return ``E[|I|]``."""
        return sum(
            (Fraction(len(instance)) * weight for instance, weight in self.items()),
            Fraction(0),
        )

    def map_instances(
        self, transform: Callable[[Instance], Instance]
    ) -> "PDatabase":
        """Return the image p-database (Definition 10 for instances)."""
        weights = {}
        for instance, weight in self.items():
            image = transform(instance)
            weights[image] = weights.get(image, Fraction(0)) + weight
        return PDatabase(weights)

    def incompleteness_skeleton(self) -> IDatabase:
        """Forget probabilities: the support as an incomplete database.

        This is the "probabilistic counterpart" direction of the paper's
        conceptual contribution, read backwards.
        """
        return IDatabase(self._space.outcomes, arity=self._arity)


def pdatabase_from_pairs(*pairs, arity: int = None) -> PDatabase:
    """Convenience constructor from (instance, probability) pairs."""
    weights = {}
    for instance, weight in pairs:
        weights[instance] = weights.get(instance, Fraction(0)) + Fraction(weight)
    return PDatabase(weights, arity=arity)
