"""Probabilistic c-tables (Definition 13).

A pc-table is a c-table together with a finite probability space
``dom(x)`` for each variable; variables choose values independently.
Its semantics is the image of the product space
``V = ∏_x dom(x)`` under ``g(ν) = ν(T)`` — precisely the intro example's
Alice/Bob/Theo table, reproduced in ``examples/paper_tour.py``.

:class:`BooleanPCTable` restricts the underlying table to a boolean
c-table (variables two-valued, conditions only) — the complete fragment
of Theorem 8.

The classes *wrap* a :class:`~repro.tables.ctable.CTable` rather than
subclass it: a pc-table is a c-table plus probability data, and the
incompleteness machinery (the lifted algebra in particular) operates on
the wrapped table unchanged — that is the entire point of Theorem 9.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.errors import ProbabilityError, TableError
from repro.core.instance import Instance, Row
from repro.core.idatabase import IDatabase
from repro.logic.atoms import Const, eq
from repro.logic.counting import (
    check_distributions,
    probability as formula_probability,
)
from repro.logic.syntax import Formula, conj, disj
from repro.prob.pdatabase import PDatabase
from repro.tables.ctable import BooleanCTable, CTable


class PCTable:
    """A probabilistic c-table: c-table + per-variable distributions."""

    __slots__ = ("_table", "_distributions")

    def __init__(
        self,
        rows_or_table,
        distributions: Mapping[str, Mapping[Hashable, Fraction]],
        arity: Optional[int] = None,
    ) -> None:
        if isinstance(rows_or_table, CTable):
            table = rows_or_table
        else:
            table = self._build_table(rows_or_table, arity)
        normalized: Dict[str, Dict[Hashable, Fraction]] = {
            name: {value: Fraction(weight) for value, weight in dist.items()}
            for name, dist in distributions.items()
        }
        check_distributions(normalized)
        missing = table.variables() - set(normalized)
        if missing:
            raise ProbabilityError(
                f"no distributions for variables {sorted(missing)}"
            )
        # Align the c-table's finite domains with the distributions'
        # supports so the incompleteness and probabilistic views agree.
        supports = {
            name: tuple(
                value for value, weight in normalized[name].items() if weight > 0
            )
            for name in table.variables()
        }
        self._table = table.with_domains(supports) if supports else table
        self._distributions = normalized

    @staticmethod
    def _build_table(rows, arity: Optional[int]) -> CTable:
        return CTable(rows, arity=arity)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def table(self) -> CTable:
        """Return the underlying (finite-domain) c-table."""
        return self._table

    @property
    def arity(self) -> int:
        return self._table.arity

    @property
    def distributions(self) -> Dict[str, Dict[Hashable, Fraction]]:
        """Return the per-variable distributions (a copy)."""
        return {name: dict(dist) for name, dist in self._distributions.items()}

    def variables(self):
        """Return the table's variable names."""
        return self._table.variables()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PCTable):
            return NotImplemented
        return (
            self._table == other._table
            and self._distributions == other._distributions
        )

    def __hash__(self) -> int:
        frozen = frozenset(
            (name, frozenset(dist.items()))
            for name, dist in self._distributions.items()
        )
        return hash((self._table, frozen))

    def __repr__(self) -> str:
        return f"PCTable({self._table!r}, {self._distributions!r})"

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def valuation_space(self) -> Iterable[Tuple[Dict[str, Hashable], Fraction]]:
        """Yield (valuation, probability) over the product space V.

        Valuations violating the table's global condition (extension) are
        skipped and their mass renormalized — with the default ``true``
        global condition this is exactly the paper's product space.
        """
        names = sorted(self._table.variables())
        pools = [
            [(value, weight) for value, weight in self._distributions[name].items()
             if weight > 0]
            for name in names
        ]
        total = Fraction(0)
        admissible = []
        from repro.logic.evaluation import evaluate

        for combo in itertools.product(*pools):  # enumeration-ok: Definition 13's product space, the semantics oracle
            valuation = {
                name: value for name, (value, _) in zip(names, combo)
            }
            weight = Fraction(1)
            for _, cell_weight in combo:
                weight *= cell_weight
            if evaluate(self._table.global_condition, valuation):
                admissible.append((valuation, weight))
                total += weight
        if total == 0:
            raise ProbabilityError(
                "the global condition excludes every valuation"
            )
        for valuation, weight in admissible:
            yield valuation, weight / total

    def mod(self) -> PDatabase:
        """Return the p-database: image of V under ``g(ν) = ν(T)``."""
        weights: Dict[Instance, Fraction] = {}
        for valuation, weight in self.valuation_space():  # enumeration-ok: Mod() *is* the enumerated image, the Definition-13 oracle
            instance = self._table.apply_valuation(valuation)
            weights[instance] = weights.get(instance, Fraction(0)) + weight
        return PDatabase(weights, arity=self.arity)

    def incompleteness_skeleton(self) -> IDatabase:
        """Forget the probabilities: the underlying c-table's Mod."""
        return self._table.mod()  # enumeration-ok: the skeleton is the underlying c-table's world set by definition

    # ------------------------------------------------------------------
    # Tuple-level queries
    # ------------------------------------------------------------------
    def membership_condition(self, row: Row) -> Formula:
        """The condition under which *row* belongs to ``ν(T)``.

        Disjunction over the table's rows of "this row's condition holds
        and its terms evaluate to *row*"; the probability of this formula
        is ``P[row ∈ I]``.
        """
        row = tuple(row)
        if len(row) != self.arity:
            raise TableError(
                f"tuple {row!r} has arity {len(row)}, table has {self.arity}"
            )
        branches = []
        for crow in self._table.rows:
            matches = conj(
                *(
                    eq(term, Const(value))
                    for term, value in zip(crow.values, row)
                )
            )
            branches.append(conj(crow.condition, matches))
        return conj(self._table.global_condition, disj(*branches))

    def tuple_probability(
        self, row: Row, strategy: Optional[str] = None
    ) -> Fraction:
        """Return ``P[row ∈ I]`` by counting the membership condition.

        *strategy* picks the counting route (see
        :data:`repro.logic.counting.PROB_STRATEGIES`): the default
        ``auto`` uses Shannon expansion within the variable budget and
        the compiled d-DNNF + WMC route beyond it, so wide tables stay
        polynomial in circuit size instead of ``2^variables``.
        """
        return formula_probability(
            self.membership_condition(row),
            self._distributions,
            strategy=strategy,
        )


class BooleanPCTable(PCTable):
    """A probabilistic boolean c-table (Theorem 8's complete fragment).

    Distributions are over ``{False, True}``; essentially the model of
    Fuhr–Rölleke [15], as the paper notes.
    """

    __slots__ = ()

    @staticmethod
    def _build_table(rows, arity: Optional[int]) -> CTable:
        return BooleanCTable(rows, arity=arity)

    def __init__(
        self,
        rows_or_table,
        distributions: Mapping[str, Mapping[bool, Fraction]],
        arity: Optional[int] = None,
    ) -> None:
        if isinstance(rows_or_table, CTable) and not isinstance(
            rows_or_table, BooleanCTable
        ):
            if not rows_or_table.is_boolean():
                raise TableError(
                    "BooleanPCTable requires a boolean c-table"
                )
        for name, dist in distributions.items():
            # isinstance check: 1 == True in Python, so set difference
            # against {False, True} would let integer keys slip through.
            bad = {value for value in dist if not isinstance(value, bool)}
            if bad:
                raise ProbabilityError(
                    f"boolean variable {name!r} has non-boolean outcomes {bad}"
                )
        super().__init__(rows_or_table, distributions, arity=arity)

    def weights(self) -> Dict[str, Fraction]:
        """Return ``P[x = true]`` per variable (for BDD evaluation)."""
        return {
            name: dist.get(True, Fraction(0))
            for name, dist in self._distributions.items()
        }
