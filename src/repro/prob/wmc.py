"""Weighted model counting over compiled d-DNNF circuits.

This is the scalable half of the paper's probability story: Theorem 9
reads the probability of an answer tuple off its (membership) condition,
and that read is a weighted model count over the independent variable
distributions of Definition 13.  :mod:`repro.logic.compile` turns the
condition into a d-DNNF circuit once; this module assigns every CNF
literal a weight drawn from ``dom(x)`` and evaluates the circuit in a
single pass of exact :class:`fractions.Fraction` arithmetic.

Weights
-------

- A **one-hot indicator** ``[x=v]`` weighs ``p(v)`` positively and ``1``
  negatively; the exactly-one clauses emitted by the compiler make the
  product over a group pick out exactly one outcome's probability.
- A **two-value variable** is encoded as the single proposition
  ``x = v₀``, weighted ``(p(v₀), p(v₁))`` — no exactly-one clauses, and
  the weights sum to 1 so smoothing gaps cost nothing.
- **Tseitin definitions** weigh ``(1, 1)``: the full biconditional
  encoding makes them functionally determined, so they never multiply
  the count.

Zero-probability outcomes are dropped from every support before
compilation — a condition true only on measure-zero outcomes is simply
false, and dropping them keeps the circuits (and one-hot groups) small.

The compiled artifact (:class:`CompiledCondition`) memoizes its count,
so the engine's circuit cache (:class:`repro.engine.cache.CircuitCache`)
turns a prepared probability loop into pure cache hits: compile once,
count once, then answer from memory.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Optional, Tuple

from repro.errors import ProbabilityError
from repro.logic.compile import (
    CompiledCircuit,
    Supports,
    compile_condition,
    indicator_fields,
)
from repro.logic.counting import Distributions, check_distributions
from repro.logic.syntax import Formula


def condition_supports(
    formula: Formula, distributions: Distributions
) -> Dict[str, Tuple[Hashable, ...]]:
    """Return the positive-probability supports of the condition's variables.

    Restricted to the variables *formula* mentions (unmentioned
    distributions integrate out to a factor of 1), with outcomes in a
    deterministic repr-sorted order, zero-weight outcomes removed.
    Raises :class:`ProbabilityError` when a condition variable has no
    distribution.
    """
    missing = formula.variables() - set(distributions)
    if missing:
        raise ProbabilityError(
            f"no distributions for variables: {sorted(missing)}"
        )
    supports: Dict[str, Tuple[Hashable, ...]] = {}
    for name in sorted(formula.variables()):
        distribution = distributions[name]
        supports[name] = tuple(
            sorted(
                (
                    value
                    for value, weight in distribution.items()
                    if Fraction(weight) != 0
                ),
                key=repr,
            )
        )
    return supports


class CompiledCondition:
    """A condition compiled to d-DNNF with its literal weights attached.

    The probability is computed lazily and memoized: the engine's
    circuit cache stores these objects, so a cache hit answers a
    prepared probability query without re-compiling *or* re-counting.
    (The memoization race under concurrent readers is benign — every
    thread computes the same exact ``Fraction``.)
    """

    __slots__ = ("formula", "compiled", "_pos", "_neg", "_probability")

    def __init__(
        self,
        formula: Formula,
        compiled: CompiledCircuit,
        pos: Dict[int, Fraction],
        neg: Dict[int, Fraction],
    ) -> None:
        self.formula = formula
        self.compiled = compiled
        self._pos = pos
        self._neg = neg
        self._probability: Optional[Fraction] = None

    def circuit_size(self) -> int:
        """Return the node count of the compiled circuit."""
        return self.compiled.circuit.size()

    def probability(self) -> Fraction:
        """Return the exact probability of the condition (memoized)."""
        result = self._probability
        if result is None:
            result = self.compiled.circuit.weighted_count(self._pos, self._neg)
            self._probability = result
        return result


def compile_probability(
    formula: Formula, distributions: Distributions
) -> CompiledCondition:
    """Compile *formula* under *distributions* into a weighted circuit."""
    check_distributions(distributions)
    supports: Supports = condition_supports(formula, distributions)
    compiled = compile_condition(formula, supports)
    pos: Dict[int, Fraction] = {}
    neg: Dict[int, Fraction] = {}
    for variable in range(1, compiled.circuit.num_vars + 1):
        atom = compiled.var_atom.get(variable)
        fields = indicator_fields(atom) if atom is not None else None
        if fields is None:
            pos[variable] = Fraction(1)
            neg[variable] = Fraction(1)
            continue
        name, value = fields
        support = compiled.supports[name]
        pos[variable] = Fraction(distributions[name][value])
        if len(support) == 2:
            other = support[1] if value == support[0] else support[0]
            neg[variable] = Fraction(distributions[name][other])
        else:
            neg[variable] = Fraction(1)
    return CompiledCondition(formula, compiled, pos, neg)


def wmc_probability(formula: Formula, distributions: Distributions) -> Fraction:
    """Exact condition probability by d-DNNF compilation + weighted counting.

    The scalable strategy behind ``probability(..., strategy="wmc")`` in
    :mod:`repro.logic.counting`: cost scales with condition size and
    circuit size, never with ``2^variables``.
    """
    return compile_probability(formula, distributions).probability()
