"""Finite probability spaces, product spaces, image spaces.

The paper's probabilistic constructions are all built from three pieces
of elementary probability theory:

- a *finite probability space* ``(Ω, p)`` with ``Σ p(ω) = 1``
  (Section 6's formulation),
- the *product* of spaces (Definition 12) — the formal meaning of
  "independently",
- the *image* of a space under a function (Definition 10) — the
  semantics of query answering (Definition 11).

Probabilities are exact :class:`fractions.Fraction` values throughout,
so the theorem checks in the tests are equalities, not tolerances.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.errors import ProbabilityError


class FiniteProbSpace:
    """An immutable finite probability space over hashable outcomes."""

    __slots__ = ("_weights",)

    def __init__(self, weights: Mapping[Hashable, Fraction]) -> None:
        normalized: Dict[Hashable, Fraction] = {}
        total = Fraction(0)
        for outcome, weight in weights.items():
            weight = Fraction(weight)
            if weight < 0:
                raise ProbabilityError(
                    f"negative probability {weight} for outcome {outcome!r}"
                )
            total += weight
            if weight > 0:
                normalized[outcome] = normalized.get(outcome, Fraction(0)) + weight
        if total != 1:
            raise ProbabilityError(f"probabilities sum to {total}, expected 1")
        self._weights = normalized

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def outcomes(self) -> Tuple[Hashable, ...]:
        """Return the support (positive-probability outcomes), sorted."""
        return tuple(sorted(self._weights, key=repr))

    def probability_of(self, outcome: Hashable) -> Fraction:
        """Return ``p(outcome)`` (zero for outcomes off the support)."""
        return self._weights.get(outcome, Fraction(0))

    def event_probability(
        self, event: Callable[[Hashable], bool]
    ) -> Fraction:
        """Return ``P[{ω | event(ω)}]``."""
        return sum(
            (weight for outcome, weight in self._weights.items() if event(outcome)),
            Fraction(0),
        )

    def items(self) -> Iterator[Tuple[Hashable, Fraction]]:
        """Yield (outcome, probability) pairs in deterministic order."""
        for outcome in self.outcomes:
            yield outcome, self._weights[outcome]

    def __len__(self) -> int:
        return len(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteProbSpace):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        return hash(frozenset(self._weights.items()))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{outcome!r}: {weight}" for outcome, weight in self.items()
        )
        return f"FiniteProbSpace({{{parts}}})"

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    def map(self, transform: Callable[[Hashable], Hashable]) -> "FiniteProbSpace":
        """Return the image space under *transform* (Definition 10)."""
        weights: Dict[Hashable, Fraction] = {}
        for outcome, weight in self._weights.items():
            image = transform(outcome)
            weights[image] = weights.get(image, Fraction(0)) + weight
        return FiniteProbSpace(weights)

    def product(self, other: "FiniteProbSpace") -> "FiniteProbSpace":
        """Return the product space (Definition 12), outcomes as pairs."""
        weights = {
            (a, b): wa * wb
            for a, wa in self._weights.items()
            for b, wb in other._weights.items()
        }
        return FiniteProbSpace(weights)

    def independent(
        self,
        first: Callable[[Hashable], bool],
        second: Callable[[Hashable], bool],
    ) -> bool:
        """Check whether two events are independent in this space."""
        p_first = self.event_probability(first)
        p_second = self.event_probability(second)
        p_both = self.event_probability(lambda o: first(o) and second(o))
        return p_both == p_first * p_second

    def jointly_independent(
        self, events: Iterable[Callable[[Hashable], bool]]
    ) -> bool:
        """Check joint independence: every sub-family factorizes.

        This is Proposition 3(2)'s notion — pairwise independence is not
        enough, so every subset of the events is checked.
        """
        events = list(events)
        for size in range(2, len(events) + 1):
            for subset in itertools.combinations(events, size):
                product = Fraction(1)
                for event in subset:
                    product *= self.event_probability(event)
                joint = self.event_probability(
                    lambda o, chosen=subset: all(event(o) for event in chosen)
                )
                if joint != product:
                    return False
        return True


def image_space(
    space: FiniteProbSpace, transform: Callable[[Hashable], Hashable]
) -> FiniteProbSpace:
    """Module-level alias for :meth:`FiniteProbSpace.map`."""
    return space.map(transform)


def product_space(*spaces: FiniteProbSpace) -> FiniteProbSpace:
    """Product of several spaces; outcomes are tuples of outcomes."""
    if not spaces:
        return FiniteProbSpace({(): Fraction(1)})
    weights: Dict[Tuple, Fraction] = {(): Fraction(1)}
    for space in spaces:
        weights = {
            prefix + (outcome,): weight * extra
            for prefix, weight in weights.items()
            for outcome, extra in space.items()
        }
    return FiniteProbSpace(weights)


def point_mass(outcome: Hashable) -> FiniteProbSpace:
    """The space putting probability 1 on a single outcome."""
    return FiniteProbSpace({outcome: Fraction(1)})


def space_from_distribution(
    distribution: Mapping[Hashable, Fraction]
) -> FiniteProbSpace:
    """Build a space from a value distribution (validated)."""
    return FiniteProbSpace(distribution)
