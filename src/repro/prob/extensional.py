"""Extensional (safe-plan) query evaluation over independent tuples.

Section 8 closes with the observation that Dalvi–Suciu's [9] result
characterizes the conjunctive queries ``q`` for which, over any
p-?-table ``T``, the answer ``q̄(T)`` collapses back to a p-?-table —
equivalently, for which tuple probabilities can be computed
*extensionally*, by rules local to each operator, without lineage.

This module implements that world:

- :class:`ProbRelation` — a relation whose tuples carry independent
  probabilities (a multi-relation p-?-table environment),
- :class:`ConjunctiveQuery` — boolean conjunctive queries without
  self-joins, as lists of atoms,
- :func:`is_hierarchical` — the safety test: for every pair of
  variables, their atom sets must be nested or disjoint,
- :func:`safe_plan_probability` — the classic safe-plan evaluation:
  independent atoms multiply, a root variable turns into an independent
  project ``1 − ∏(1 − pᵢ)``; raises on unsafe queries,
- :func:`lineage_probability_cq` — the exact (intensional) answer via
  lineage over the tuple events, used to validate the safe plans and to
  expose where the extensional rules go wrong on unsafe queries
  (benchmark E18 shows both).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ProbabilityError, QueryError, UnsupportedOperationError
from repro.core.instance import Row
from repro.logic.atoms import BoolVar, boolvar
from repro.logic.counting import bernoulli, probability
from repro.logic.syntax import BOTTOM, Formula, conj, disj


class ProbRelation:
    """A named relation with independent per-tuple probabilities."""

    __slots__ = ("_name", "_rows", "_arity")

    def __init__(
        self,
        name: str,
        rows: Mapping[Row, Fraction],
        arity: int = None,
    ) -> None:
        normalized: Dict[Row, Fraction] = {}
        for row, weight in rows.items():
            weight = Fraction(weight)
            if not 0 <= weight <= 1:
                raise ProbabilityError(
                    f"tuple probability {weight} outside [0, 1]"
                )
            if weight > 0:
                normalized[tuple(row)] = weight
        if normalized:
            arities = {len(row) for row in normalized}
            if len(arities) != 1:
                raise QueryError(f"mixed arities in {name!r}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise QueryError(
                    f"declared arity {arity} does not match {name!r}"
                )
            arity = inferred
        elif arity is None:
            raise QueryError(f"empty relation {name!r} needs an arity")
        self._name = name
        self._rows = normalized
        self._arity = arity

    @property
    def name(self) -> str:
        return self._name

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Dict[Row, Fraction]:
        """Return the tuple → probability map (a copy)."""
        return dict(self._rows)

    def probability_of(self, row: Row) -> Fraction:
        """Return the tuple's membership probability (0 if unlisted)."""
        return self._rows.get(tuple(row), Fraction(0))

    def values(self) -> List[Hashable]:
        """Return the active domain (sorted)."""
        return sorted(
            {value for row in self._rows for value in row}, key=repr
        )

    def __repr__(self) -> str:
        return f"ProbRelation({self._name!r}, {self._rows!r})"


@dataclass(frozen=True)
class Atom:
    """One subgoal: a relation name and a tuple of variables/constants.

    Bare strings denote variables (the :func:`atom` convention);
    non-string values are constants.  To use a *string-valued constant*
    in a query, wrap it: ``atom("R", CQConst("ann"))`` — substitution
    produces such wrapped constants internally.
    """

    relation: str
    terms: Tuple

    def variables(self) -> FrozenSet[str]:
        return frozenset(
            term for term in self.terms if isinstance(term, str)
        )

    def ground_row(self) -> Tuple:
        """Return the concrete tuple of a variable-free atom."""
        return tuple(
            term.value if isinstance(term, CQConst) else term
            for term in self.terms
        )

    def __repr__(self) -> str:
        inner = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class CQConst:
    """A constant value shielded from the strings-are-variables rule."""

    value: Hashable

    def __repr__(self) -> str:
        return repr(self.value)


def atom(relation: str, *terms) -> Atom:
    """Build a subgoal; string terms are variables, others constants."""
    return Atom(relation, tuple(terms))


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A boolean conjunctive query: a conjunction of subgoals.

    Self-joins (two atoms over the same relation name) are outside the
    scope of the hierarchical safety theorem and rejected by
    :func:`safe_plan_probability`.
    """

    atoms: Tuple[Atom, ...]

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for subgoal in self.atoms:
            names |= subgoal.variables()
        return frozenset(names)

    def has_self_join(self) -> bool:
        relations = [subgoal.relation for subgoal in self.atoms]
        return len(relations) != len(set(relations))

    def __repr__(self) -> str:
        return " ∧ ".join(repr(subgoal) for subgoal in self.atoms)


def cq(*atoms_: Atom) -> ConjunctiveQuery:
    """Convenience constructor for a conjunctive query."""
    return ConjunctiveQuery(tuple(atoms_))


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """The Dalvi–Suciu safety test for self-join-free boolean CQs.

    For variables ``x``, let ``at(x)`` be the set of atoms containing
    ``x``; the query is hierarchical iff for every two variables the
    sets ``at(x)``, ``at(y)`` are disjoint or one contains the other.
    Hierarchical ⇔ the query admits a safe (extensional) plan.
    """
    at: Dict[str, set] = {}
    for index, subgoal in enumerate(query.atoms):
        for name in subgoal.variables():
            at.setdefault(name, set()).add(index)
    names = sorted(at)
    for first, second in itertools.combinations(names, 2):
        a, b = at[first], at[second]
        if a & b and not (a <= b or b <= a):
            return False
    return True


def _active_domain(
    query: ConjunctiveQuery, relations: Mapping[str, ProbRelation]
) -> List[Hashable]:
    values: set = set()
    for subgoal in query.atoms:
        relation = relations.get(subgoal.relation)
        if relation is None:
            raise QueryError(f"no relation named {subgoal.relation!r}")
        values.update(relation.values())
    return sorted(values, key=repr)


def _substitute(query: ConjunctiveQuery, name: str, value) -> ConjunctiveQuery:
    # Wrap the substituted value: domain values may be strings, which
    # would otherwise read back as variables.
    replacement = CQConst(value)
    atoms_ = tuple(
        Atom(
            subgoal.relation,
            tuple(
                replacement if term == name else term
                for term in subgoal.terms
            ),
        )
        for subgoal in query.atoms
    )
    return ConjunctiveQuery(atoms_)


def _connected_components(
    query: ConjunctiveQuery,
) -> List[ConjunctiveQuery]:
    """Split atoms into components connected by shared variables."""
    remaining = list(query.atoms)
    components: List[ConjunctiveQuery] = []
    while remaining:
        seed = remaining.pop()
        component = [seed]
        variables = set(seed.variables())
        changed = True
        while changed:
            changed = False
            for subgoal in list(remaining):
                if subgoal.variables() & variables:
                    remaining.remove(subgoal)
                    component.append(subgoal)
                    variables |= subgoal.variables()
                    changed = True
        components.append(ConjunctiveQuery(tuple(component)))
    return components


def safe_plan_probability(
    query: ConjunctiveQuery, relations: Mapping[str, ProbRelation]
) -> Fraction:
    """Evaluate a boolean CQ extensionally; raise if no safe plan exists.

    The recursion of [9]:

    1. ground atoms are independent events: multiply (dedup within a
       relation is unnecessary — self-joins are rejected up front);
    2. independent connected components multiply;
    3. a *root variable* (one occurring in every atom of a connected
       component) becomes an independent project:
       ``1 − ∏_{a ∈ adom} (1 − P(q[x → a]))``;
    4. anything else is unsafe —
       :class:`~repro.errors.UnsupportedOperationError`.
    """
    if query.has_self_join():
        raise UnsupportedOperationError(
            "safe plans cover self-join-free queries only"
        )

    def recurse(sub: ConjunctiveQuery) -> Fraction:
        if not sub.variables():
            result = Fraction(1)
            for subgoal in sub.atoms:
                relation = relations.get(subgoal.relation)
                if relation is None:
                    raise QueryError(
                        f"no relation named {subgoal.relation!r}"
                    )
                result *= relation.probability_of(subgoal.ground_row())
            return result
        components = _connected_components(sub)
        if len(components) > 1:
            result = Fraction(1)
            for component in components:
                result *= recurse(component)
            return result
        # One connected component with variables: find a root variable.
        variables = sorted(sub.variables())
        root = None
        for name in variables:
            if all(name in subgoal.variables() for subgoal in sub.atoms):
                root = name
                break
        if root is None:
            raise UnsupportedOperationError(
                f"query {sub!r} is not hierarchical: no safe plan exists"
            )
        result = Fraction(1)
        for value in _active_domain(sub, relations):
            result *= 1 - recurse(_substitute(sub, root, value))
        return 1 - result

    return recurse(query)


# ----------------------------------------------------------------------
# Exact (intensional) evaluation for validation
# ----------------------------------------------------------------------

def _tuple_event(relation: str, row: Row) -> BoolVar:
    return boolvar(f"{relation}:{row!r}")


def cq_lineage(
    query: ConjunctiveQuery, relations: Mapping[str, ProbRelation]
) -> Formula:
    """The boolean lineage of a boolean CQ over tuple events."""
    variables = sorted(query.variables())
    domain = _active_domain(query, relations)
    disjuncts: List[Formula] = []
    for combo in itertools.product(domain, repeat=len(variables)):  # enumeration-ok: grounding over the active domain (query variables, not pc-table variables) — the lineage itself is counted symbolically
        valuation = dict(zip(variables, combo))
        conjuncts: List[Formula] = []
        feasible = True
        for subgoal in query.atoms:
            row = tuple(
                valuation.get(term, term)
                if isinstance(term, str)
                else (term.value if isinstance(term, CQConst) else term)
                for term in subgoal.terms
            )
            relation = relations[subgoal.relation]
            if relation.probability_of(row) == 0:
                feasible = False
                break
            conjuncts.append(_tuple_event(subgoal.relation, row))
        if feasible:
            disjuncts.append(conj(*conjuncts))
    return disj(*disjuncts) if disjuncts else BOTTOM


def lineage_probability_cq(
    query: ConjunctiveQuery,
    relations: Mapping[str, ProbRelation],
    strategy: Optional[str] = None,
) -> Fraction:
    """Exact probability of a boolean CQ via its lineage.

    Works for *every* CQ, safe or not — the ground truth the safe plans
    are compared against.  *strategy* selects the counting route (see
    :data:`repro.logic.counting.PROB_STRATEGIES`); the default ``auto``
    switches from Shannon expansion to the compiled d-DNNF route once
    the lineage has more tuple events than the variable budget, so
    unsafe queries over large tables stay evaluable.
    """
    lineage = cq_lineage(query, relations)
    distributions = {}
    for relation in relations.values():
        for row, weight in relation.rows.items():
            distributions[_tuple_event(relation.name, row).name] = bernoulli(
                weight
            )
    needed = lineage.variables()
    return probability(
        lineage,
        {name: dist for name, dist in distributions.items() if name in needed},
        strategy=strategy,
    )
