"""Conditionally dependent pc-table variables (§9 future work).

The paper: "trying to make pc-tables even more flexible, we plan to
investigate models in which the assumption that the variables take
values independently is relaxed by using conditional probability
distributions [14]".  This module implements that model:

- :class:`VariableNetwork` — a Bayesian-network-style factorization of
  the joint distribution over the table's variables: a DAG where each
  variable carries a CPT (one distribution per assignment of its
  parents),
- :class:`DependentPCTable` — a c-table whose variables are jointly
  distributed by a :class:`VariableNetwork`; ``mod()`` images the joint
  space through ``ν(T)`` exactly as Definition 13 does for the product
  space, and tuple probabilities marginalize the joint.

A network with no edges is an ordinary pc-table, and
:meth:`VariableNetwork.independent` round-trips a plain distribution
map, so :class:`~repro.prob.pctable.PCTable` is literally the special
case — verified by the tests.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import ProbabilityError
from repro.core.instance import Instance, Row
from repro.logic.counting import check_distribution
from repro.prob.pdatabase import PDatabase

# A CPT maps each parent-assignment (tuple of values, ordered by the
# declared parent list) to a distribution over the variable's outcomes.
Cpt = Mapping[Tuple[Hashable, ...], Mapping[Hashable, Fraction]]


class VariableNetwork:
    """A DAG of variables with conditional probability tables."""

    def __init__(self) -> None:
        self._parents: Dict[str, Tuple[str, ...]] = {}
        self._cpts: Dict[str, Dict[Tuple, Dict[Hashable, Fraction]]] = {}
        self._order: List[str] = []

    def add(
        self,
        name: str,
        parents: Sequence[str],
        cpt: Cpt,
    ) -> "VariableNetwork":
        """Declare *name* with the given *parents* and CPT.

        Parents must have been declared earlier (this enforces
        acyclicity by construction).  Every parent-assignment over the
        parents' outcome spaces must have a row in the CPT.
        """
        if name in self._parents:
            raise ProbabilityError(f"variable {name!r} declared twice")
        for parent in parents:
            if parent not in self._parents:
                raise ProbabilityError(
                    f"parent {parent!r} of {name!r} not yet declared "
                    "(declare in topological order)"
                )
        normalized: Dict[Tuple, Dict[Hashable, Fraction]] = {}
        for assignment, distribution in cpt.items():
            key = tuple(assignment)
            if len(key) != len(parents):
                raise ProbabilityError(
                    f"CPT row {key!r} for {name!r} does not match "
                    f"{len(parents)} parents"
                )
            row = {value: Fraction(weight)
                   for value, weight in distribution.items()}
            check_distribution(f"{name}|{key!r}", row)
            normalized[key] = row
        for assignment in self._parent_assignments(parents):
            if assignment not in normalized:
                raise ProbabilityError(
                    f"CPT for {name!r} missing parent assignment "
                    f"{assignment!r}"
                )
        self._parents[name] = tuple(parents)
        self._cpts[name] = normalized
        self._order.append(name)
        return self

    def add_independent(
        self, name: str, distribution: Mapping[Hashable, Fraction]
    ) -> "VariableNetwork":
        """Declare a parentless variable (an ordinary pc-table variable)."""
        return self.add(name, (), {(): distribution})

    @classmethod
    def independent(
        cls, distributions: Mapping[str, Mapping[Hashable, Fraction]]
    ) -> "VariableNetwork":
        """The edgeless network: exactly Definition 13's product space."""
        network = cls()
        for name in sorted(distributions):
            network.add_independent(name, distributions[name])
        return network

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> List[str]:
        """Return the variables in declaration (topological) order."""
        return list(self._order)

    def parents_of(self, name: str) -> Tuple[str, ...]:
        """Return the declared parents of *name*."""
        return self._parents[name]

    def outcomes_of(self, name: str) -> List[Hashable]:
        """Return the union of outcome values across the variable's CPT."""
        values: List[Hashable] = []
        seen = set()
        for distribution in self._cpts[name].values():
            for value in distribution:
                if value not in seen:
                    seen.add(value)
                    values.append(value)
        return values

    def has_edges(self) -> bool:
        """True when some variable has parents (genuine dependence)."""
        return any(self._parents[name] for name in self._order)

    # ------------------------------------------------------------------
    # The joint distribution
    # ------------------------------------------------------------------
    def _parent_assignments(
        self, parents: Sequence[str]
    ) -> Iterator[Tuple]:
        import itertools

        pools = [self.outcomes_of(parent) for parent in parents]
        yield from itertools.product(*pools)  # enumeration-ok: parent-outcome combinations of one CPT row group, not a world space

    def joint(self) -> Iterator[Tuple[Dict[str, Hashable], Fraction]]:
        """Yield (valuation, probability) over the joint distribution.

        Zero-probability valuations are skipped; probabilities sum to 1.
        """

        def recurse(position: int, valuation: Dict[str, Hashable],
                    weight: Fraction):
            if position == len(self._order):
                yield dict(valuation), weight
                return
            name = self._order[position]
            parents = self._parents[name]
            key = tuple(valuation[parent] for parent in parents)
            for value, probability in self._cpts[name][key].items():
                if probability == 0:
                    continue
                valuation[name] = value
                yield from recurse(position + 1, valuation,
                                   weight * probability)
            if name in valuation:
                del valuation[name]

        yield from recurse(0, {}, Fraction(1))

    def probability_of_event(self, event) -> Fraction:
        """Return P[event(valuation)] under the joint distribution."""
        return sum(
            (weight for valuation, weight in self.joint()
             if event(valuation)),
            Fraction(0),
        )


class DependentPCTable:
    """A c-table whose variables follow a :class:`VariableNetwork`.

    The semantics is Definition 13 with the product space replaced by
    the network's joint distribution; everything downstream (image
    space, membership conditions) is unchanged — which is the point of
    the paper's suggestion: only the variable distribution generalizes.
    """

    __slots__ = ("_table", "_network")

    def __init__(self, table_or_rows, network: VariableNetwork,
                 arity: int = None) -> None:
        from repro.tables.ctable import CTable

        if isinstance(table_or_rows, CTable):
            table = table_or_rows
        else:
            table = CTable(table_or_rows, arity=arity)
        missing = table.variables() - set(network.variables)
        if missing:
            raise ProbabilityError(
                f"network does not cover variables {sorted(missing)}"
            )
        supports = {
            name: tuple(network.outcomes_of(name))
            for name in table.variables()
        }
        self._table = table.with_domains(supports) if supports else table
        self._network = network

    @property
    def table(self):
        """Return the underlying (finite-domain) c-table."""
        return self._table

    @property
    def network(self) -> VariableNetwork:
        """Return the variable network."""
        return self._network

    @property
    def arity(self) -> int:
        return self._table.arity

    def mod(self) -> PDatabase:
        """Image of the joint distribution under ``g(ν) = ν(T)``."""
        weights: Dict[Instance, Fraction] = {}
        from repro.logic.evaluation import evaluate

        total = Fraction(0)
        admissible = []
        for valuation, weight in self._network.joint():
            if evaluate(self._table.global_condition, valuation):
                admissible.append((valuation, weight))
                total += weight
        if total == 0:
            raise ProbabilityError(
                "the global condition excludes every valuation"
            )
        for valuation, weight in admissible:
            instance = self._table.apply_valuation(valuation)
            weights[instance] = weights.get(instance, Fraction(0)) \
                + weight / total
        return PDatabase(weights, arity=self.arity)

    def tuple_probability(self, row: Row) -> Fraction:
        """P[row ∈ I], marginalizing the joint distribution."""
        from repro.prob.pctable import PCTable

        # Reuse PCTable's membership-condition construction; evaluate it
        # against the joint rather than the product space.
        row = tuple(row)
        condition = PCTable(
            self._table.without_domains(),
            {
                name: _uniform_placeholder(self._network.outcomes_of(name))
                for name in self._table.variables()
            },
        ).membership_condition(row)
        from repro.logic.evaluation import evaluate

        return self._network.probability_of_event(
            lambda valuation: evaluate(condition, valuation)
        )

    def answer(self, query) -> "DependentPCTable":
        """Closure carries over verbatim: q̄ on the table, network kept."""
        from repro.ctalgebra.translate import apply_query_to_ctable

        answered = apply_query_to_ctable(query, self._table)
        return DependentPCTable(answered.without_domains(), self._network)


def _uniform_placeholder(values) -> Dict[Hashable, Fraction]:
    share = Fraction(1, len(values))
    return {value: share for value in values}
