"""Theorem 8: boolean pc-tables are complete.

Any probabilistic database — any finite distribution over instances —
is ``Mod`` of a boolean pc-table.  The construction chains the
instances: with non-zero-probability instances ``I₁ … I_k`` of
probabilities ``p₁ … p_k``, instance ``Iᵢ`` (``i < k``) is guarded by
``¬x₁ ∧ … ∧ ¬x_{i−1} ∧ xᵢ`` and ``I_k`` by ``¬x₁ ∧ … ∧ ¬x_{k−1}``, with

    P[xᵢ = true] = pᵢ / (1 − Σ_{j<i} pⱼ),

so the guards fire with exactly the right probabilities.  (The paper
notes this was independently observed in [30].)
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.errors import ProbabilityError
from repro.logic.atoms import boolvar
from repro.logic.counting import bernoulli
from repro.logic.syntax import conj, neg
from repro.tables.ctable import CRow, make_row
from repro.prob.pctable import BooleanPCTable
from repro.prob.pdatabase import PDatabase


def boolean_pctable_for(
    pdb: PDatabase, prefix: str = "x"
) -> BooleanPCTable:
    """Theorem 8's construction: *pdb* as a boolean pc-table."""
    items = list(pdb.items())  # deterministic (sorted) order, positive mass
    if not items:
        raise ProbabilityError("a probabilistic database cannot be empty")
    k = len(items)
    rows: List[CRow] = []
    distributions = {}
    cumulative = Fraction(0)
    for index, (instance, weight) in enumerate(items):
        earlier_off = [neg(boolvar(f"{prefix}{j}")) for j in range(index)]
        if index < k - 1:
            guard = conj(*earlier_off, boolvar(f"{prefix}{index}"))
            remaining = 1 - cumulative
            if remaining <= 0:
                raise ProbabilityError(
                    "probabilities exhausted before the last instance"
                )
            distributions[f"{prefix}{index}"] = bernoulli(weight / remaining)
            cumulative += weight
        else:
            guard = conj(*earlier_off)
        for row in instance:
            rows.append(make_row(row, guard))
    if k == 1 and not rows:
        # A point mass on the empty instance: no rows, no variables.
        return BooleanPCTable([], {}, arity=pdb.arity)
    return BooleanPCTable(rows, distributions, arity=pdb.arity)


def verify_prob_completeness(pdb: PDatabase) -> bool:
    """Check the construction round-trips: ``Mod(construction) = pdb``."""
    return boolean_pctable_for(pdb).mod() == pdb  # enumeration-ok: Theorem 8 round-trip check is a whole-p-database comparison
