"""Theorem 9: pc-tables are closed under the relational algebra.

Query answering on a pc-table is *the same* c-table algebra of
Theorem 4 applied to the underlying table — the distributions ride
along untouched.  The image space ``q(Mod(T))`` (Definition 11) then
coincides with ``Mod(q̄(T))``: the outcomes agree by Theorem 4, and the
probabilities agree by Lemma 1 (each valuation carries its weight to
the same place on both sides).

:func:`verify_prob_closure` checks the distribution equality exactly,
instance by instance, with Fraction arithmetic.
"""

from __future__ import annotations

from repro.algebra.ast import Query
from repro.algebra.evaluate import apply_query
from repro.prob.pctable import PCTable
from repro.prob.pdatabase import PDatabase


def answer_pctable(
    query: Query,
    pctable: PCTable,
    simplify_conditions: bool = False,
    optimize: bool = False,
) -> PCTable:
    """Return the pc-table representing ``q(Mod(T))``.

    This is the paper's solution to the query-answering problem of
    [15, 22, 34]: translate ``q`` to ``q̄``, apply it to the underlying
    c-table, and keep the variable distributions.  ``optimize=True``
    runs the plan rewrites of :mod:`repro.ctalgebra.optimize` first —
    sound here too, because Theorem 9 rides entirely on Theorem 4.
    (Shim over the default engine; register the pc-table in a
    :class:`~repro.engine.Session` to cache plans and share the answer
    across probability/lineage/certainty readings.)
    """
    from repro.engine import default_engine

    answered = default_engine().answer_pctable(
        query,
        pctable,
        simplify_conditions=simplify_conditions,
        optimize=optimize,
    )
    return answered


def image_pdatabase(query: Query, pdb: PDatabase) -> PDatabase:
    """The image space of *pdb* under *query* (Definition 11's RHS)."""
    return pdb.map_instances(lambda instance: apply_query(query, instance))


def verify_prob_closure(
    query: Query, pctable: PCTable, optimize: bool = False
) -> bool:
    """Check Theorem 9 on one (query, pc-table) pair, exactly."""
    via_algebra = answer_pctable(query, pctable, optimize=optimize).mod()  # enumeration-ok: Theorem 9 verification oracle compares full p-databases
    via_image = image_pdatabase(query, pctable.mod())  # enumeration-ok: Theorem 9 verification oracle compares full p-databases
    return via_algebra == via_image
