"""p-?-tables and p-or-set-tables (Section 7).

Probabilistic counterparts of ?-tables and or-set tables:

- a **p-?-table** assigns every tuple an independent probability of
  membership (tuples not listed have probability 0).  Its semantics is
  given two equivalent ways, both implemented and cross-checked:
  the direct formula ``P[I] = ∏_{t∈I} p_t · ∏_{t∉I} (1 − p_t)`` and the
  paper's product-space construction
  ``P := ∏_t B_t`` imaged through "the set of true tuples"
  (Proposition 2 / Proposition 3);
- a **p-or-set-table** (the paper's simplification of ProbView [22])
  replaces each or-set by a finite probability distribution over its
  alternatives; rows are mandatory, and cells choose independently.

Both convert to probabilistic c-tables (:meth:`PQTable.to_pctable`,
:meth:`POrSetTable.to_pctable`) — the paper's observation that they are
restricted boolean pc-tables / probabilistic Codd tables, which is how
query answering is solved for them (Section 8).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ProbabilityError, TableError
from repro.core.instance import Instance, Row
from repro.logic.atoms import Const, Var, boolvar
from repro.logic.counting import bernoulli
from repro.logic.syntax import TOP
from repro.prob.pdatabase import PDatabase
from repro.prob.space import FiniteProbSpace, product_space


class PQTable:
    """A p-?-table: independent tuple probabilities."""

    __slots__ = ("_rows", "_arity")

    def __init__(
        self,
        rows: Mapping[Row, Fraction],
        arity: Optional[int] = None,
    ) -> None:
        normalized: Dict[Row, Fraction] = {}
        for row, weight in rows.items():
            weight = Fraction(weight)
            if not 0 <= weight <= 1:
                raise ProbabilityError(
                    f"tuple probability {weight} outside [0, 1] for {row!r}"
                )
            if weight > 0:
                normalized[tuple(row)] = weight
        if normalized:
            arities = {len(row) for row in normalized}
            if len(arities) != 1:
                raise TableError(f"mixed tuple arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match tuples of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty p-?-table needs an explicit arity")
        self._rows = normalized
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Dict[Row, Fraction]:
        """Return the tuple → probability map (a copy)."""
        return dict(self._rows)

    def tuple_probability(self, row: Row) -> Fraction:
        """Return ``p_t`` (0 for unlisted tuples)."""
        return self._rows.get(tuple(row), Fraction(0))

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PQTable):
            return NotImplemented
        return self._arity == other._arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._arity, frozenset(self._rows.items())))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{row!r}: {weight}" for row, weight in sorted(
                self._rows.items(), key=lambda item: repr(item[0])
            )
        )
        return f"PQTable[{self._arity}]{{{parts}}}"

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def mod_direct(self) -> PDatabase:
        """Semantics via the closed-form world probability.

        ``P[I] = ∏_{t∈I} p_t · ∏_{t ∈ rows − I} (1 − p_t)`` over subsets
        ``I`` of the listed tuples (any other instance has probability 0).
        """
        rows = sorted(self._rows, key=repr)
        weights: Dict[Instance, Fraction] = {}
        for bits in itertools.product((False, True), repeat=len(rows)):  # enumeration-ok: the tuple-independent semantics (Definition), the oracle the lineage route is checked against
            weight = Fraction(1)
            chosen: List[Row] = []
            for row, include in zip(rows, bits):
                probability = self._rows[row]
                if include:
                    weight *= probability
                    chosen.append(row)
                else:
                    weight *= 1 - probability
            if weight > 0:
                instance = Instance(chosen, arity=self._arity)
                weights[instance] = weights.get(instance, Fraction(0)) + weight
        return PDatabase(weights, arity=self._arity)

    def mod_product_space(self) -> PDatabase:
        """Semantics via the paper's product-of-Bernoullis construction.

        Builds ``P = ∏_t B_t`` (outcomes are predicates on the listed
        tuples) and images it through "the set of tuples mapped to true"
        — the proof object of Proposition 2.
        """
        rows = sorted(self._rows, key=repr)
        spaces = [
            FiniteProbSpace(
                {True: self._rows[row], False: 1 - self._rows[row]}
            )
            for row in rows
        ]
        product = product_space(*spaces)

        def to_instance(outcome: Tuple[bool, ...]) -> Instance:
            return Instance(
                [row for row, include in zip(rows, outcome) if include],
                arity=self._arity,
            )

        space = product.map(to_instance)
        return PDatabase(
            {instance: weight for instance, weight in space.items()},
            arity=self._arity,
        )

    def mod(self) -> PDatabase:
        """The p-database this table represents (direct formula)."""
        return self.mod_direct()

    def to_pctable(self, prefix: str = "b"):
        """Rewrite as the equivalent restricted boolean pc-table."""
        from repro.tables.ctable import CRow
        from repro.prob.pctable import BooleanPCTable

        rows = []
        distributions = {}
        for index, row in enumerate(sorted(self._rows, key=repr)):
            name = f"{prefix}{index}"
            rows.append(
                CRow(tuple(Const(v) for v in row), boolvar(name))
            )
            distributions[name] = bernoulli(self._rows[row])
        return BooleanPCTable(rows, distributions, arity=self._arity)


CellDistribution = Mapping[Hashable, Fraction]


class POrSetTable:
    """A p-or-set-table: cells are constants or value distributions."""

    __slots__ = ("_rows", "_arity")

    def __init__(
        self,
        rows: Iterable[Tuple],
        arity: Optional[int] = None,
    ) -> None:
        normalized: List[Tuple] = []
        for row in rows:
            cells = []
            for cell in row:
                if isinstance(cell, dict):
                    distribution = {
                        value: Fraction(weight) for value, weight in cell.items()
                    }
                    total = sum(distribution.values(), Fraction(0))
                    if total != 1:
                        raise ProbabilityError(
                            f"cell distribution sums to {total}, expected 1"
                        )
                    if any(weight < 0 for weight in distribution.values()):
                        raise ProbabilityError("negative cell probability")
                    cells.append(
                        tuple(sorted(distribution.items(), key=lambda i: repr(i[0])))
                    )
                else:
                    cells.append(cell)
            normalized.append(tuple(cells))
        if normalized:
            arities = {len(row) for row in normalized}
            if len(arities) != 1:
                raise TableError(f"mixed row arities: {sorted(arities)}")
            inferred = arities.pop()
            if arity is not None and arity != inferred:
                raise TableError(
                    f"declared arity {arity} does not match rows of arity "
                    f"{inferred}"
                )
            arity = inferred
        elif arity is None:
            raise TableError("an empty p-or-set-table needs an explicit arity")
        self._rows = tuple(normalized)
        self._arity = arity

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> Tuple[Tuple, ...]:
        """Return the normalized rows (distributions as sorted tuples)."""
        return self._rows

    @staticmethod
    def _is_distribution(cell) -> bool:
        return (
            isinstance(cell, tuple)
            and cell
            and all(
                isinstance(entry, tuple) and len(entry) == 2
                for entry in cell
            )
            and all(isinstance(entry[1], Fraction) for entry in cell)
        )

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, POrSetTable):
            return NotImplemented
        return self._arity == other._arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._arity, self._rows))

    def __repr__(self) -> str:
        return f"POrSetTable[{self._arity}]{self._rows!r}"

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def mod(self) -> PDatabase:
        """Choose each distributed cell independently; image the product."""
        choices_per_cell: List[List[Tuple[Hashable, Fraction]]] = []
        positions: List[Tuple[int, int]] = []
        for row_index, row in enumerate(self._rows):
            for column, cell in enumerate(row):
                if self._is_distribution(cell):
                    choices_per_cell.append(list(cell))
                    positions.append((row_index, column))
        weights: Dict[Instance, Fraction] = {}
        for combo in itertools.product(*choices_per_cell):  # enumeration-ok: the attribute-level choice-space semantics, the oracle construction
            weight = Fraction(1)
            for _, cell_weight in combo:
                weight *= cell_weight
            if weight == 0:
                continue
            concrete: List[List[Hashable]] = [
                list(row) for row in self._rows
            ]
            for (row_index, column), (value, _) in zip(positions, combo):
                concrete[row_index][column] = value
            instance = Instance([tuple(row) for row in concrete],
                                arity=self._arity)
            weights[instance] = weights.get(instance, Fraction(0)) + weight
        return PDatabase(weights, arity=self._arity)

    def to_pctable(self, prefix: str = "x"):
        """Rewrite as the equivalent probabilistic Codd table (pc-table)."""
        from repro.tables.ctable import CRow
        from repro.prob.pctable import PCTable

        counter = 0
        rows = []
        distributions: Dict[str, Dict[Hashable, Fraction]] = {}
        for row in self._rows:
            values = []
            for cell in row:
                if self._is_distribution(cell):
                    name = f"{prefix}{counter}"
                    counter += 1
                    distributions[name] = dict(cell)
                    values.append(Var(name))
                else:
                    values.append(Const(cell))
            rows.append(CRow(tuple(values), TOP))
        return PCTable(rows, distributions, arity=self._arity)
