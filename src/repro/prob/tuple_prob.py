"""The tuple-probability problem: three solvers, one answer.

"What is the probability that tuple ``t`` occurs in the answer to
``q``?" — the question attacked independently by Fuhr–Rölleke [15],
Zimányi [34] and ProbView [22] (Section 7, "Query answering").  With
pc-tables the paper's answer is structural: compute ``q̄(T)``, read off
the *condition* under which ``t`` appears (its lineage, as Section 9
remarks), and compute that condition's probability.

Four evaluation routes, cross-checked by the tests and raced in
benchmarks E18 and E37:

- :func:`tuple_probability_naive` — materialize the whole p-database
  ``q(Mod(T))`` and sum over worlds containing ``t`` (exponential in the
  number of variables; the oracle the others are checked against);
- :func:`tuple_probability_lineage` — count the lineage formula through
  :func:`repro.logic.counting.probability`, whose *strategy* parameter
  picks Shannon expansion, enumeration, or the compiled route;
- :func:`tuple_probability_wmc` — force the d-DNNF + weighted
  model counting route (:mod:`repro.prob.wmc`): the only one that
  scales to the 50–100-variable lineages the engine produces;
- :func:`tuple_probability_bdd` — for boolean pc-tables, compile the
  lineage to an OBDD and evaluate in one bottom-up pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from repro.errors import ProbabilityError
from repro.core.instance import Row
from repro.logic.atoms import is_boolean_condition
from repro.logic.bdd import Bdd
from repro.logic.syntax import Formula
from repro.algebra.ast import Query
from repro.prob.closure import image_pdatabase
from repro.prob.pctable import BooleanPCTable, PCTable


def lineage_of(
    query: Query, pctable: PCTable, row: Row, optimize: bool = False
) -> Formula:
    """Return the lineage of *row* in ``q(T)``: its membership condition.

    The condition decorating ``t`` in ``q̄(T)`` is the tuple's lineage
    a.k.a. why-provenance (the paper's Section 9 observation); this
    function materializes it as a formula over the table's variables.
    ``optimize=True`` evaluates ``q̄`` through the plan optimizer; the
    lineage may then be a syntactically different but equivalent
    formula, so its probability is unchanged.  (Shim over the default
    engine; :meth:`repro.engine.Dataset.lineage` shares the evaluated
    answer with the other terminals.)
    """
    from repro.engine import default_engine

    return default_engine().answer_pctable(
        query, pctable, simplify_conditions=False, optimize=optimize
    ).membership_condition(row)


def tuple_probability_naive(
    query: Query, pctable: PCTable, row: Row
) -> Fraction:
    """P[t ∈ q(I)] by enumerating the answer p-database's worlds."""
    row = tuple(row)
    answer_distribution = image_pdatabase(
        query, pctable.mod()  # enumeration-ok: the semantics oracle
    )
    return answer_distribution.tuple_probability(row)


def tuple_probability_lineage(
    query: Query,
    pctable: PCTable,
    row: Row,
    optimize: bool = False,
    strategy: Optional[str] = None,
) -> Fraction:
    """P[t ∈ q(I)] by counting the lineage formula.

    *strategy* selects the counting route (see
    :data:`repro.logic.counting.PROB_STRATEGIES`); the default ``auto``
    keeps Shannon expansion within the variable budget and switches to
    the compiled d-DNNF route beyond it.
    """
    lineage = lineage_of(query, pctable, row, optimize=optimize)
    from repro.logic.counting import probability

    return probability(lineage, pctable.distributions, strategy=strategy)


def tuple_probability_wmc(
    query: Query, pctable: PCTable, row: Row, optimize: bool = False
) -> Fraction:
    """P[t ∈ q(I)] by d-DNNF compilation + weighted model counting.

    Compiles the lineage once (:mod:`repro.logic.compile`) and counts
    the circuit (:mod:`repro.prob.wmc`); exact on arbitrary pc-tables,
    polynomial in the circuit size rather than ``2^variables``.
    """
    lineage = lineage_of(query, pctable, row, optimize=optimize)
    from repro.prob.wmc import wmc_probability

    return wmc_probability(lineage, pctable.distributions)


def tuple_probability_bdd(
    query: Query,
    pctable: BooleanPCTable,
    row: Row,
    order: Optional[Sequence[str]] = None,
    optimize: bool = False,
) -> Fraction:
    """P[t ∈ q(I)] by OBDD compilation of the lineage (boolean tables).

    *order* fixes the BDD variable order (sorted names by default);
    benchmark E18 compares orders.
    """
    lineage = lineage_of(query, pctable, row, optimize=optimize)
    if not is_boolean_condition(lineage):
        raise ProbabilityError(
            "BDD evaluation requires a boolean lineage; general pc-tables "
            "use tuple_probability_lineage"
        )
    names = sorted(pctable.variables()) if order is None else list(order)
    manager = Bdd(names)
    node = manager.from_formula(lineage)
    return manager.probability(node, pctable.weights())
