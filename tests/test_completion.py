"""Unit tests for the completion constructions (Theorems 1, 3, 5, 6, 7)."""

import random

import pytest

from repro.errors import UnsupportedOperationError
from repro.core.domain import Domain
from repro.core.idatabase import IDatabase
from repro.core.instance import Instance
from repro.logic.atoms import Var, eq, ne
from repro.logic.syntax import TOP, conj, disj
from repro.algebra import (
    FRAGMENT_PJ,
    FRAGMENT_PU,
    FRAGMENT_SP,
    FRAGMENT_SPJU,
    FRAGMENT_SPLUS_P,
    FRAGMENT_SPLUS_PJ,
    in_fragment,
)
from repro.completion.zk import prop4_query, verify_prop4, zk_idatabase, zk_table
from repro.completion.ra_definable import ctable_to_query, verify_ra_definability
from repro.completion.ra_completion import (
    codd_spju_completion,
    verify_ra_completion,
    vtable_sp_completion,
)
from repro.completion.finite_completion import (
    boolean_ctable_for,
    general_finite_completion,
    orset_pj_completion,
    qtable_ra_completion,
    rsets_pj_completion,
    rsets_pu_completion,
    rxoreq_spj_completion,
    verify_finite_completion,
    vtable_pj_completion,
    vtable_splus_p_completion,
)
from repro.tables.ctable import CTable
from tests.conftest import random_ctable, random_idatabase


X, Y, Z = Var("x"), Var("y"), Var("z")


def small_idatabases():
    """A deterministic battery of finite incomplete databases."""
    rng = random.Random(5)
    cases = [random_idatabase(rng) for _ in range(6)]
    cases.append(IDatabase([Instance([], arity=2)], arity=2))  # {∅}
    cases.append(
        IDatabase([Instance([(1, 1)]), Instance([], arity=2)], arity=2)
    )
    return cases


class TestZk:
    def test_zk_table_is_codd(self):
        table = zk_table(3)
        assert table.is_codd_table()
        assert table.arity == 3

    def test_zk_mod_is_singletons(self):
        worlds = zk_idatabase(Domain([1, 2]), 2)
        assert len(worlds) == 4
        assert all(len(instance) == 1 for instance in worlds)

    def test_prop4_k1(self):
        assert verify_prop4(Domain([1, 2]), 1)

    def test_prop4_k1_larger_domain(self):
        assert verify_prop4(Domain([1, 2, 3]), 1)

    def test_prop4_k2(self):
        assert verify_prop4(Domain([1, 2]), 2)

    def test_prop4_query_on_specific_inputs(self):
        from repro.algebra.evaluate import apply_query

        query = prop4_query(1, (9,))
        assert apply_query(query, Instance([(3,)])) == Instance([(3,)])
        assert apply_query(query, Instance([], arity=1)) == Instance([(9,)])
        assert apply_query(query, Instance([(1,), (2,)])) == Instance([(9,)])


class TestTheorem1:
    def test_example2_is_ra_definable(self, example2_ctable):
        assert verify_ra_definability(example2_ctable)

    def test_query_in_spju(self, example2_ctable):
        query, k = ctable_to_query(example2_ctable)
        assert k == 3
        assert in_fragment(query, FRAGMENT_SPJU)

    def test_variable_free_table(self):
        table = CTable([(1, 2), (3, 4)])
        assert verify_ra_definability(table)

    def test_repeated_variable_in_tuple(self):
        table = CTable([(X, X)])
        assert verify_ra_definability(table)

    def test_condition_only_variables(self):
        table = CTable([((1,), eq(X, Y))])
        assert verify_ra_definability(table)

    def test_random_ctables(self):
        rng = random.Random(11)
        for _ in range(6):
            table = random_ctable(rng, arity=2, max_rows=2)
            assert verify_ra_definability(table)

    def test_global_condition_rejected(self):
        table = CTable([(X,)], global_condition=ne(X, 1))
        with pytest.raises(UnsupportedOperationError):
            ctable_to_query(table)


class TestTheorem5:
    def test_codd_completion_fragment(self, example2_ctable):
        base, query = codd_spju_completion(example2_ctable)
        assert base.is_codd_table()
        assert in_fragment(query, FRAGMENT_SPJU)

    def test_codd_completion_correct(self, example2_ctable):
        assert verify_ra_completion(
            example2_ctable, codd_spju_completion(example2_ctable)
        )

    def test_vtable_completion_fragment(self, example2_ctable):
        base, query = vtable_sp_completion(example2_ctable)
        assert base.is_v_table()
        assert in_fragment(query, FRAGMENT_SP)

    def test_vtable_completion_correct(self, example2_ctable):
        assert verify_ra_completion(
            example2_ctable, vtable_sp_completion(example2_ctable)
        )

    def test_vtable_completion_random(self):
        rng = random.Random(23)
        for _ in range(5):
            table = random_ctable(rng, arity=2, max_rows=2)
            assert verify_ra_completion(table, vtable_sp_completion(table))

    def test_identifier_freshness(self):
        """Identifier constants avoid the table's own integer constants."""
        table = CTable([((0, 1), eq(X, 0))])
        base, _ = vtable_sp_completion(table)
        id_column_values = {row.values[2].value for row in base.rows}
        assert 0 not in id_column_values and 1 not in id_column_values


class TestTheorem3:
    @pytest.mark.parametrize("target", small_idatabases())
    def test_roundtrip(self, target):
        table = boolean_ctable_for(target)
        assert table.mod() == target

    def test_variable_count_logarithmic(self):
        target = IDatabase(
            [Instance([(value,)]) for value in range(8)], arity=1
        )
        table = boolean_ctable_for(target)
        assert len(table.variables()) == 3  # ceil(lg 8)

    def test_single_instance_no_variables(self):
        target = IDatabase([Instance([(1,), (2,)])], arity=1)
        table = boolean_ctable_for(target)
        assert not table.variables()


class TestTheorem6:
    @pytest.mark.parametrize("target", small_idatabases())
    def test_orset_pj(self, target):
        tables, query = orset_pj_completion(target)
        assert in_fragment(query, FRAGMENT_PJ)
        assert verify_finite_completion(tables, query, target)

    @pytest.mark.parametrize("target", small_idatabases())
    def test_vtable_pj(self, target):
        tables, query = vtable_pj_completion(target)
        assert in_fragment(query, FRAGMENT_PJ)
        assert verify_finite_completion(tables, query, target)

    @pytest.mark.parametrize("target", small_idatabases())
    def test_vtable_splus_p(self, target):
        tables, query = vtable_splus_p_completion(target)
        assert in_fragment(query, FRAGMENT_SPLUS_P)
        assert verify_finite_completion(tables, query, target)

    @pytest.mark.parametrize("target", small_idatabases())
    def test_rsets_pj(self, target):
        tables, query = rsets_pj_completion(target)
        assert in_fragment(query, FRAGMENT_PJ)
        assert verify_finite_completion(tables, query, target)

    def test_rsets_pu_nonempty_instances(self):
        target = IDatabase(
            [Instance([(1, 2)]), Instance([(2, 1), (1, 1)])], arity=2
        )
        tables, query = rsets_pu_completion(target)
        assert in_fragment(query, FRAGMENT_PU)
        assert verify_finite_completion(tables, query, target)

    def test_rsets_pu_rejects_mixed_empty(self):
        target = IDatabase(
            [Instance([(1, 1)]), Instance([], arity=2)], arity=2
        )
        with pytest.raises(UnsupportedOperationError):
            rsets_pu_completion(target)

    def test_rsets_pu_only_empty(self):
        target = IDatabase([Instance([], arity=2)], arity=2)
        tables, query = rsets_pu_completion(target)
        assert verify_finite_completion(tables, query, target)

    @pytest.mark.parametrize("target", small_idatabases())
    def test_rxoreq_spj(self, target):
        tables, query = rxoreq_spj_completion(target)
        assert in_fragment(query, FRAGMENT_SPLUS_PJ)
        assert verify_finite_completion(tables, query, target)

    def test_rxoreq_uses_log_bits(self):
        target = IDatabase(
            [Instance([(value,)]) for value in range(5)], arity=1
        )
        tables, query = rxoreq_spj_completion(target)
        s_table = tables["S"]
        assert len(s_table.tuples) == 6  # ceil(lg 5) = 3 bits, 2 tuples each


class TestTheorem7:
    @pytest.mark.parametrize("target", small_idatabases())
    def test_qtable_ra_completion(self, target):
        tables, query = qtable_ra_completion(target)
        assert verify_finite_completion(tables, query, target)

    def test_insufficient_worlds_rejected(self):
        base = IDatabase([Instance([(1,)])], arity=1)
        target = IDatabase(
            [Instance([(1,)]), Instance([(2,)])], arity=1
        )
        with pytest.raises(UnsupportedOperationError):
            general_finite_completion(base, target)

    def test_surplus_worlds_fold_to_last_instance(self):
        base = IDatabase(
            [Instance([(value,)]) for value in range(4)], arity=1
        )
        target = IDatabase(
            [Instance([(10,)]), Instance([(20,)])], arity=1
        )
        query = general_finite_completion(base, target)
        from repro.algebra.evaluate import apply_query

        images = {apply_query(query, world) for world in base}
        assert images == set(target.instances)
