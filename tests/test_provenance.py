"""Tests for why-provenance and its coincidence with c-table lineage."""

import pytest

from repro.errors import UnsupportedOperationError
from repro.core.instance import Instance, relation
from repro.algebra import (
    col_eq,
    col_eq_const,
    diff,
    proj,
    prod,
    rel,
    sel,
    union,
)
from repro.provenance import (
    ctable_lineage,
    ctable_lineage_matches_provenance,
    lineage_formula,
    minimal_witnesses,
    tuple_event,
    why_provenance,
)


DATA = relation((1, 2), (2, 2), (2, 3))
V = rel("V", 2)


class TestWhyProvenance:
    def test_base_tuple_is_its_own_witness(self):
        provenance = why_provenance(V, DATA, (1, 2))
        assert provenance == frozenset({frozenset({(1, 2)})})

    def test_absent_tuple_has_empty_provenance(self):
        assert why_provenance(V, DATA, (9, 9)) == frozenset()

    def test_projection_unions_witnesses(self):
        query = proj(V, [1])
        provenance = why_provenance(query, DATA, (2,))
        # (2,) is produced by (1,2) and by (2,2).
        assert frozenset({(1, 2)}) in provenance
        assert frozenset({(2, 2)}) in provenance

    def test_join_pairs_witnesses(self):
        query = proj(sel(prod(V, V), col_eq(1, 2)), [0, 3])
        provenance = why_provenance(query, DATA, (1, 3))
        # (1,2) joins (2,3) on the middle value.
        assert frozenset({(1, 2), (2, 3)}) in provenance

    def test_self_join_single_tuple_witness(self):
        query = proj(sel(prod(V, V), col_eq(0, 2)), [1, 3])
        provenance = why_provenance(query, DATA, (2, 2))
        # (1,2) joined with itself gives a one-tuple witness.
        assert frozenset({(1, 2)}) in provenance

    def test_union_merges_provenance(self):
        query = union(proj(V, [0]), proj(V, [1]))
        provenance = why_provenance(query, DATA, (2,))
        assert len(provenance) >= 2

    def test_selection_filters_but_keeps_witnesses(self):
        query = sel(V, col_eq_const(0, 2))
        provenance = why_provenance(query, DATA, (2, 3))
        assert provenance == frozenset({frozenset({(2, 3)})})

    def test_difference_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            why_provenance(diff(V, V), DATA, (1, 2))

    def test_minimal_witnesses_absorbs(self):
        provenance = frozenset(
            {frozenset({(1, 2)}), frozenset({(1, 2), (2, 2)})}
        )
        assert minimal_witnesses(provenance) == frozenset(
            {frozenset({(1, 2)})}
        )


class TestLineageFormula:
    def test_empty_provenance_is_false(self):
        from repro.logic.syntax import BOTTOM

        assert lineage_formula(frozenset()) is BOTTOM

    def test_single_witness_is_conjunction(self):
        provenance = frozenset({frozenset({(1, 2), (2, 3)})})
        formula = lineage_formula(provenance)
        assert formula.variables() == frozenset(
            {tuple_event((1, 2)).name, tuple_event((2, 3)).name}
        )


class TestSection9Claim:
    """The condition in q̄(T) IS the why-provenance (positive queries)."""

    QUERIES = [
        V,
        proj(V, [1]),
        sel(V, col_eq_const(0, 2)),
        proj(sel(prod(V, V), col_eq(1, 2)), [0, 3]),
        union(proj(V, [0]), proj(V, [1])),
        proj(sel(prod(V, V), col_eq(0, 2)), [1, 3]),
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_lineage_equals_provenance_for_all_answers(self, query):
        from repro.algebra import apply_query

        answers = apply_query(query, DATA)
        for row in answers:
            assert ctable_lineage_matches_provenance(query, DATA, row), row

    def test_absent_tuples_agree_too(self):
        query = proj(V, [0])
        assert ctable_lineage_matches_provenance(query, DATA, (9,))

    def test_difference_lineage_goes_beyond_provenance(self):
        """With difference, the c-table condition contains negation —
        information why-provenance cannot express."""
        query = diff(proj(V, [0]), proj(V, [1]))
        # (2,) appears on both sides, so its condition must assert the
        # right-hand occurrences are absent — negative literals.
        lineage = ctable_lineage(query, DATA, (2,))
        from repro.logic.syntax import Not, walk

        assert any(isinstance(node, Not) for node in walk(lineage))
