"""Unit tests for v-tables, Codd tables, ?-tables, or-set tables,
Rsets, R⊕≡ and RA_prop."""

import pytest

from repro.errors import TableError
from repro.core.instance import Instance
from repro.logic.atoms import Var, eq
from repro.logic.syntax import conj, disj
from repro.tables.codd import CoddTable, fresh_codd_table
from repro.tables.orset import OrSet, OrSetRow, OrSetTable, orset
from repro.tables.qtable import QRow, QTable
from repro.tables.raprop import RAPropTable, presence_var
from repro.tables.rsets import RSetsBlock, RSetsTable, block
from repro.tables.rxoreq import Assertion, RXorEquivTable, iff, xor
from repro.tables.vtable import VTable


X, Y, Z = Var("x"), Var("y"), Var("z")


class TestVTable:
    def test_rejects_conditions(self):
        with pytest.raises(TableError):
            VTable([((1,), eq(X, 1))])

    def test_example1_members(self, example1_vtable):
        """Example 1's listed instances are in Mod(R) (domain slice)."""
        worlds = example1_vtable.mod_over([1, 2, 4, 5, 77, 89, 97])
        assert Instance([(1, 2, 1), (3, 1, 1), (1, 4, 5)]) in worlds
        assert Instance([(1, 2, 77), (3, 77, 89), (97, 4, 5)]) in worlds

    def test_shared_variable_correlates_rows(self):
        table = VTable([(1, X), (X, 1)])
        worlds = table.mod_over([1, 2])
        assert Instance([(1, 1)]) in worlds
        assert Instance([(1, 2), (2, 1)]) in worlds
        # No world mixes x=1 in row 1 with x=2 in row 2.
        assert Instance([(1, 1), (2, 1)]) not in worlds

    def test_finite_vtable_mod(self):
        table = VTable([(1, X), (X, 1)], domains={"x": [1, 2]})
        assert len(table.mod()) == 2


class TestCoddTable:
    def test_rejects_repeated_variables(self):
        with pytest.raises(TableError):
            CoddTable([(X, X)])

    def test_rejects_cross_row_repetition(self):
        with pytest.raises(TableError):
            CoddTable([(X, 1), (2, X)])

    def test_fresh_codd_table_builder(self):
        table = fresh_codd_table([[1, None], [None, 4]])
        assert table.arity == 2
        assert len(table.variables()) == 2

    def test_independent_nulls(self):
        table = CoddTable([(X, Y)], domains={"x": [1, 2], "y": [1, 2]})
        assert len(table.mod()) == 4


class TestQTable:
    def test_mod_lattice(self):
        table = QTable([((1,), False), ((2,), True), ((3,), True)])
        worlds = table.mod()
        assert len(worlds) == 4
        assert all((1,) in instance for instance in worlds)

    def test_mandatory_wins_over_optional_duplicate(self):
        table = QTable([((1,), True), ((1,), False)])
        assert len(table.mod()) == 1

    def test_all_optional_includes_empty(self):
        table = QTable([((1,), True)])
        assert Instance([], arity=1) in table.mod()

    def test_mixed_arities_rejected(self):
        with pytest.raises(TableError):
            QTable([((1,), False), ((1, 2), False)])

    def test_mandatory_and_optional_accessors(self):
        table = QTable([((1,), False), ((2,), True)])
        assert table.mandatory_tuples() == frozenset({(1,)})
        assert table.optional_tuples() == frozenset({(2,)})


class TestOrSetTable:
    def test_orset_validation(self):
        with pytest.raises(TableError):
            OrSet(())
        with pytest.raises(TableError):
            OrSet((1, 1))

    def test_example3_mod(self, example3_orset_table):
        worlds = example3_orset_table.mod()
        # Paper-listed members.
        assert Instance([(1, 2, 1), (3, 1, 3), (4, 4, 5)]) in worlds
        assert Instance([(1, 2, 1), (3, 1, 3)]) in worlds
        assert Instance([(1, 2, 2), (3, 2, 4)]) in worlds
        # A non-member: wrong or-set choice combination.
        assert Instance([(1, 2, 3)]) not in worlds

    def test_plain_orset_rejects_optional(self):
        with pytest.raises(TableError):
            OrSetTable(
                [OrSetRow((1,), True)], allow_optional=False
            )

    def test_world_count_bound(self, example3_orset_table):
        assert example3_orset_table.world_count_bound() == 24
        assert len(example3_orset_table.mod()) <= 24

    def test_choices_resolution(self):
        row = OrSetRow((1, orset(2, 3)))
        assert set(row.choices()) == {(1, 2), (1, 3)}
        assert row.choice_count() == 2


class TestRSets:
    def test_block_requires_tuple(self):
        with pytest.raises(TableError):
            RSetsBlock(frozenset())

    def test_mandatory_block_chooses_exactly_one(self):
        table = RSetsTable([block((1,), (2,))])
        worlds = table.mod()
        assert worlds.instances == frozenset(
            {Instance([(1,)]), Instance([(2,)])}
        )

    def test_optional_block_may_abstain(self):
        table = RSetsTable([block((1,), optional=True)])
        assert Instance([], arity=1) in table.mod()

    def test_multiset_blocks(self):
        table = RSetsTable([block((1,), (2,)), block((1,), (2,))])
        worlds = table.mod()
        assert Instance([(1,), (2,)]) in worlds
        assert Instance([(1,)]) in worlds

    def test_mixed_arities_rejected(self):
        with pytest.raises(TableError):
            RSetsTable([block((1,)), block((1, 2))])


class TestRXorEquiv:
    def test_assertion_kinds_validated(self):
        with pytest.raises(TableError):
            Assertion("nand", 0, 1)

    def test_positions_validated(self):
        with pytest.raises(TableError):
            RXorEquivTable([(1,)], [xor(0, 1)])

    def test_xor_semantics(self):
        table = RXorEquivTable([(1,), (2,)], [xor(0, 1)])
        worlds = table.mod()
        assert worlds.instances == frozenset(
            {Instance([(1,)]), Instance([(2,)])}
        )

    def test_iff_semantics(self):
        table = RXorEquivTable([(1,), (2,)], [iff(0, 1)])
        worlds = table.mod()
        assert worlds.instances == frozenset(
            {Instance([], arity=1), Instance([(1,), (2,)])}
        )

    def test_unconstrained_tuples_free(self):
        table = RXorEquivTable([(1,)], [])
        assert len(table.mod()) == 2

    def test_duplicate_tuple_xor_forces_presence(self):
        """The mandatory-tuple trick used by the completion constructions."""
        table = RXorEquivTable([(1,), (1,)], [xor(0, 1)])
        worlds = table.mod()
        assert worlds.instances == frozenset({Instance([(1,)])})


class TestRAProp:
    def test_formula_variables_validated(self):
        with pytest.raises(TableError):
            RAPropTable([(1,)], presence_var(5))

    def test_rejects_optional_rows(self):
        with pytest.raises(TableError):
            RAPropTable([OrSetRow((1,), True)])

    def test_formula_guides_subsets(self):
        table = RAPropTable(
            [(1,), (2,)],
            disj(
                conj(presence_var(0), ~presence_var(1)),
                conj(~presence_var(0), presence_var(1)),
            ),
        )
        worlds = table.mod()
        assert worlds.instances == frozenset(
            {Instance([(1,)]), Instance([(2,)])}
        )

    def test_orset_cells_resolved_when_present(self):
        table = RAPropTable(
            [OrSetRow((orset(1, 2),))], presence_var(0)
        )
        worlds = table.mod()
        assert worlds.instances == frozenset(
            {Instance([(1,)]), Instance([(2,)])}
        )

    def test_true_formula_gives_powerset(self):
        from repro.logic.syntax import TOP

        table = RAPropTable([(1,), (2,)], TOP)
        assert len(table.mod()) == 4
