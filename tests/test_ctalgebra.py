"""Unit tests for the lifted c-table algebra (Theorem 4)."""

import random

import pytest

from repro.errors import ArityError, TableError
from repro.core.instance import Instance
from repro.logic.atoms import Const, Var, eq, ne
from repro.logic.syntax import BOTTOM, TOP, conj, disj
from repro.algebra import (
    col_eq,
    col_eq_const,
    col_ne,
    diff,
    intersect,
    proj,
    prod,
    rel,
    sel,
    singleton,
    union,
)
from repro.ctalgebra.lifted import (
    difference_bar,
    intersection_bar,
    product_bar,
    project_bar,
    select_bar,
    union_bar,
)
from repro.ctalgebra.translate import apply_query_to_ctable, translate_query
from repro.tables.ctable import CRow, CTable
from repro.worlds.compare import closure_holds, lemma1_holds
from tests.conftest import random_ctable


X, Y, Z = Var("x"), Var("y"), Var("z")


class TestProjectBar:
    def test_merges_syntactically_equal_tuples(self):
        table = CTable(
            [((1, X), eq(Y, 1)), ((2, X), eq(Y, 2))]
        )
        projected = project_bar(table, [1])
        assert len(projected) == 1
        assert projected.rows[0].condition == disj(eq(Y, 1), eq(Y, 2))

    def test_keeps_distinct_symbolic_tuples_apart(self):
        table = CTable([(X, 1), (Y, 1)])
        projected = project_bar(table, [0])
        assert len(projected) == 2

    def test_column_reorder_and_repeat(self):
        table = CTable([(1, X)])
        projected = project_bar(table, [1, 1, 0])
        assert projected.rows[0].values == (X, X, Const(1))

    def test_out_of_range_rejected(self):
        with pytest.raises(ArityError):
            project_bar(CTable([(1,)]), [1])


class TestSelectBar:
    def test_constant_predicate_folds(self):
        table = CTable([(1, 2), (3, 4)])
        selected = select_bar(table, col_eq_const(0, 1))
        # Row (3,4) gets condition false and is dropped at construction.
        assert len(selected) == 1

    def test_symbolic_predicate_becomes_condition(self):
        table = CTable([(X, 2)])
        selected = select_bar(table, col_eq(0, 1))
        assert selected.rows[0].condition == eq(X, 2)

    def test_condition_conjoined_with_existing(self):
        table = CTable([((X, 2), ne(X, 5))])
        selected = select_bar(table, col_eq_const(0, 1))
        assert selected.rows[0].condition == conj(ne(X, 5), eq(X, 1))


class TestProductUnionBar:
    def test_product_concatenates_and_conjoins(self):
        left = CTable([((1,), eq(X, 1))])
        right = CTable([((2,), eq(Y, 2))])
        combined = product_bar(left, right)
        assert combined.rows[0].values == (Const(1), Const(2))
        assert combined.rows[0].condition == conj(eq(X, 1), eq(Y, 2))

    def test_product_shares_variables(self):
        """Self-join keeps one valuation for both occurrences."""
        table = CTable([(X,)])
        squared = product_bar(table, table)
        world = squared.apply_valuation({"x": 3})
        assert world == Instance([(3, 3)])

    def test_union_concatenates_rows(self):
        left = CTable([(1,)])
        right = CTable([(2,)])
        assert len(union_bar(left, right)) == 2

    def test_union_arity_mismatch(self):
        with pytest.raises(ArityError):
            union_bar(CTable([(1,)]), CTable([(1, 2)]))

    def test_mixed_domain_tables_rejected(self):
        infinite = CTable([(X,)])
        finite = CTable([(Y,)], domains={"y": [1]})
        with pytest.raises(TableError):
            product_bar(infinite, finite)

    def test_conflicting_domains_rejected(self):
        a = CTable([(X,)], domains={"x": [1]})
        b = CTable([(X,)], domains={"x": [2]})
        with pytest.raises(TableError):
            union_bar(a, b)


class TestDifferenceIntersectionBar:
    def test_difference_of_equal_constants_removes(self):
        left = CTable([(1,), (2,)])
        right = CTable([(1,)])
        result = difference_bar(left, right)
        worlds = result.mod()
        assert worlds.instances == frozenset({Instance([(2,)])})

    def test_symbolic_difference(self):
        left = CTable([(X,)])
        right = CTable([(1,)])
        result = difference_bar(left, right)
        assert result.apply_valuation({"x": 1}) == Instance([], arity=1)
        assert result.apply_valuation({"x": 2}) == Instance([(2,)])

    def test_conditional_right_side(self):
        left = CTable([(1,)])
        right = CTable([((1,), eq(X, 5))])
        result = difference_bar(left, right)
        assert result.apply_valuation({"x": 5}) == Instance([], arity=1)
        assert result.apply_valuation({"x": 0}) == Instance([(1,)])

    def test_intersection_symbolic(self):
        left = CTable([(X,)])
        right = CTable([(1,), (2,)])
        result = intersection_bar(left, right)
        assert result.apply_valuation({"x": 2}) == Instance([(2,)])
        assert result.apply_valuation({"x": 3}) == Instance([], arity=1)


class TestLiftedEdgeCases:
    """Arity-0 operands, empty operands, and domain-merge failures."""

    def test_arity_zero_difference(self):
        # The row-equality condition degenerates to TOP: the empty tuple
        # always equals itself, so () − () is empty whenever () is present
        # on the right.
        left = CTable([()], arity=0)
        right = CTable([()], arity=0)
        result = difference_bar(left, right)
        assert result.arity == 0
        assert result.mod().instances == frozenset(
            {Instance((), arity=0)}
        )

    def test_arity_zero_intersection(self):
        left = CTable([()], arity=0)
        right = CTable([()], arity=0)
        result = intersection_bar(left, right)
        assert result.mod().instances == frozenset(
            {Instance([()], arity=0)}
        )

    def test_arity_zero_difference_with_conditional_right(self):
        left = CTable([()], arity=0)
        right = CTable([((), eq(X, 1))], arity=0)
        result = difference_bar(left, right)
        assert result.apply_valuation({"x": 1}) == Instance((), arity=0)
        assert result.apply_valuation({"x": 2}) == Instance([()], arity=0)

    def test_empty_operand_tables(self):
        empty = CTable((), arity=2)
        filled = CTable([(1, 2)], arity=2)
        assert len(difference_bar(filled, empty)) == 1
        assert len(difference_bar(empty, filled)) == 0
        assert len(intersection_bar(filled, empty)) == 0
        assert len(product_bar(empty, filled)) == 0
        assert len(union_bar(empty, empty)) == 0
        assert union_bar(empty, filled).mod().instances == frozenset(
            {Instance([(1, 2)])}
        )

    def test_merge_domains_conflict_rejected(self):
        left = CTable([(X,)], domains={"x": [1, 2]})
        right = CTable([(X,)], domains={"x": [1, 3]})
        with pytest.raises(TableError):
            union_bar(left, right)

    def test_merge_infinite_with_finite_rejected(self):
        infinite = CTable([(X,)])
        finite = CTable([(Y,)], domains={"y": [1, 2]})
        with pytest.raises(TableError):
            product_bar(infinite, finite)

    def test_merge_disjoint_domains_union(self):
        left = CTable([(X,)], domains={"x": [1, 2]})
        right = CTable([(Y,)], domains={"y": [3]})
        merged = product_bar(left, right)
        assert merged.domains == {"x": (1, 2), "y": (3,)}


class TestTranslation:
    def test_constant_relations_embedded(self):
        table = CTable([(7,)])
        query = union(rel("V", 1), singleton(9))
        answered = apply_query_to_ctable(query, table)
        assert answered.mod().instances == frozenset(
            {Instance([(7,), (9,)])}
        )

    def test_arity_mismatch_rejected(self):
        with pytest.raises(Exception):
            apply_query_to_ctable(proj(rel("V", 2), [0]), CTable([(1,)]))

    def test_simplify_flag_preserves_semantics(self, example2_ctable):
        query = proj(
            sel(rel("V", 3), disj(col_eq(0, 1), col_ne(1, 2))), [2, 0]
        )
        a = apply_query_to_ctable(query, example2_ctable, False)
        b = apply_query_to_ctable(query, example2_ctable, True)
        domain = example2_ctable.witness_domain()
        assert a.mod_over(domain) == b.mod_over(domain)


class TestLemma1AndClosure:
    QUERIES = [
        proj(rel("V", 3), [0]),
        sel(rel("V", 3), col_eq(0, 1)),
        sel(rel("V", 3), col_ne(1, 2)),
        proj(sel(prod(rel("V", 3), rel("V", 3)), col_eq(2, 3)), [0, 5]),
        union(proj(rel("V", 3), [0, 1]), proj(rel("V", 3), [1, 2])),
        diff(proj(rel("V", 3), [0]), proj(rel("V", 3), [2])),
        intersect(proj(rel("V", 3), [0]), proj(rel("V", 3), [1])),
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_lemma1_on_example2(self, query, example2_ctable):
        for valuation in (
            {"x": 1, "y": 1, "z": 1},
            {"x": 2, "y": 3, "z": 2},
            {"x": 1, "y": 2, "z": 7},
        ):
            assert lemma1_holds(query, example2_ctable, valuation)

    @pytest.mark.parametrize("query", QUERIES)
    def test_closure_on_example2(self, query, example2_ctable):
        assert closure_holds(query, example2_ctable)

    def test_closure_on_random_tables(self):
        rng = random.Random(42)
        queries = self.QUERIES[:4]
        for index in range(6):
            table = random_ctable(rng, arity=3, max_rows=2)
            for query in queries:
                assert closure_holds(query, table), (index, query)

    def test_closure_with_finite_domains(self):
        table = CTable(
            [((X, Y), ne(X, Y))], domains={"x": [1, 2], "y": [1, 2]}
        )
        query = sel(rel("V", 2), col_eq_const(0, 1))
        answered = apply_query_to_ctable(query, table)
        naive = table.mod().map_instances(
            lambda instance: Instance(
                [row for row in instance if row[0] == 1], arity=2
            )
        )
        assert answered.mod() == naive
