"""Plan-verifier tests: seeded broken rewrites and the check surfaces.

The core battery monkeypatches the optimizer's local rule functions
(resolved through module globals for exactly this purpose — see
``optimize._apply_local_rule``) with deliberately broken variants, runs
real queries through the verified planning pipeline, and demands that
:class:`~repro.ctalgebra.verify.PlanVerifier` rejects the rewrite *and
names the offending rule*.  The battery runs in both verifier modes.
In ``"syntactic"`` mode one mutation is a documented miss — the
column-erasing conjunct keys cannot see a predicate applied to the
wrong join side when the atom shapes survive — and the battery asserts
the issue's bar: at least 8 of the 10+ seeded mutations are caught.  In
``"semantic"`` mode translation validation (symbolic execution on
abstract tables plus SAT/BDD condition equivalence) closes exactly that
blind spot, and the battery demands a perfect 12/12 catch rate.

The wrong-side query joins on *different* columns than it filters
(``col1 = col3`` join, ``col0 = 1`` filter): under a ``col0 = col2``
join the side swap would be genuinely Mod-preserving (congruence makes
the filter equivalent on either side) and the semantic verifier —
correctly — accepts it.
"""

import pytest

from repro.errors import PlanVerificationError, QueryError
from repro.algebra import (
    col_eq,
    col_eq_const,
    proj,
    prod,
    rel,
    sel,
    union,
)
from repro.ctalgebra import optimize
from repro.ctalgebra.plan import (
    EmptyNode,
    JoinNode,
    ProductNode,
    ProjectNode,
    Scan,
    SelectNode,
    collect_stats,
)
from repro.ctalgebra.translate import plan_for_query
from repro.ctalgebra.verify import PlanVerifier
from repro.engine import Engine
from repro.engine.config import ExecutionConfig, _env_choice, _env_flag
from repro.logic.atoms import Const, Var, eq
from repro.logic.syntax import Not, TOP, conj, is_interned
from repro.physical.lower import lower
from repro.physical.parallel import ParallelSpec
from repro.tables.ctable import CRow, CTable


R2 = rel("R", 2)
S2 = rel("S", 2)

UNSAT = conj(col_eq_const(0, 1), col_eq_const(0, 2))

# The real rule functions, captured before any monkeypatching: the
# broken variants below delegate to these for the cases they leave
# intact (the patched module globals would recurse into themselves).
REAL_REWRITE_SELECT = optimize._rewrite_select
REAL_REWRITE_JOIN = optimize._rewrite_join
REAL_REWRITE_STRUCTURAL = optimize._rewrite_structural
REAL_BUILD_IN_ORDER = optimize._build_in_order


def non_canonical_not(predicate):
    """A structurally-equal duplicate of an interned ``Not`` node.

    The raw dataclass constructor registers itself best-effort
    (``setdefault``), so whichever node sits in the intern table first —
    our first construction, or a survivor from an earlier test — the
    second construction is never it.  The first node is returned too so
    the caller keeps a strong reference (the intern table is weak).
    """
    canonical = Not(child=predicate)  # interned-ok: probing the raw path
    duplicate = Not(child=predicate)  # interned-ok: probing the raw path
    return canonical, duplicate


def small_tables():
    r = CTable([(1, 2), (2, 3), (1, 1)], arity=2)
    s = CTable([(2, 5), (3, 7)], arity=2)
    return {"R": r, "S": s}


def verified_plan(query, tables=None, mode="syntactic"):
    return plan_for_query(
        query,
        tables or small_tables(),
        optimize=True,
        verify=True,
        verify_mode=mode,
    )


# ----------------------------------------------------------------------
# Seeded broken rewrites
# ----------------------------------------------------------------------

def broken_fusion_drops_outer(node, sat):
    """Select-over-select fusion that forgets the outer predicate."""
    if isinstance(node.child, SelectNode):
        return SelectNode(node.child.child, node.child.predicate)
    return REAL_REWRITE_SELECT(node, sat)


def broken_join_drops_residual(node, sat):
    """Pushdown that silently drops the cross-side residual conjunct."""
    result = REAL_REWRITE_JOIN(node, sat)
    if isinstance(result, JoinNode):
        return ProductNode(result.left, result.right)
    return result


def broken_join_unshifted_pushdown(node, sat):
    """Pushes the whole predicate to the right child without remapping."""
    return ProductNode(node.left, SelectNode(node.right, node.predicate))


def broken_project_truncates(node):
    """Projection rewrite that loses the last output column."""
    return ProjectNode(node.child, node.columns[:-1])


def broken_project_out_of_range(node):
    """Same arity, but every output column indexes past the child."""
    return ProjectNode(node.child, tuple(node.child.arity for _ in node.columns))


def broken_union_absorbs_empty(node):
    """Union-with-empty collapses to empty, forgetting the live side."""
    if hasattr(node, "left") and hasattr(node, "right"):
        for side in (node.left, node.right):
            if isinstance(side, EmptyNode):
                return EmptyNode(node.arity, side.sources)
    return REAL_REWRITE_STRUCTURAL(node)


def broken_select_prunes_satisfiable(node, sat):
    """Treats every selection as unsatisfiable."""
    return optimize._prune_to_empty(node)


def broken_prune_forgets_sources(node):
    """A prune that throws away the EmptyNode's leaf memory."""
    return EmptyNode(node.arity, ())


def broken_select_invents_atom(node, sat):
    """Adds a conjunct the query never asked for."""
    return SelectNode(node.child, conj(node.predicate, col_eq_const(0, 99)))


def broken_join_wrong_side(node, sat):
    """Applies the left-only conjunct to the right child (shape-identical).

    The conjunct keys deliberately erase column indexes (pushdown remaps
    them legitimately), so this side swap survives every structural
    check — the documented blind spot the differential fuzzer still
    covers.
    """
    result = REAL_REWRITE_JOIN(node, sat)
    if (
        isinstance(result, JoinNode)
        and isinstance(result.left, SelectNode)
        and not isinstance(result.right, SelectNode)
    ):
        moved = result.left.predicate
        return JoinNode(
            result.left.child,
            SelectNode(result.right, moved),
            result.predicate,
        )
    return result


def broken_reorder_drops_conjunct(operands, conjuncts, order, total_arity):
    return REAL_BUILD_IN_ORDER(
        operands, list(conjuncts)[:-1], order, total_arity
    )


def broken_reorder_duplicates_operand(operands, conjuncts, order, total_arity):
    cloned = [(operands[0][0], start) for _, start in operands]
    return REAL_BUILD_IN_ORDER(cloned, conjuncts, order, total_arity)


#: (name, optimize attribute to patch, broken fn, query, expected check,
#:  expected rule, caught syntactically?)
#:
#: Semantic mode catches *every* entry: the ones below with
#: ``caught=True`` fail the same syntactic check first (those checks run
#: before translation validation), and the one documented syntactic miss
#: carries the check/rule the *semantic* verifier reports it under.
MUTATIONS = [
    (
        "fusion-drops-outer-predicate",
        "_rewrite_select",
        broken_fusion_drops_outer,
        sel(sel(R2, col_eq_const(0, 1)), col_eq_const(1, 2)),
        "conjunct-conservation",
        "rewrite_select",
        True,
    ),
    (
        "join-drops-residual",
        "_rewrite_join",
        broken_join_drops_residual,
        sel(prod(R2, S2), col_eq(0, 2), col_eq_const(0, 1)),
        "conjunct-conservation",
        "rewrite_join",
        True,
    ),
    (
        "join-unshifted-pushdown",
        "_rewrite_join",
        broken_join_unshifted_pushdown,
        sel(prod(R2, S2), col_eq_const(2, 5)),
        "arity",
        "rewrite_join",
        True,
    ),
    (
        "projection-truncates-columns",
        "_rewrite_project",
        broken_project_truncates,
        proj(R2, (1, 0)),
        "arity",
        "rewrite_project",
        True,
    ),
    (
        "projection-columns-out-of-range",
        "_rewrite_project",
        broken_project_out_of_range,
        proj(R2, (1, 0)),
        "arity",
        "rewrite_project",
        True,
    ),
    (
        "union-absorbs-empty",
        "_rewrite_structural",
        broken_union_absorbs_empty,
        union(sel(R2, UNSAT), S2),
        "leaf-conservation",
        "rewrite_structural",
        True,
    ),
    (
        "reorder-drops-conjunct",
        "_build_in_order",
        broken_reorder_drops_conjunct,
        sel(prod(R2, S2), col_eq(0, 2)),
        "conjunct-conservation",
        "reorder_joins",
        True,
    ),
    (
        "reorder-duplicates-operand",
        "_build_in_order",
        broken_reorder_duplicates_operand,
        sel(prod(R2, S2), col_eq(0, 2)),
        "leaf-conservation",
        "reorder_joins",
        True,
    ),
    (
        "prunes-satisfiable-predicate",
        "_rewrite_select",
        broken_select_prunes_satisfiable,
        sel(R2, col_eq_const(0, 1)),
        "unsat-prune",
        "rewrite_select",
        True,
    ),
    (
        "prune-forgets-leaf-sources",
        "_prune_to_empty",
        broken_prune_forgets_sources,
        sel(R2, UNSAT),
        "leaf-conservation",
        "rewrite_select",
        True,
    ),
    (
        "select-invents-atom",
        "_rewrite_select",
        broken_select_invents_atom,
        sel(R2, col_eq_const(0, 1)),
        "conjunct-conservation",
        "rewrite_select",
        True,
    ),
    (
        "join-wrong-side-pushdown",
        "_rewrite_join",
        broken_join_wrong_side,
        sel(prod(R2, S2), col_eq(1, 3), col_eq_const(0, 1)),
        "semantics",
        "rewrite_join",
        False,
    ),
]

VERIFY_MODES = ["syntactic", "semantic"]


class TestSeededMutations:
    @pytest.mark.parametrize("mode", VERIFY_MODES)
    @pytest.mark.parametrize(
        "name,attr,broken,query,check,rule,caught",
        MUTATIONS,
        ids=[entry[0] for entry in MUTATIONS],
    )
    def test_mutation(
        self, monkeypatch, name, attr, broken, query, check, rule, caught, mode
    ):
        monkeypatch.setattr(optimize, attr, broken)
        if mode == "semantic":
            caught = True  # translation validation closes the blind spot
        if caught:
            with pytest.raises(PlanVerificationError) as excinfo:
                verified_plan(query, mode=mode)
            assert excinfo.value.check == check
            assert excinfo.value.rule == rule
            assert rule in str(excinfo.value)
        else:
            # Documented syntactic miss: shape-preserving side swaps pass
            # the structural checks; semantic mode (above) catches them.
            verified_plan(query, mode=mode)

    def test_syntactic_catch_rate_meets_the_bar(self):
        """At least 8 of the 10+ seeded mutations must be caught."""
        total, caught = self._catch_count("syntactic")
        assert total >= 10
        assert caught >= 8

    def test_semantic_catch_rate_is_perfect(self):
        """Semantic mode catches every seeded mutation — 12/12."""
        total, caught = self._catch_count("semantic")
        assert total == 12
        assert caught == total

    @staticmethod
    def _catch_count(mode):
        total = len(MUTATIONS)
        caught = 0
        for name, attr, broken, query, check, rule, expect_caught in MUTATIONS:
            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(optimize, attr, broken)
                try:
                    verified_plan(query, mode=mode)
                except PlanVerificationError as error:
                    assert error.rule is not None, name
                    caught += 1
        return total, caught

    @pytest.mark.parametrize("mode", VERIFY_MODES)
    def test_clean_pipeline_verifies(self, mode):
        """Without mutations the verified pipeline accepts the plans."""
        for _, _, _, query, _, _, _ in MUTATIONS:
            verified_plan(query, mode=mode)


# ----------------------------------------------------------------------
# verify_query: schema checks before planning
# ----------------------------------------------------------------------

class TestVerifyQuery:
    def test_unknown_relation_names_nearest_match(self):
        verifier = PlanVerifier()
        with pytest.raises(QueryError) as excinfo:
            verifier.verify_query(rel("peoples", 2), {"people": 2, "pets": 2})
        message = str(excinfo.value)
        assert "peoples" in message
        assert "did you mean 'people'" in message

    def test_arity_mismatch(self):
        verifier = PlanVerifier()
        with pytest.raises(QueryError, match="arity"):
            verifier.verify_query(rel("R", 3), {"R": 2})

    def test_valid_query_passes(self):
        PlanVerifier().verify_query(
            sel(prod(R2, S2), col_eq(0, 2)), {"R": 2, "S": 2}
        )


# ----------------------------------------------------------------------
# verify_plan: node-level invariants
# ----------------------------------------------------------------------

class TestVerifyPlan:
    def test_negative_scan_arity(self):
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_plan(Scan("R", -1))
        assert excinfo.value.check == "arity"

    def test_projection_out_of_range(self):
        plan = ProjectNode(Scan("R", 2), (0, 5))
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_plan(plan)
        assert excinfo.value.check == "arity"

    def test_predicate_column_out_of_range(self):
        plan = SelectNode(Scan("R", 2), col_eq_const(4, 1))
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_plan(plan)
        assert excinfo.value.check == "arity"

    def test_non_column_variable_in_predicate(self):
        plan = SelectNode(Scan("R", 2), eq(Var("x"), Const(1)))
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_plan(plan)
        assert excinfo.value.check == "scope"

    def test_non_canonical_predicate_rejected(self):
        # Keyword construction bypasses the interning smart constructor,
        # producing a structurally-equal but non-canonical node.
        canonical, raw = non_canonical_not(col_eq_const(0, 1))
        assert not is_interned(raw)
        plan = SelectNode(Scan("R", 2), raw)
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_plan(plan)
        assert excinfo.value.check == "interning"

    def test_empty_node_with_non_leaf_source(self):
        plan = EmptyNode(2, (SelectNode(Scan("R", 2), TOP),))
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_plan(plan)
        assert excinfo.value.check == "leaf-conservation"


# ----------------------------------------------------------------------
# verify_rewrite: the conservation laws directly
# ----------------------------------------------------------------------

class TestVerifyRewrite:
    def test_legal_collapse_over_empty_child(self):
        # Select over an already-empty region may fold to the region:
        # the dropped atoms need no independent justification.
        before = SelectNode(
            EmptyNode(2, (Scan("R", 2),)), col_eq_const(0, 1)
        )
        after = EmptyNode(2, (Scan("R", 2),))
        PlanVerifier().verify_rewrite("rewrite_select", before, after)

    def test_unjustified_prune_is_rejected(self):
        before = SelectNode(Scan("R", 2), col_eq_const(0, 1))
        after = EmptyNode(2, (Scan("R", 2),))
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_rewrite("rewrite_select", before, after)
        assert excinfo.value.check == "unsat-prune"

    def test_justified_prune_is_accepted(self):
        before = SelectNode(Scan("R", 2), UNSAT)
        after = EmptyNode(2, (Scan("R", 2),))
        PlanVerifier().verify_rewrite("rewrite_select", before, after)


# ----------------------------------------------------------------------
# verify_ctable: canonicity and domain coverage
# ----------------------------------------------------------------------

class TestVerifyCTable:
    def test_canonical_table_passes(self):
        table = CTable(
            [CRow((Var("x"), Const(1)), col_eq_const(0, 1))], arity=2
        )
        PlanVerifier().verify_ctable("T", table)

    def test_non_canonical_condition_rejected(self):
        canonical, raw = non_canonical_not(col_eq_const(0, 1))
        table = CTable([CRow((Const(1), Const(2)), raw)], arity=2)
        assert not is_interned(raw)
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier().verify_ctable("T", table)
        assert excinfo.value.check == "interning"
        assert "'T'" in str(excinfo.value)


# ----------------------------------------------------------------------
# verify_physical: lowering invariants
# ----------------------------------------------------------------------

class TestVerifyPhysical:
    def lowered_join(self, parallel=None):
        tables = small_tables()
        plan = JoinNode(Scan("R", 2), Scan("S", 2), col_eq(0, 2))
        stats = collect_stats(tables)
        return lower(plan, stats, parallel=parallel), stats

    def test_clean_lowering_verifies(self):
        spec = ParallelSpec(num_workers=2, morsel_size=2)
        op, stats = self.lowered_join(parallel=spec)
        PlanVerifier(stats).verify_physical(op, morsel_size=spec.morsel_size)

    def test_flipped_build_side_is_stale_estimates(self):
        op, stats = self.lowered_join()
        op.build_side = "left" if op.build_side == "right" else "right"
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier(stats).verify_physical(op)
        assert excinfo.value.check == "estimates"

    def test_negative_physical_estimate(self):
        op, stats = self.lowered_join()
        op.est_rows = -5.0
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier(stats).verify_physical(op)
        assert excinfo.value.check == "estimates"

    def test_stale_parallel_stamp(self):
        spec = ParallelSpec(num_workers=2, morsel_size=2)
        op, stats = self.lowered_join(parallel=spec)
        stamped = [
            node for node in op.walk() if node.par_decision is not None
        ]
        assert stamped, "expected at least one stamped operator"
        for node in stamped:
            node.par_decision = (
                "serial" if node.par_decision == "parallel" else "parallel"
            )
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier(stats).verify_physical(
                op, morsel_size=spec.morsel_size
            )
        assert excinfo.value.check == "lowering"

    def test_stamp_on_non_morselizable_operator(self):
        op, stats = self.lowered_join()
        from repro.physical.parallel import PARALLELIZABLE_OPS

        outsider = None
        for node in op.walk():
            if not isinstance(node, PARALLELIZABLE_OPS):
                outsider = node
                break
        if outsider is None:
            pytest.skip("every operator in this tree is morselizable")
        outsider.par_decision = "parallel"
        with pytest.raises(PlanVerificationError) as excinfo:
            PlanVerifier(stats).verify_physical(op)
        assert excinfo.value.check == "lowering"


# ----------------------------------------------------------------------
# Config and engine wiring
# ----------------------------------------------------------------------

class TestConfigWiring:
    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_env_flag_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", value)
        assert ExecutionConfig().verify_plans is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "Off", ""])
    def test_env_flag_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", value)
        assert ExecutionConfig().verify_plans is False

    def test_env_flag_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "maybe")
        with pytest.raises(ValueError, match="REPRO_VERIFY_PLANS"):
            _env_flag("REPRO_VERIFY_PLANS", False)

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        assert ExecutionConfig(verify_plans=False).verify_plans is False

    @pytest.mark.parametrize("value", ["semantic", "SEMANTIC", " Semantic "])
    def test_env_verify_mode_semantic(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY_MODE", value)
        assert ExecutionConfig().verify_mode == "semantic"

    @pytest.mark.parametrize("value", ["syntactic", ""])
    def test_env_verify_mode_syntactic(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY_MODE", value)
        assert ExecutionConfig().verify_mode == "syntactic"

    def test_env_verify_mode_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MODE", "deep")
        with pytest.raises(ValueError, match="REPRO_VERIFY_MODE"):
            _env_choice(
                "REPRO_VERIFY_MODE", "syntactic", ("syntactic", "semantic")
            )

    def test_config_rejects_unknown_verify_mode(self):
        with pytest.raises(ValueError, match="verify_mode"):
            ExecutionConfig(verify_mode="exhaustive")

    def test_explicit_verify_mode_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MODE", "semantic")
        config = ExecutionConfig(verify_mode="syntactic")
        assert config.verify_mode == "syntactic"

    def test_verifier_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            PlanVerifier(mode="exhaustive")

    def test_engine_semantic_mode_catches_wrong_side_pushdown(
        self, monkeypatch
    ):
        # The full engine path: config knob → build_plan → PlanVerifier.
        monkeypatch.setattr(optimize, "_rewrite_join", broken_join_wrong_side)
        query = sel(prod(R2, S2), col_eq(1, 3), col_eq_const(0, 1))
        syntactic = Engine(verify_plans=True, verify_mode="syntactic")
        syntactic.session(**small_tables()).query(query).collect()  # the miss
        semantic = Engine(verify_plans=True, verify_mode="semantic")
        with pytest.raises(PlanVerificationError) as excinfo:
            semantic.session(**small_tables()).query(query).collect()
        assert excinfo.value.check == "semantics"
        assert excinfo.value.rule == "rewrite_join"

    def test_engine_verified_query_catches_broken_rule(self, monkeypatch):
        monkeypatch.setattr(
            optimize, "_rewrite_select", broken_select_prunes_satisfiable
        )
        session = Engine(verify_plans=True).session(**small_tables())
        with pytest.raises(PlanVerificationError) as excinfo:
            session.query(sel(rel("R", 2), col_eq_const(0, 1))).collect()
        assert excinfo.value.rule == "rewrite_select"

    def test_engine_without_verification_executes_broken_plan(
        self, monkeypatch
    ):
        # The same mutation slips through when verification is off —
        # the flag is what stands between the bug and the answer.
        monkeypatch.setattr(
            optimize, "_rewrite_select", broken_select_prunes_satisfiable
        )
        session = Engine(verify_plans=False).session(**small_tables())
        result = session.query(sel(rel("R", 2), col_eq_const(0, 1))).collect()
        assert len(result.rows) == 0  # silently wrong: prunes everything

    def test_session_register_rejects_non_canonical_table(self):
        canonical, raw = non_canonical_not(col_eq_const(0, 1))
        bad = CTable([CRow((Const(1), Const(2)), raw)], arity=2)
        assert not is_interned(raw)
        session = Engine(verify_plans=True).session()
        with pytest.raises(PlanVerificationError):
            session.register("T", bad)

    def test_prepare_unknown_relation_hint(self):
        session = Engine(verify_plans=True).session(**small_tables())
        with pytest.raises(QueryError, match="did you mean 'R'"):
            session.prepare(sel(rel("Rs", 2), col_eq_const(0, 1)))
