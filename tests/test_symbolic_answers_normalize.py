"""Tests for symbolic answers and c-table normalization."""

import random

import pytest

from repro.core.instance import Instance, relation
from repro.errors import UnsupportedOperationError
from repro.logic.atoms import Var, eq, ne
from repro.logic.syntax import conj, disj
from repro.algebra import (
    col_eq,
    col_eq_const,
    diff,
    proj,
    prod,
    rel,
    sel,
    union,
)
from repro.tables.ctable import CTable
from repro.tables.normalize import (
    drop_unsatisfiable_rows,
    merge_duplicate_rows,
    normalize,
)
from repro.worlds.answers import certain_answer_table, possible_answer_table
from repro.worlds.compare import witness_domain_for
from repro.worlds.symbolic_answers import (
    certain_answer_symbolic,
    possible_answer_symbolic,
)
from tests.conftest import random_ctable


X, Y, Z = Var("x"), Var("y"), Var("z")
V3 = rel("V", 3)


class TestSymbolicCertainAnswers:
    def test_constant_row_is_certain(self, example2_ctable):
        query = proj(V3, [0, 1])
        symbolic = certain_answer_symbolic(query, example2_ctable)
        assert (1, 2) in symbolic

    def test_agrees_with_enumeration_on_battery(self, example2_ctable):
        queries = [
            proj(V3, [0]),
            proj(V3, [0, 1]),
            sel(V3, col_eq(0, 1)),
            union(proj(V3, [1]), proj(V3, [2])),
            diff(proj(V3, [0]), proj(V3, [1])),
        ]
        domain = example2_ctable.witness_domain()
        for query in queries:
            symbolic = certain_answer_symbolic(query, example2_ctable)
            enumerated = certain_answer_table(
                query, example2_ctable, domain
            )
            assert symbolic == enumerated, query

    def test_agrees_on_random_tables(self):
        rng = random.Random(31)
        queries = [proj(rel("V", 2), [0]), sel(rel("V", 2), col_eq(0, 1))]
        for _ in range(5):
            table = random_ctable(rng, arity=2, max_rows=2)
            domain = table.witness_domain()
            for query in queries:
                assert certain_answer_symbolic(
                    query, table
                ) == certain_answer_table(query, table, domain)

    def test_finite_domain_table(self):
        table = CTable(
            [((X, 1), eq(X, 1)), (2, 2)],
            domains={"x": [1, 2]},
        )
        query = rel("V", 2)
        symbolic = certain_answer_symbolic(query, table)
        assert symbolic == relation((2, 2))

    def test_forced_variable_is_certain(self):
        """A variable entry forced by its condition yields a certain tuple."""
        table = CTable([((X,), eq(X, 7))])
        query = rel("V", 1)
        # The only worlds with any tuple have x = 7... but worlds where
        # x ≠ 7 are empty, so (7,) is NOT certain.
        assert len(certain_answer_symbolic(query, table)) == 0
        # With an unconditional constant row alongside, (5,) is certain.
        table2 = CTable([((X,), eq(X, 7)), (5,)])
        assert (5,) in certain_answer_symbolic(query, table2)

    def test_candidate_bound_enforced(self):
        table = CTable([tuple([0] * 1)], arity=1)
        big = CTable(
            [tuple(Var(f"v{i}") for i in range(3))],
            global_condition=conj(
                *(eq(Var(f"v{i}"), i) for i in range(3))
            ),
        )
        with pytest.raises(UnsupportedOperationError):
            certain_answer_symbolic(rel("V", 3), big, max_candidates=1)


class TestSymbolicPossibleAnswers:
    def test_constant_possible_answers(self, example2_ctable):
        query = proj(V3, [0, 1])
        possible = possible_answer_symbolic(query, example2_ctable)
        assert (1, 2) in possible
        assert (3, 4) in possible  # row 2 projects to (3, x), x = 4
        assert (2, 1) not in possible  # no row matches that shape

    def test_subset_of_enumerated(self, example2_ctable):
        query = proj(V3, [1])
        domain = example2_ctable.witness_domain()
        symbolic = possible_answer_symbolic(query, example2_ctable)
        enumerated = possible_answer_table(query, example2_ctable, domain)
        assert set(symbolic.rows) <= set(enumerated.rows)

    def test_unsatisfiable_rows_not_possible(self):
        table = CTable([((1,), conj(eq(X, 1), ne(X, 1)))], arity=1)
        possible = possible_answer_symbolic(rel("V", 1), table)
        assert len(possible) == 0


class TestNormalization:
    def test_drop_unsatisfiable_semantic(self):
        """Syntactically alive but semantically dead rows get dropped."""
        dead = conj(eq(X, "a"), eq(X, "b"))
        table = CTable([((1,), dead), ((2,),)], arity=1)
        cleaned = drop_unsatisfiable_rows(table)
        assert len(cleaned) == 1

    def test_drop_respects_finite_domains(self):
        # x = 3 is satisfiable over an infinite domain but not over {1,2}.
        table = CTable([((1,), eq(X, 3))], domains={"x": [1, 2]})
        assert len(drop_unsatisfiable_rows(table)) == 0

    def test_drop_uses_global_condition(self):
        table = CTable(
            [((1,), eq(X, 5))], global_condition=ne(X, 5)
        )
        assert len(drop_unsatisfiable_rows(table)) == 0

    def test_merge_duplicates(self):
        table = CTable(
            [((1, X), eq(Y, 1)), ((1, X), eq(Y, 2))]
        )
        merged = merge_duplicate_rows(table)
        assert len(merged) == 1
        assert merged.rows[0].condition == disj(eq(Y, 1), eq(Y, 2))

    def test_normalize_preserves_mod(self, example2_ctable):
        query = proj(
            sel(prod(V3, V3), conj(col_eq(2, 3), col_eq_const(0, 1))),
            [0, 4],
        )
        from repro.ctalgebra.translate import apply_query_to_ctable

        answered = apply_query_to_ctable(query, example2_ctable)
        cleaned = normalize(answered)
        domain = witness_domain_for(answered, cleaned)
        assert answered.mod_over(domain) == cleaned.mod_over(domain)

    def test_normalize_shrinks_join_garbage(self):
        """The Orchestra example's dead join rows disappear."""
        f = Var("f")
        table = CTable(
            [
                (("g1", "g4"), conj(eq(f, "ligase"), eq(f, "kinase"))),
                (("g1", "g2"), eq(f, "kinase")),
            ]
        )
        cleaned = normalize(table)
        assert len(cleaned) == 1

    def test_normalize_preserves_mod_random(self):
        rng = random.Random(13)
        for _ in range(6):
            table = random_ctable(rng, arity=2, max_rows=3)
            cleaned = normalize(table)
            domain = witness_domain_for(table, cleaned)
            assert table.mod_over(domain) == cleaned.mod_over(domain)
